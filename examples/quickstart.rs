//! Quickstart: stand up a two-system Parallel Sysplex and share data.
//!
//! Walks the paper's Figure 2 end to end: two MVS images, one Coupling
//! Facility, shared DASD — then exercises each of the three CF structure
//! models through the database stack and directly.
//!
//! Run with: `cargo run --example quickstart`

use parallel_sysplex::cf::list::{DequeueEnd, LockCondition, WritePosition};
use parallel_sysplex::cf::lock::LockMode;
use parallel_sysplex::cf::SystemId;
use parallel_sysplex::db::group::{DataSharingGroup, GroupConfig};
use parallel_sysplex::services::sysplex::{Sysplex, SysplexConfig};
use parallel_sysplex::services::system::SystemConfig;

fn main() {
    // 1. Bring up the sysplex infrastructure: timer, shared DASD, XCF,
    //    couple data sets, heartbeat, WLM, ARM.
    let plex = Sysplex::new(SysplexConfig::functional("PLEX01"));
    let cf = plex.add_cf("CF01");

    // 2. IPL two CMOS systems (non-disruptively; more could join later).
    let sys0 = plex.ipl(SystemConfig::cmos(SystemId::new(0), 2));
    let sys1 = plex.ipl(SystemConfig::cmos(SystemId::new(1), 2));
    println!("sysplex {:?} up: {} systems, {:.0} MIPS total", plex.name(), 2, plex.total_capacity_mips());

    // 3. Form a data-sharing group: CF lock structure + group buffer pool
    //    + shared page store, one database member per system.
    let group = DataSharingGroup::new(
        GroupConfig::default(),
        &cf,
        plex.farm.clone(),
        plex.timer.clone(),
        plex.xcf.clone(),
    )
    .expect("allocate structures");
    let db0 = group.add_member(SystemId::new(0)).unwrap();
    let db1 = group.add_member(SystemId::new(1)).unwrap();

    // 4. Direct, concurrent read/write sharing with full integrity:
    //    system 0 writes, system 1 reads the same records immediately.
    db0.run(5, |db, txn| {
        db.write(txn, 1001, Some(b"ACCT 1001 BALANCE 500.00"))?;
        db.write(txn, 1002, Some(b"ACCT 1002 BALANCE 250.00"))
    })
    .unwrap();
    let from_sys1 = db1.run(5, |db, txn| db.read(txn, 1001)).unwrap().unwrap();
    println!("system 1 reads what system 0 wrote: {}", String::from_utf8_lossy(&from_sys1));

    // 5. Coherency in action: system 1 updates; system 0's cached copy is
    //    cross-invalidated by the CF (no interrupt on system 0) and the
    //    next read refreshes from the group buffer.
    db1.run(5, |db, txn| db.write(txn, 1001, Some(b"ACCT 1001 BALANCE 450.00"))).unwrap();
    let refreshed = db0.run(5, |db, txn| db.read(txn, 1001)).unwrap().unwrap();
    println!("system 0 sees the update:           {}", String::from_utf8_lossy(&refreshed));
    println!(
        "buffer stats sys0: {} local hits, {} CF refreshes, {} DASD reads",
        db0.buffers().stats.local_hits.get(),
        db0.buffers().stats.cf_refreshes.get(),
        db0.buffers().stats.dasd_reads.get()
    );

    // 6. The lock structure underneath: most grants were CPU-synchronous.
    let rates = group.lock_structure().rates();
    println!(
        "lock structure: {:.1}% of requests granted synchronously, {:.1}% saw contention",
        rates.sync_grant_fraction * 100.0,
        rates.contention_fraction * 100.0
    );

    // 7. A list structure used directly: a tiny shared queue with a
    //    transition signal.
    let list = cf
        .allocate_list_structure("DEMO_QUEUE", parallel_sysplex::cf::list::ListParams::with_headers(1))
        .unwrap();
    let producer = list.connect(8).unwrap();
    let consumer = list.connect(8).unwrap();
    list.register_monitor(&consumer, 0, 0).unwrap();
    assert!(!consumer.vector.test(0), "queue empty: bit clear");
    list.write_entry(&producer, 0, 1, b"hello from SYS00", WritePosition::Tail, LockCondition::None).unwrap();
    assert!(consumer.vector.test(0), "transition signal set the bit, no interrupt");
    let msg = list.dequeue(&consumer, 0, DequeueEnd::Head, LockCondition::None).unwrap().unwrap();
    println!("list structure delivered: {}", String::from_utf8_lossy(&msg.data));

    // 8. Direct lock-model use: grab a named resource exclusively.
    let lock = group.lock_structure();
    let conn = lock.connect().unwrap();
    let entry = lock.hash_resource(b"DEMO.RESOURCE");
    assert!(lock.request(conn, entry, LockMode::Exclusive).unwrap().is_granted());
    println!("direct CF lock grant: CPU-synchronous, microsecond-class");
    lock.release(conn, entry).unwrap();

    // 9. Orderly shutdown.
    group.remove_member(SystemId::new(0));
    group.remove_member(SystemId::new(1));
    plex.remove_planned(SystemId::new(0));
    plex.remove_planned(SystemId::new(1));
    let _ = (sys0, sys1);
    println!("quickstart complete");
}
