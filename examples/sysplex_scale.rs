//! Multi-process sysplex scaling benchmark (DESIGN.md §9).
//!
//! The only example that runs the sysplex as **real OS processes**: the
//! parent holds the Coupling Facility behind a `SysplexServer`, then for
//! each member count 1..=N re-executes itself as that many child
//! processes. Each child connects over TCP (`RemoteSysplex`), joins an
//! XCF group, and drives a debit-credit-shaped burst straight against
//! the CF's lock/cache/list structures — every command a genuine wire
//! round trip. Members also measure their XCF signal RTT and raw CF
//! probe service time.
//!
//! Writes the schema-stable `BENCH_sysplex_scale.json` the CI
//! `sysplex-scale` job checks. Environment knobs:
//!
//! * `SYSPLEX_SCALE_MEMBERS` — widest member count swept (default 3).
//! * `SYSPLEX_SCALE_OPS` — transactions per member (default 400).
//!
//! Run with: `cargo run --release --example sysplex_scale`

use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};
use sysplex_bench::scale::{percentile_us, MemberSample, ScaleReport};
use sysplex_core::cache::{BlockName, CacheParams, WriteKind};
use sysplex_core::connection::{CfCommand, CommandClass};
use sysplex_core::list::{ListParams, LockCondition, WritePosition};
use sysplex_core::lock::{LockMode, LockParams};
use sysplex_core::transport::probe;
use sysplex_core::SystemId;
use sysplex_services::monitor::Monitor;
use sysplex_services::sysplex::{Sysplex, SysplexConfig};
use sysplex_services::transport::{RemoteSysplex, SysplexServer};
use sysplex_workload::debitcredit::{DebitCreditConfig, DebitCreditGenerator, KeyLayout};

const GROUP: &str = "SCALE";
const LOCK_STRUCTURE: &str = "SCALE_LOCK";
const CACHE_STRUCTURE: &str = "SCALE_GBP";
const LIST_STRUCTURE: &str = "SCALE_LIST";
const LIST_HEADERS: usize = 64;
const XCF_RTT_SAMPLES: usize = 48;
const CF_PROBE_SAMPLES: usize = 256;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    if std::env::var("SYSPLEX_SCALE_MEMBER").is_ok() {
        run_member();
        return;
    }
    run_parent();
}

// ---------------------------------------------------------------------------
// Parent: CF owner, server, and curve driver
// ---------------------------------------------------------------------------

fn run_parent() {
    let max_members = env_u64("SYSPLEX_SCALE_MEMBERS", 3).clamp(1, 8) as usize;
    let ops = env_u64("SYSPLEX_SCALE_OPS", 400);
    let exe = std::env::current_exe().expect("current_exe");

    let mut runs: Vec<Vec<MemberSample>> = Vec::new();
    let mut observability: Vec<String> = Vec::new();
    let mut widest_rmf: Option<String> = None;
    for members in 1..=max_members {
        // A fresh sysplex per point keeps the structures cold and the
        // member counts honest. The SFM deadline is relaxed from the
        // functional default (200 ms): members pulse from a keepalive
        // thread, but on an oversubscribed host the OS can starve that
        // thread for longer than a production SFM policy would tolerate,
        // and a benchmark member fenced mid-burst is a false positive.
        let mut config = SysplexConfig::functional("SCALEPLEX");
        config.heartbeat.interval = Duration::from_millis(250);
        config.heartbeat.failure_threshold = Duration::from_secs(5);
        let plex = Sysplex::new(config);
        let cf = plex.add_cf("CF01");
        cf.allocate_lock_structure(LOCK_STRUCTURE, LockParams::with_entries(2048)).unwrap();
        cf.allocate_cache_structure(CACHE_STRUCTURE, CacheParams::store_in(1024)).unwrap();
        cf.allocate_list_structure(LIST_STRUCTURE, ListParams::with_headers(LIST_HEADERS)).unwrap();
        let server = SysplexServer::start(&plex, &cf, "127.0.0.1:0").expect("bind sysplex server");
        let addr = server.local_addr().to_string();

        let children: Vec<_> = (1..=members)
            .map(|m| {
                Command::new(&exe)
                    .env("SYSPLEX_SCALE_MEMBER", m.to_string())
                    .env("SYSPLEX_SCALE_ADDR", &addr)
                    .env("SYSPLEX_SCALE_OPS", ops.to_string())
                    .env("SYSPLEX_SCALE_MEMBERS", members.to_string())
                    .stdout(Stdio::piped())
                    .spawn()
                    .expect("spawn member process")
            })
            .collect();

        let mut samples = Vec::with_capacity(members);
        for mut child in children {
            let stdout = child.stdout.take().expect("child stdout");
            for line in BufReader::new(stdout).lines() {
                let line = line.expect("read child stdout");
                if let Some(sample) = MemberSample::parse_line(&line) {
                    samples.push(sample);
                } else if !line.trim().is_empty() {
                    println!("  [member] {line}");
                }
            }
            let status = child.wait().expect("wait for member");
            assert!(status.success(), "member process failed: {status}");
        }
        assert_eq!(samples.len(), members, "every member must report a result line");
        samples.sort_by_key(|s| s.system);
        println!(
            "{} member(s): {:.1} ops/s total",
            members,
            samples.iter().map(|s| s.ops_per_s()).sum::<f64>()
        );
        runs.push(samples);

        // Every member shipped SMF interval records while it ran and
        // flushed a final partial interval with its goodbye; merge them
        // with the server's own service clock into one RMF-style view.
        let rmf = Monitor::for_sysplex(&plex).sysplex_report(server.smf());
        let section = rmf.sysplex.as_ref().expect("merged report carries the sysplex section");
        assert_eq!(section.members.len(), members, "every member must appear in the merged report");
        assert_eq!(section.departed_count(), members, "members departed cleanly via goodbye");
        assert!(rmf.reconciles(), "merged sysplex report must reconcile:\n{rmf}");
        println!(
            "  merged SMF: {} member(s), {} departed, reconciled",
            section.members.len(),
            section.departed_count()
        );
        observability.push(rmf.observability_json());
        if members == max_members {
            widest_rmf = Some(rmf.to_json());
        }
        server.stop();
    }

    let mut report = ScaleReport::from_runs(ops, runs);
    for (point, obs) in report.scaling.iter_mut().zip(observability) {
        point.observability = Some(obs);
    }
    print!("{}", report.render_table());
    let json = report.to_json();
    std::fs::write("BENCH_sysplex_scale.json", &json).expect("write BENCH_sysplex_scale.json");
    println!("wrote BENCH_sysplex_scale.json ({} bytes)", json.len());
    if let Some(rmf) = widest_rmf {
        std::fs::write("SYSPLEX_RMF_REPORT.json", &rmf).expect("write SYSPLEX_RMF_REPORT.json");
        println!("wrote SYSPLEX_RMF_REPORT.json ({} bytes)", rmf.len());
    }
}

// ---------------------------------------------------------------------------
// Member process: TCP member driving debit-credit against the CF
// ---------------------------------------------------------------------------

fn run_member() {
    let member = env_u64("SYSPLEX_SCALE_MEMBER", 1) as u8;
    let members = env_u64("SYSPLEX_SCALE_MEMBERS", 1);
    let ops = env_u64("SYSPLEX_SCALE_OPS", 400);
    let addr = std::env::var("SYSPLEX_SCALE_ADDR").expect("SYSPLEX_SCALE_ADDR");
    let name = format!("SYS{member:02}");

    let remote = RemoteSysplex::connect(&addr, SystemId::new(member), &name, 200.0).expect("connect");
    remote.pulse().expect("pulse");
    // Keep SFM fed while the burst runs; stopped before the goodbye.
    let pulse = remote.keepalive(Duration::from_millis(100));
    // Ship SMF interval records while the burst runs; the goodbye below
    // flushes the final partial interval, so nothing is lost when the
    // shipper is stopped mid-interval.
    let smf = remote.smf_autoship(Duration::from_millis(50));
    let xcf_a = remote.join(GROUP, &format!("MEM{member:02}")).expect("join");
    let xcf_b = remote.join(GROUP, &format!("PRB{member:02}")).expect("join probe member");

    let lock = remote.connect_lock(LOCK_STRUCTURE).expect("attach lock");
    let cache = remote.connect_cache(CACHE_STRUCTURE, 4096).expect("attach cache");
    let list = remote.connect_list(LIST_STRUCTURE, LIST_HEADERS).expect("attach list");

    // XCF signal RTT: send MEM→PRB on the same session and poll until
    // delivery. Both hops cross the wire, so halve the round trip.
    let mut xcf_rtt = Vec::with_capacity(XCF_RTT_SAMPLES);
    for _ in 0..XCF_RTT_SAMPLES {
        let t0 = Instant::now();
        xcf_a.send_to(xcf_b.name(), b"rtt".to_vec()).expect("xcf send");
        loop {
            if xcf_b.try_recv().expect("xcf poll").is_some() {
                break;
            }
        }
        xcf_rtt.push(t0.elapsed().as_secs_f64() * 1_000_000.0 / 2.0);
    }

    // Raw CF command service time over the wire (64-byte lock-class probe).
    let mut probe_us = Vec::with_capacity(CF_PROBE_SAMPLES);
    for _ in 0..CF_PROBE_SAMPLES {
        let t0 = Instant::now();
        probe(remote.transport().as_ref(), CfCommand::new(CommandClass::LockRequest, 64)).expect("probe");
        probe_us.push(t0.elapsed().as_secs_f64() * 1_000_000.0);
    }

    // Debit-credit burst: the full lock → cache write → history enqueue →
    // release choreography per transaction, every command a TCP round
    // trip. The shared generator config means members genuinely collide
    // on branches (the TPC-A 15% remote rule).
    let config = DebitCreditConfig {
        branches: members.max(1),
        tellers_per_branch: 5,
        accounts_per_branch: 100,
        remote_fraction: 0.15,
    };
    let layout = KeyLayout::new(config);
    let mut gen = DebitCreditGenerator::new(config, 0xC0DE + member as u64);
    let started = Instant::now();
    for _ in 0..ops {
        let txn = gen.next_txn();
        let acct = layout.account(txn.account_branch, txn.account);
        let teller = layout.teller(txn.home_branch, txn.teller);
        let branch = layout.branch(txn.home_branch);

        // Acquire lock-table entries in ascending entry order — a global
        // order on the *hashed* entries, so holding earlier ones while
        // spinning on later ones cannot deadlock even when different
        // record classes collide on an entry. Collisions are deduped: one
        // grant covers them all.
        let mut entries = vec![
            lock.hash_resource(format!("A{acct}").as_bytes()),
            lock.hash_resource(format!("T{teller}").as_bytes()),
            lock.hash_resource(format!("B{branch}").as_bytes()),
        ];
        entries.sort_unstable();
        entries.dedup();
        for &entry in &entries {
            loop {
                if lock.request_lock(entry, LockMode::Exclusive).expect("lock").is_granted() {
                    break;
                }
                std::thread::sleep(Duration::from_micros(50));
            }
        }

        let block = BlockName::from_parts(0, acct);
        let mut page = [0u8; 128];
        page[..8].copy_from_slice(&txn.delta.to_le_bytes());
        cache.write_invalidate(block, &page, WriteKind::ChangedData).expect("cache write");

        let header = (txn.home_branch as usize) % LIST_HEADERS;
        list.enqueue(header, txn.history_seq, &page[..32], WritePosition::Tail, LockCondition::None)
            .expect("history enqueue");

        for &entry in entries.iter().rev() {
            lock.release_lock(entry).expect("unlock");
        }
    }
    let elapsed = started.elapsed();

    let sample = MemberSample {
        system: member,
        name,
        ops,
        elapsed_us: elapsed.as_micros() as u64,
        xcf_rtt_us_p50: percentile_us(&mut xcf_rtt, 50.0),
        xcf_rtt_us_p95: percentile_us(&mut xcf_rtt, 95.0),
        cf_probe_us_p50: percentile_us(&mut probe_us, 50.0),
        cf_probe_us_p95: percentile_us(&mut probe_us, 95.0),
    };
    println!("{}", sample.to_line());

    list.detach().expect("detach list");
    cache.detach().expect("detach cache");
    lock.detach(sysplex_core::lock::DisconnectMode::Normal).expect("detach lock");
    xcf_b.leave().expect("leave");
    xcf_a.leave().expect("leave");
    smf.stop();
    pulse.stop();
    remote.goodbye().expect("goodbye");
}
