//! Granular, non-disruptive growth (§2.4) — and planned removal (§2.5).
//!
//! Start with one system under load, IPL two more into the running
//! sysplex, and watch WLM steer new work toward the added capacity with
//! no repartitioning and no interruption. Then remove a system for
//! "maintenance" and watch the work flow back — the rolling-upgrade
//! pattern the paper describes.
//!
//! Run with: `cargo run --example granular_growth`

use parallel_sysplex::cf::SystemId;
use parallel_sysplex::db::group::{DataSharingGroup, GroupConfig};
use parallel_sysplex::services::sysplex::{Sysplex, SysplexConfig};
use parallel_sysplex::services::system::SystemConfig;
use parallel_sysplex::services::wlm::ServiceClass;
use parallel_sysplex::subsys::routing::TransactionRouter;
use parallel_sysplex::subsys::tm::{CicsRegion, TranDef};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let plex = Sysplex::new(SysplexConfig::functional("GROWPLEX"));
    let cf = plex.add_cf("CF01");
    let group = DataSharingGroup::new(
        GroupConfig::default(),
        &cf,
        plex.farm.clone(),
        plex.timer.clone(),
        plex.xcf.clone(),
    )
    .unwrap();
    plex.wlm.define_class(ServiceClass {
        name: "OLTP".into(),
        goal: Duration::from_millis(100),
        importance: 2,
    });
    let router = TransactionRouter::new(plex.wlm.clone());

    let add_system = |i: u8| -> Arc<CicsRegion> {
        let id = SystemId::new(i);
        let image = plex.ipl(SystemConfig::cmos(id, 2));
        let db = group.add_member(id).unwrap();
        let region = CicsRegion::new(image, db, plex.wlm.clone());
        region.define(TranDef {
            name: "WORK".into(),
            service_class: "OLTP".into(),
            handler: Arc::new(|db, txn| {
                db.write(txn, 7, Some(b"busy"))?;
                db.read(txn, 7).map(|_| ())
            }),
        });
        router.register_region(Arc::clone(&region));
        region
    };

    let burst = |label: &str| {
        let before = router.distribution();
        let pending: Vec<_> = (0..60).filter_map(|_| router.submit("WORK").ok()).collect();
        for p in pending {
            p.wait(Duration::from_secs(30)).unwrap();
        }
        plex.tick();
        let after = router.distribution();
        let delta: Vec<(SystemId, u64)> = after
            .iter()
            .map(|(id, n)| {
                let prev = before.iter().find(|(i, _)| i == id).map(|(_, n)| *n).unwrap_or(0);
                (*id, n - prev)
            })
            .collect();
        println!("{label}: burst of 60 routed as {delta:?}");
        delta
    };

    // One system carries everything.
    let _r0 = add_system(0);
    plex.tick();
    let d = burst("1 system ");
    assert_eq!(d[0].1, 60);

    // IPL system 1 while work is flowing: no repartitioning, it simply
    // starts receiving its share.
    let _r1 = add_system(1);
    plex.tick();
    let d = burst("2 systems");
    assert!(d.iter().all(|(_, n)| *n > 0), "new system participates at once: {d:?}");

    let _r2 = add_system(2);
    plex.tick();
    let d = burst("3 systems");
    assert_eq!(d.len(), 3);
    assert!(d.iter().all(|(_, n)| *n >= 15), "steady state is an even spread: {d:?}");

    // Planned removal of system 1 for 'maintenance': quiesce and drain,
    // no failure processing, work flows to the remaining two.
    println!("\nremoving SYS01 for planned maintenance…");
    router.deregister_region(SystemId::new(1));
    group.remove_member(SystemId::new(1));
    plex.remove_planned(SystemId::new(1));
    let d = burst("2 systems");
    assert!(d.iter().all(|(id, n)| (*id == SystemId::new(1)) == (*n == 0)), "{d:?}");
    assert!(!plex.farm.fence().is_fenced(1), "planned removal never fences");

    // …and back in after the 'upgrade': rolling migration complete.
    println!("re-introducing SYS01…");
    let _r1b = add_system(1);
    plex.tick();
    let d = burst("3 systems");
    assert!(d.iter().any(|(id, n)| *id == SystemId::new(1) && *n > 0), "rejoined: {d:?}");

    println!(
        "granular growth and rolling removal complete; total capacity now {:.0} MIPS",
        plex.total_capacity_mips()
    );
    for id in [0u8, 1, 2] {
        plex.remove_planned(SystemId::new(id));
    }
}
