//! CI chaos smoke: a 3-member TCP sysplex survives seeded wire faults.
//!
//! Runs the partition + heal campaign — the one scenario that pushes
//! every frame through per-member [`ChaosProxy`] fault plans — and
//! demands the operations-day bar: zero lost debit-credit transactions,
//! capacity floor held, trace oracle clean.
//!
//! Artifacts:
//!
//! * `CHAOS_PLAN.txt` — always written: the seed and each member's
//!   fault plan as a copy-pasteable builder chain. A CI failure is
//!   replayed locally with
//!   `SYSPLEX_CHAOS_SEED=<seed> cargo run --example chaos_smoke`.
//! * `CHAOS_SHRINK_REPORT.txt` — written on failure: the greedy-shrunk
//!   minimal fault plans that still break the run, plus the verdict.
//!
//! Exit status is non-zero on any failure, so CI gates on it directly.

use std::panic::{self, AssertUnwindSafe};
use std::time::Instant;
use sysplex_harness::{
    default_chaos_plans, partition_heal_with_plans, ChaosPlan, OpsDayConfig, ScenarioOutcome,
};

/// Ceiling on shrink re-runs: each replays a full campaign, so keep the
/// failure path bounded even with the largest plans.
const MAX_SHRINK_RUNS: usize = 40;

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn render_plans(seed: u64, plans: &[ChaosPlan]) -> String {
    let mut out = format!("seed: {seed:#x}\n");
    out.push_str("replay: SYSPLEX_CHAOS_SEED=<seed> cargo run --example chaos_smoke\n\n");
    for (i, p) in plans.iter().enumerate() {
        out.push_str(&format!("SYS{:02}: {p}\n", i + 1));
    }
    out
}

/// One campaign run; a panic (admission never completing, fence never
/// observed) counts as a failure with the panic text as the verdict.
fn run(config: &OpsDayConfig, plans: &[ChaosPlan]) -> Result<ScenarioOutcome, String> {
    let plans = plans.to_vec();
    let config = *config;
    match panic::catch_unwind(AssertUnwindSafe(move || partition_heal_with_plans(&config, plans))) {
        Ok(outcome) if outcome.is_clean() => Ok(outcome),
        Ok(outcome) => Err(format!(
            "unclean: lost={} capacity_floor_ok={} oracle_clean={} violations={:?}",
            outcome.lost, outcome.capacity_floor_ok, outcome.oracle_clean, outcome.violations
        )),
        Err(e) => {
            let msg = e
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "panic (no message)".to_string());
            Err(format!("panic: {msg}"))
        }
    }
}

/// Greedy plan minimization: try removing one fault at a time across all
/// members; keep any removal that still fails; repeat until a fixpoint
/// or the run budget is spent.
fn shrink(config: &OpsDayConfig, plans: &[ChaosPlan]) -> (Vec<ChaosPlan>, String) {
    let mut current = plans.to_vec();
    let mut last_failure = String::new();
    let mut runs = 0;
    let mut progress = true;
    while progress && runs < MAX_SHRINK_RUNS {
        progress = false;
        'members: for m in 0..current.len() {
            for i in 0..current[m].len() {
                if runs >= MAX_SHRINK_RUNS {
                    break 'members;
                }
                let mut candidate = current.clone();
                candidate[m] = candidate[m].without(i);
                runs += 1;
                if let Err(msg) = run(config, &candidate) {
                    eprintln!("shrink: removing fault {i} from SYS{:02} still fails ({runs} runs)", m + 1);
                    current = candidate;
                    last_failure = msg;
                    progress = true;
                    continue 'members;
                }
            }
        }
    }
    (current, last_failure)
}

fn main() {
    let seed = std::env::var("SYSPLEX_CHAOS_SEED").ok().and_then(|s| parse_seed(&s)).unwrap_or(0xC4A05);
    let config = OpsDayConfig::seeded(seed);
    let plans = default_chaos_plans(seed, config.members);
    std::fs::write("CHAOS_PLAN.txt", render_plans(seed, &plans)).unwrap();
    println!("chaos smoke: partition + heal, seed {seed:#x} (plans in CHAOS_PLAN.txt)");

    let t0 = Instant::now();
    match run(&config, &plans) {
        Ok(outcome) => {
            println!(
                "clean in {:.1}s: committed={} acked={} lost={} duplicates={} reipls={} \
                 fence={}µs readmit={}µs",
                t0.elapsed().as_secs_f64(),
                outcome.committed,
                outcome.acked,
                outcome.lost,
                outcome.duplicates,
                outcome.reipls,
                outcome.time_to_fence_us,
                outcome.time_to_readmit_us
            );
        }
        Err(first_failure) => {
            eprintln!("FAILED: {first_failure}");
            eprintln!("shrinking fault plans (up to {MAX_SHRINK_RUNS} re-runs)…");
            let (minimal, last_failure) = shrink(&config, &plans);
            let mut report = format!("failure: {first_failure}\n\n");
            if !last_failure.is_empty() && last_failure != first_failure {
                report.push_str(&format!("failure after shrink: {last_failure}\n\n"));
            }
            report.push_str("minimal failing plans:\n");
            report.push_str(&render_plans(seed, &minimal));
            std::fs::write("CHAOS_SHRINK_REPORT.txt", &report).unwrap();
            eprintln!("wrote CHAOS_SHRINK_REPORT.txt");
            eprint!("{report}");
            std::process::exit(1);
        }
    }
}
