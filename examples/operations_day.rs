//! A day in operations: the §5.1 base exploiters plus the §2.1 single
//! point of control.
//!
//! Demonstrates the JES2-style shared job queue (classes, priorities,
//! warm-start recovery, serialized checkpoint), the RACF-style coherent
//! security cache with sysplex-wide revocation, a PROMPT-mode SFM policy
//! with operator confirmation, and the console that ties it together.
//!
//! The day then turns hostile: three composed chaos campaigns run a
//! separate TCP sysplex through rolling restarts, a network partition
//! with heal, and an ARM-style restart storm, each under live
//! debit-credit traffic. Their verdicts (lost transactions must be
//! zero, trace oracle clean) and recovery metrics land in a
//! `"scenarios"` array inside `BENCH_operations_day.json`.
//!
//! Run with: `cargo run --example operations_day`

use parallel_sysplex::cf::SystemId;
use parallel_sysplex::services::console::Console;
use parallel_sysplex::services::monitor::Monitor;
use parallel_sysplex::services::sysplex::{Sysplex, SysplexConfig};
use parallel_sysplex::services::system::SystemConfig;
use parallel_sysplex::subsys::jes::{job_queue_params, JobQueue};
use parallel_sysplex::subsys::racf::{security_cache_params, Access, Profile, RacfNode, SecurityDatabase};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // PROMPT-mode SFM: failures wait for the operator.
    let mut cfg = SysplexConfig::functional("OPSPLEX");
    cfg.heartbeat.auto_failure = false;
    cfg.heartbeat.failure_threshold = Duration::from_millis(30);
    let plex = Sysplex::new(cfg);
    // Component trace on for the whole day, so the closing RMF-style
    // activity report reconciles traced completions against the command
    // accounting.
    plex.tracer.enable();
    let cf = plex.add_cf("CF01");
    for i in 0..3u8 {
        plex.ipl(SystemConfig::cmos(SystemId::new(i), 2));
    }
    let console = Console::new(Arc::clone(&plex));
    let monitor = Monitor::for_sysplex(&plex);

    // --- JES2-style shared job queue -------------------------------------
    let jes_list = cf.allocate_list_structure("JES2CKPT", job_queue_params()).unwrap();
    let jes0 = JobQueue::open(&jes_list, cf.subchannel()).unwrap();
    let jes1 = JobQueue::open(&jes_list, cf.subchannel()).unwrap();
    jes0.submit("PAYROLL", 'A', 1).unwrap();
    jes0.submit("REPORTS", 'B', 5).unwrap();
    jes0.submit("CLEANUP", 'A', 9).unwrap();
    println!(
        "submitted 3 jobs; input queue: {:?}",
        jes0.input_jobs().unwrap().iter().map(|j| j.name.as_str()).collect::<Vec<_>>()
    );

    // Member 1 serves class A: selects PAYROLL (priority 1) first.
    let job = jes1.select(&['A']).unwrap().unwrap();
    println!("SYS01 initiator selected {} (class {}, prio {})", job.name, job.class, job.priority);

    // Member 1 dies mid-job; a peer warm-starts its work.
    let dead_slot = jes1.slot();
    drop(jes1);
    let recovered = jes0.recover_member(dead_slot).unwrap();
    println!("SYS01 lost; {recovered} executing job(s) requeued by a peer");
    let rerun = jes0.select(&['A']).unwrap().unwrap();
    assert_eq!(rerun.name, "PAYROLL");
    jes0.complete(&rerun).unwrap();
    let (input, executing, output) = jes0.checkpoint().unwrap();
    println!("JES checkpoint: input={input} executing={executing} output={output}");

    // --- RACF-style coherent security ------------------------------------
    let secdb = SecurityDatabase::create(plex.farm.clone(), "RACFDB", 512).unwrap();
    let seccache = cf.allocate_cache_structure("IRRXCF00", security_cache_params(512)).unwrap();
    let racf0 =
        RacfNode::start(SystemId::new(0), Arc::clone(&secdb), &seccache, cf.subchannel(), 64).unwrap();
    let racf2 =
        RacfNode::start(SystemId::new(2), Arc::clone(&secdb), &seccache, cf.subchannel(), 64).unwrap();
    racf0
        .admin_update(&Profile {
            resource: "PROD.PAYROLL.MASTER".into(),
            universal_access: Access::None,
            acl: vec![("CONTRACTOR".into(), Access::Read)],
        })
        .unwrap();
    assert!(racf2.check("CONTRACTOR", "PROD.PAYROLL.MASTER", Access::Read).unwrap());
    println!("CONTRACTOR can read PROD.PAYROLL.MASTER (cached on SYS02)");
    let invalidated = racf0
        .admin_update(&Profile {
            resource: "PROD.PAYROLL.MASTER".into(),
            universal_access: Access::None,
            acl: vec![],
        })
        .unwrap();
    assert!(!racf2.check("CONTRACTOR", "PROD.PAYROLL.MASTER", Access::Read).unwrap());
    println!("revoked on SYS00; {invalidated} cached cop(ies) cross-invalidated — denied on SYS02 instantly");

    // --- SFM PROMPT policy + console -------------------------------------
    plex.system(SystemId::new(1)).unwrap().fail(); // goes silent
    std::thread::sleep(Duration::from_millis(60));
    plex.tick();
    print!("{}", console.display_systems());
    println!("operator confirms the failure of SYS01…");
    assert!(console.confirm_failure(SystemId::new(1)));
    assert!(plex.farm.fence().is_fenced(1));
    print!("{}", console.display_structures(&["CF01"]));
    print!("{}", console.display_routing());

    console.vary_offline(SystemId::new(0));
    console.vary_offline(SystemId::new(2));

    // --- End-of-day RMF-style CF activity report --------------------------
    let report = monitor.report();
    print!("{report}");
    assert!(report.reconciles(), "activity report reconciles");

    // --- Composed chaos campaigns over TCP ---------------------------------
    // A second, wire-backed sysplex rides through the operations-day
    // failure drills. The seed pins the chaos plans, retry jitter, and
    // transaction streams; override with SYSPLEX_CHAOS_SEED to replay.
    let seed = std::env::var("SYSPLEX_CHAOS_SEED").ok().and_then(|s| parse_seed(&s)).unwrap_or(0xDEC1DED);
    println!("\nrunning chaos campaigns (seed {seed:#x})…");
    let outcomes = sysplex_harness::run_all(&sysplex_harness::OpsDayConfig::seeded(seed));
    for o in &outcomes {
        println!(
            "  {:<16} committed={:<4} lost={} duplicates={} reipls={} \
             fence={}µs readmit={}µs oracle_clean={} smf={}rec/{}mem reconciled={}",
            o.name,
            o.committed,
            o.lost,
            o.duplicates,
            o.reipls,
            o.time_to_fence_us,
            o.time_to_readmit_us,
            o.oracle_clean,
            o.smf_records,
            o.smf_members,
            o.smf_reconciled
        );
        o.assert_clean();
    }

    let json = sysplex_bench::opsday::splice_scenarios(
        &report.to_json(),
        &sysplex_harness::scenarios_json(&outcomes),
    );
    std::fs::write("BENCH_operations_day.json", json).unwrap();
    println!("wrote BENCH_operations_day.json ({} scenarios)", outcomes.len());
    println!("operations day complete");
}

/// Accept `0x…` hex or decimal.
fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}
