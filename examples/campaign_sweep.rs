//! Parallel coverage-guided campaign sweep (DESIGN.md §12).
//!
//! Industrializes the deterministic harness: one parent process drives a
//! pool of worker processes (re-exec of this binary, like
//! `sysplex_scale.rs`), each running seeded fault campaigns pulled on
//! demand over a stdin/stdout pipe — a work-stealing shape where a fast
//! worker simply pulls more specs. Two sweeps run back to back over the
//! same per-mode budget:
//!
//! * **random** — pure `CampaignSpec::from_seed` sampling (the control);
//! * **guided** — the `SweepEngine` corpus: specs that set novel coverage
//!   bits get mutated (splice/shift/drop/add, duplex flips, reseeds),
//!   biased toward high-yield parents.
//!
//! Both record distinct-coverage-over-time curves side by side in the
//! schema-stable `BENCH_campaign_throughput.json`, making verification
//! speed a tracked perf surface. Any invariant violation found is
//! re-run, greedily shrunk, and printed as a copy-pasteable repro (also
//! written to the file named by `SYSPLEX_SHRINK_REPORT`); the example
//! then exits non-zero. The guided corpus is saved to
//! `CAMPAIGN_CORPUS.txt`, one `CampaignSpec::to_wire` line per entry.
//!
//! Environment knobs:
//!
//! * `SYSPLEX_SWEEP_SECS` — per-mode budget in seconds (default 8).
//! * `SYSPLEX_SWEEP_WORKERS` — worker processes (default min(cores, 4)).
//! * `SYSPLEX_SWEEP_SEED` — engine base seed (default 0xC0FFEE).
//!
//! Run with: `cargo run --release --example campaign_sweep`

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use sysplex_bench::campaign::{downsample_curve, CampaignThroughputReport, CurvePoint, ModeResult};
use sysplex_harness::{shrink_plan, CampaignSpec, CoverageMap, SweepConfig, SweepEngine};

const CORPUS_PATH: &str = "CAMPAIGN_CORPUS.txt";
const CURVE_POINTS: usize = 64;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    if std::env::var("SYSPLEX_SWEEP_WORKER").is_ok() {
        run_worker();
        return;
    }
    run_parent();
}

// ---------------------------------------------------------------------------
// Worker: run specs off stdin, report coverage on stdout
// ---------------------------------------------------------------------------

fn run_worker() {
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    for line in stdin.lock().lines() {
        let line = line.expect("worker: read spec line");
        if line.trim().is_empty() {
            continue;
        }
        let spec = CampaignSpec::from_wire(line.trim()).expect("worker: parse spec line");
        let outcome = spec.run();
        let coverage = CoverageMap::of(&outcome);
        writeln!(out, "RES {} {}", u8::from(outcome.passed()), coverage.to_wire())
            .and_then(|()| out.flush())
            .expect("worker: write result");
    }
}

// ---------------------------------------------------------------------------
// Parent: demand-driven scheduler over the worker pool
// ---------------------------------------------------------------------------

struct Shared {
    engine: SweepEngine,
    curve: Vec<CurvePoint>,
    /// Specs whose run violated an invariant (worker reported failure).
    violating: Vec<CampaignSpec>,
    /// Specs whose worker died mid-run (panic/abort — also a failure).
    crashed: Vec<CampaignSpec>,
}

fn spawn_worker(exe: &std::path::Path) -> Child {
    Command::new(exe)
        .env("SYSPLEX_SWEEP_WORKER", "1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn sweep worker")
}

fn run_mode(
    mode: &'static str,
    config: SweepConfig,
    workers: usize,
    budget: Duration,
    exe: &std::path::Path,
) -> (ModeResult, Vec<CampaignSpec>, Vec<String>) {
    let shared = Mutex::new(Shared {
        engine: SweepEngine::new(config),
        curve: Vec::new(),
        violating: Vec::new(),
        crashed: Vec::new(),
    });
    let children: Vec<Child> = (0..workers).map(|_| spawn_worker(exe)).collect();
    let started = Instant::now();

    std::thread::scope(|scope| {
        for mut child in children {
            let shared = &shared;
            scope.spawn(move || {
                let mut stdin = child.stdin.take().expect("worker stdin");
                let mut reader = BufReader::new(child.stdout.take().expect("worker stdout"));
                while started.elapsed() < budget {
                    let spec = shared.lock().unwrap().engine.next_spec();
                    if writeln!(stdin, "{}", spec.to_wire()).is_err() {
                        shared.lock().unwrap().crashed.push(spec);
                        break;
                    }
                    let mut line = String::new();
                    let crashed = match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => true,
                        Ok(_) => false,
                    };
                    let Some(rest) = line.trim().strip_prefix("RES ").filter(|_| !crashed) else {
                        shared.lock().unwrap().crashed.push(spec);
                        break;
                    };
                    let (passed, coverage) = rest.split_once(' ').unwrap_or((rest, ""));
                    let coverage = CoverageMap::from_wire(coverage).expect("parse worker coverage");
                    let mut sh = shared.lock().unwrap();
                    sh.engine.record(&spec, &coverage);
                    let t_ms = started.elapsed().as_millis() as u64;
                    let bits = sh.engine.coverage().count() as u64;
                    sh.curve.push(CurvePoint { t_ms, bits });
                    if passed != "1" {
                        sh.violating.push(spec);
                    }
                }
                // Closing stdin is the shutdown signal; the worker's read
                // loop ends on EOF.
                drop(stdin);
                let _ = child.wait();
            });
        }
    });

    let elapsed_ms = started.elapsed().as_millis() as u64;
    let shared = shared.into_inner().unwrap();
    let mut curve = shared.curve;
    if curve.is_empty() {
        curve.push(CurvePoint { t_ms: elapsed_ms, bits: shared.engine.coverage().count() as u64 });
    }
    let mut failures = shared.violating;
    let crashed_count = shared.crashed.len();
    for spec in &shared.crashed {
        println!("[{mode}] WORKER CRASH on campaign — repro: {}", spec.repro());
    }
    failures.extend(shared.crashed);
    let result = ModeResult {
        mode,
        base_seed: config.base_seed,
        campaigns: shared.engine.campaigns(),
        elapsed_ms,
        coverage_bits: shared.engine.coverage().count() as u64,
        corpus_size: shared.engine.corpus().len(),
        violations: failures.len() as u64,
        curve: downsample_curve(&curve, CURVE_POINTS),
    };
    println!(
        "[{mode}] {} campaigns in {:.1} s ({:.1}/s), {} distinct coverage bits, corpus {}, {} \
         violation(s), {} worker crash(es)",
        result.campaigns,
        elapsed_ms as f64 / 1_000.0,
        result.campaigns_per_s(),
        result.coverage_bits,
        result.corpus_size,
        result.violations,
        crashed_count,
    );
    let corpus_wires = shared.engine.corpus().iter().map(|e| e.spec.to_wire()).collect();
    (result, failures, corpus_wires)
}

/// Re-run each failing spec in-process, shrink its plan to a minimal
/// repro, and return the report block (also printed).
fn shrink_failures(mode: &str, failures: &[CampaignSpec]) -> String {
    let mut out = String::new();
    for spec in failures {
        let outcome = spec.run();
        let block = if outcome.passed() {
            // A worker crash (panic/abort) rather than an oracle violation:
            // the spec itself is the repro; shrinking needs a failing run.
            format!("[{mode}] campaign crashed its worker; unshrunk repro: {}\n", spec.repro())
        } else {
            format!("[{mode}] {}", shrink_plan(spec).report())
        };
        print!("{block}");
        out.push_str(&block);
    }
    out
}

fn run_parent() {
    let budget = Duration::from_secs(env_u64("SYSPLEX_SWEEP_SECS", 8).max(1));
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let workers = env_u64("SYSPLEX_SWEEP_WORKERS", cores.min(4) as u64).clamp(1, 32) as usize;
    let base_seed = env_u64("SYSPLEX_SWEEP_SEED", 0xC0FFEE);
    let exe = std::env::current_exe().expect("current_exe");
    println!(
        "campaign sweep: {} worker(s), {} s per mode, base seed {base_seed:#x}",
        workers,
        budget.as_secs()
    );

    let (random, random_failures, _) =
        run_mode("random", SweepConfig::random(base_seed), workers, budget, &exe);
    let (guided, guided_failures, corpus) =
        run_mode("guided", SweepConfig::guided(base_seed), workers, budget, &exe);

    std::fs::write(CORPUS_PATH, corpus.join("\n") + "\n").expect("write corpus");
    println!("wrote {CORPUS_PATH} ({} corpus entries)", corpus.len());

    let report = CampaignThroughputReport {
        hw_threads: cores,
        transport: sysplex_core::TransportBackend::InProcess.name(),
        workers,
        budget_s: budget.as_secs(),
        modes: vec![random, guided],
    };
    print!("{}", report.render_table());
    let json = report.to_json();
    std::fs::write("BENCH_campaign_throughput.json", &json).expect("write BENCH_campaign_throughput.json");
    println!("wrote BENCH_campaign_throughput.json ({} bytes)", json.len());

    if !random_failures.is_empty() || !guided_failures.is_empty() {
        let mut report_text = shrink_failures("random", &random_failures);
        report_text.push_str(&shrink_failures("guided", &guided_failures));
        if let Ok(path) = std::env::var("SYSPLEX_SHRINK_REPORT") {
            std::fs::write(&path, &report_text).expect("write shrink report");
            println!("wrote {path}");
        }
        eprintln!(
            "sweep found {} violating campaign(s) — repros above",
            random_failures.len() + guided_failures.len()
        );
        std::process::exit(1);
    }
}
