//! Decision support: parallel query split across the sysplex (§2.3).
//!
//! A scan query over a table is "broken up into smaller sub-queries"
//! distributed across the CPUs of several systems; the answer is
//! reconstructed "from the aggregate of the sub-query answers" — while an
//! OLTP writer keeps updating the same shared table from another system,
//! which is exactly what data sharing permits.
//!
//! Run with: `cargo run --example decision_support`

use parallel_sysplex::cf::SystemId;
use parallel_sysplex::db::group::{DataSharingGroup, GroupConfig};
use parallel_sysplex::services::sysplex::{Sysplex, SysplexConfig};
use parallel_sysplex::services::system::SystemConfig;
use parallel_sysplex::subsys::query::{scan_aggregate, ParallelQuery, QueryTarget};
use parallel_sysplex::workload::decision::ScanQuery;
use std::time::Instant;

const ROWS: u64 = 4_000;

fn main() {
    let plex = Sysplex::new(SysplexConfig::functional("DSSPLEX"));
    let cf = plex.add_cf("CF01");
    let config = GroupConfig { pages: 512, ..GroupConfig::default() };
    let group =
        DataSharingGroup::new(config, &cf, plex.farm.clone(), plex.timer.clone(), plex.xcf.clone()).unwrap();

    // Three systems; each hosts a database member and two CPUs.
    let mut targets = Vec::new();
    for i in 0..3u8 {
        targets.push(QueryTarget {
            system: plex.ipl(SystemConfig::cmos(SystemId::new(i), 2)),
            db: group.add_member(SystemId::new(i)).unwrap(),
        });
    }
    let dbs: Vec<_> = targets.iter().map(|t| t.db.clone()).collect();

    // Load the "sales" table: value column = deterministic function of key.
    let value_of = |k: u64| (k as i64 * 37) % 1000 - 250;
    let loader = &dbs[0];
    for chunk in (0..ROWS).collect::<Vec<_>>().chunks(200) {
        loader
            .run(5, |db, txn| {
                for &k in chunk {
                    db.write(txn, k, Some(&value_of(k).to_be_bytes()))?;
                }
                Ok(())
            })
            .unwrap();
    }
    println!("loaded {ROWS} rows across {} shared pages", group.store.page_count());

    let query = ScanQuery { from: 0, to: ROWS };

    // Sequential baseline on one system.
    let t0 = Instant::now();
    let sequential = scan_aggregate(&dbs[0], query.from, query.to, 10).unwrap();
    let seq_elapsed = t0.elapsed();
    println!(
        "sequential scan:  rows={} sum={} min={} max={} in {seq_elapsed:?}",
        sequential.rows, sequential.sum, sequential.min, sequential.max
    );

    // Parallel: the ParallelQuery coordinator splits into 6 sub-queries
    // over 3 systems × 2 CPUs, while an OLTP writer keeps updating the
    // same shared table from system 2.
    let coordinator = ParallelQuery::new(targets.clone());
    let t0 = Instant::now();
    let concurrent_writes = dbs[2]
        .run(10, |db, txn| {
            db.write(txn, ROWS + 1, Some(b"oltp-during-query"))?;
            Ok(1u32)
        })
        .unwrap();
    let parallel = coordinator.execute(query, 6).unwrap();
    let par_elapsed = t0.elapsed();
    println!(
        "parallel scan:    rows={} sum={} min={} max={} in {par_elapsed:?} (+{concurrent_writes} concurrent OLTP write)",
        parallel.rows, parallel.sum, parallel.min, parallel.max
    );

    assert_eq!(parallel, sequential, "sub-query aggregation reconstructs the sequential answer");
    println!("answers identical — parallelism is transparent to the requester");

    // Availability: lose a system mid-campaign; the next query still
    // answers, its shards redistributed to survivors.
    targets[1].system.fail();
    let survivor_answer = coordinator.execute(query, 6).unwrap();
    assert_eq!(survivor_answer, sequential);
    println!("after losing SYS01, the query still answers identically from the survivors");

    for i in 0..3u8 {
        group.remove_member(SystemId::new(i));
        if i != 1 {
            plex.remove_planned(SystemId::new(i));
        }
    }
}
