//! VSAM record-level sharing (§5.2): a customer master file shared by two
//! systems — keyed access, ordered browse, CI splits, and a CF failover in
//! the middle of the business day.
//!
//! Run with: `cargo run --example customer_file`

use parallel_sysplex::cf::SystemId;
use parallel_sysplex::db::group::{DataSharingGroup, GroupConfig};
use parallel_sysplex::db::vsam::Ksds;
use parallel_sysplex::services::sysplex::{Sysplex, SysplexConfig};
use std::time::Duration;

const FILE_BASE: u64 = 1 << 20;

fn main() {
    let plex = Sysplex::new(SysplexConfig::functional("VSAMPLEX"));
    let cf1 = plex.add_cf("CF01");
    let mut config = GroupConfig::default();
    config.db.lock_timeout = Duration::from_millis(200);
    let group =
        DataSharingGroup::new(config, &cf1, plex.farm.clone(), plex.timer.clone(), plex.xcf.clone()).unwrap();
    let db0 = group.add_member(SystemId::new(0)).unwrap();
    let db1 = group.add_member(SystemId::new(1)).unwrap();

    // System 0 defines CUSTOMER.MASTER; both systems open it.
    let master0 = Ksds::define(db0, FILE_BASE, 8).unwrap();
    let master1 = Ksds::open(db1, FILE_BASE, 8);

    // Load from system 0 (enough to force several CI splits).
    for i in 0..40u32 {
        master0.put(&format!("CUST{i:05}"), format!("name=Customer {i};tier={}", i % 3).as_bytes()).unwrap();
    }
    println!("loaded {} customers (with CI splits along the way)", master0.record_count().unwrap());

    // System 1 reads and updates the same records, record-level shared.
    let rec = master1.get("CUST00007").unwrap().unwrap();
    println!("SYS01 reads CUST00007: {}", String::from_utf8_lossy(&rec));
    master1.put("CUST00007", b"name=Customer 7;tier=GOLD").unwrap();
    let rec = master0.get("CUST00007").unwrap().unwrap();
    println!("SYS00 sees the update: {}", String::from_utf8_lossy(&rec));

    // Ordered browse across split CIs — the KSDS sequential access.
    let page = master1.browse("CUST00010", 5).unwrap();
    println!("browse from CUST00010: {:?}", page.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>());
    assert_eq!(page[0].0, "CUST00010");

    // Duplex the structures and lose CF01 mid-day: the file stays open,
    // keyed access continues, nothing is recovered or reloaded.
    let cf2 = plex.add_cf("CF02");
    group.enable_duplexing(&cf2).unwrap();
    master0.put("CUST90000", b"name=Opened during duplexing").unwrap();
    group.cf_failover().unwrap();
    println!("CF01 lost; failover complete — continuing on CF02");
    let rec = master1.get("CUST90000").unwrap().unwrap();
    println!("post-failover read: {}", String::from_utf8_lossy(&rec));
    master1.put("CUST90001", b"name=Opened after failover").unwrap();
    assert_eq!(master0.record_count().unwrap(), 42);
    println!("{} customers on file; books intact across the CF loss", master0.record_count().unwrap());

    group.remove_member(SystemId::new(0));
    group.remove_member(SystemId::new(1));
}
