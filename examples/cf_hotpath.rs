//! Standing CF hot-path throughput benchmark (DESIGN.md §8).
//!
//! Sweeps 1/2/4/8 worker threads through uncontended and Zipf-contended
//! lock/list/cache mixes — plus the IRLM `regrant` and `zipf-adaptive`
//! phases measuring the §13 local-interest fast path and online
//! lock-table resize — all through the real connection layer, and
//! writes the schema-stable `BENCH_cf_hotpath.json` the CI
//! `hotpath-bench` job checks. `HOTPATH_OPS` overrides the per-thread op
//! count (default 20 000); `HOTPATH_THREADS` overrides the sweep, e.g.
//! `HOTPATH_THREADS=1,4`.
//!
//! Run with: `cargo run --release --example cf_hotpath`

use sysplex_bench::hotpath;

fn main() {
    let ops: u64 = std::env::var("HOTPATH_OPS").ok().and_then(|v| v.parse().ok()).unwrap_or(20_000);
    let threads: Vec<usize> = std::env::var("HOTPATH_THREADS")
        .ok()
        .map(|v| v.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8]);

    let report = hotpath::run(ops, &threads);
    print!("{}", report.render_table());
    // Make the zero-async-conversion condition impossible to miss in the
    // job log, not just a field in the JSON.
    for w in report.warnings() {
        eprintln!("{w}");
    }

    let json = report.to_json();
    std::fs::write("BENCH_cf_hotpath.json", &json).expect("write BENCH_cf_hotpath.json");
    println!("wrote BENCH_cf_hotpath.json ({} bytes)", json.len());

    assert!(
        report.counters_reconciled,
        "per-class counters must reconcile: issued == sync + async_converted, faulted == 0"
    );
    // The ≥3x scaling claim needs the hardware to actually run 8 threads;
    // on smaller hosts (laptops, 1-core CI shells) record the numbers but
    // don't assert what the machine can't express.
    if report.hw_threads >= report.max_threads && report.max_threads >= 8 {
        assert!(
            report.scaling_lock_uncontended >= 3.0,
            "uncontended lock throughput at {} threads must be >= 3x single-thread, got {:.2}x",
            report.max_threads,
            report.scaling_lock_uncontended
        );
        // §13 gates, same hardware proviso: a local re-grant must be at
        // least 10x cheaper than the CF round trip it avoids (calibrated
        // against the paper's 100 MB/s link model), the fast path must
        // dominate the re-grant phase, and adaptive resize must hold
        // Zipf false contention under the 1% target at full width.
        assert!(
            report.regrant_p50_speedup >= 10.0,
            "re-grant p50 must be >= 10x below the mb100 CF round trip, got {:.1}x",
            report.regrant_p50_speedup
        );
        for p in report.phases.iter().filter(|p| p.threads == report.max_threads) {
            match p.mode {
                "regrant" => assert!(
                    p.regrant_local_ratio > 0.5,
                    "re-grant phase must complete >50% of requests locally, got {:.3}",
                    p.regrant_local_ratio
                ),
                "zipf-adaptive" => assert!(
                    p.false_contention_pct < 1.0,
                    "adaptive resize must hold false contention under 1%, got {:.2}%",
                    p.false_contention_pct
                ),
                _ => {}
            }
        }
    }
}
