//! Planned Coupling Facility maintenance — structure rebuild (§3.3).
//!
//! "Multiple CF's can be connected for availability, performance, and
//! capacity reasons." This example takes CF01 out of service under a live
//! workload: the data-sharing group quiesces for sub-millisecond windows,
//! re-creates its lock space from the members' in-storage tables, destages
//! the group buffer, and reconnects everything to CF02 — while a writer
//! thread keeps committing and an open transaction keeps its lock.
//!
//! Run with: `cargo run --example cf_maintenance`

use parallel_sysplex::cf::SystemId;
use parallel_sysplex::db::group::{DataSharingGroup, GroupConfig};
use parallel_sysplex::services::sysplex::{Sysplex, SysplexConfig};
use parallel_sysplex::services::system::SystemConfig;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let plex = Sysplex::new(SysplexConfig::functional("MAINTPLEX"));
    let cf1 = plex.add_cf("CF01");
    let mut config = GroupConfig::default();
    config.db.lock_timeout = Duration::from_millis(300);
    let group =
        DataSharingGroup::new(config, &cf1, plex.farm.clone(), plex.timer.clone(), plex.xcf.clone()).unwrap();
    for i in 0..2u8 {
        plex.ipl(SystemConfig::cmos(SystemId::new(i), 2));
        group.add_member(SystemId::new(i)).unwrap();
    }
    let a = group.member(SystemId::new(0)).unwrap();
    let b = group.member(SystemId::new(1)).unwrap();

    println!("structures on CF01: {:?}", cf1.inventory());

    // Baseline data + an open transaction holding a lock across the move.
    a.run(10, |db, txn| {
        for k in 0..10u64 {
            db.write(txn, k, Some(format!("row-{k}").as_bytes()))?;
        }
        Ok(())
    })
    .unwrap();
    let mut held = a.begin();
    a.write(&mut held, 3, Some(b"locked-across-rebuild")).unwrap();
    println!("open transaction holds an exclusive lock on record 3");

    // Background writer hammering other records throughout.
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let b = Arc::clone(&b);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(Ordering::Acquire) {
                b.run(100, |db, txn| db.write(txn, 100 + n % 20, Some(&n.to_be_bytes()))).unwrap();
                n += 1;
            }
            n
        })
    };
    std::thread::sleep(Duration::from_millis(20));

    // The maintenance event: rebuild everything onto CF02.
    let cf2 = plex.add_cf("CF02");
    let t0 = Instant::now();
    group.rebuild_into(&cf2).unwrap();
    println!("rebuild onto CF02 completed in {:?}", t0.elapsed());
    println!("structures on CF02: {:?}", cf2.inventory());

    std::thread::sleep(Duration::from_millis(20));
    stop.store(true, Ordering::Release);
    let commits = writer.join().unwrap();
    println!("background writer committed {commits} transactions across the rebuild");

    // The held lock survived the move.
    let mut probe = b.begin();
    let blocked = b.write(&mut probe, 3, Some(b"should-block"));
    println!("peer write to the locked record during hold: {:?}", blocked.is_err());
    assert!(blocked.is_err());
    b.abort(&mut probe).unwrap();
    a.commit(&mut held).unwrap();

    let v = b.run(10, |db, txn| db.read(txn, 3)).unwrap().unwrap();
    println!("after commit, peer reads: {}", String::from_utf8_lossy(&v));
    assert_eq!(v, b"locked-across-rebuild");

    // CF01 can now be powered off.
    println!("CF01 out of service; sysplex continues on CF02");
    group.remove_member(SystemId::new(0));
    group.remove_member(SystemId::new(1));
    plex.remove_planned(SystemId::new(0));
    plex.remove_planned(SystemId::new(1));
}
