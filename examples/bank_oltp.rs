//! Bank OLTP with continuous availability — the paper's §2.5 story.
//!
//! Three systems run a debit/credit workload through CICS-style regions
//! with dynamic transaction routing and VTAM generic-resource logons. Mid
//! run, one system is killed: the heartbeat fences it, ARM hands its
//! database element to a survivor, peer recovery backs out its in-flight
//! work and frees its retained locks, the router redirects new work — and
//! the books still balance.
//!
//! Run with: `cargo run --example bank_oltp`

use parallel_sysplex::cf::SystemId;
use parallel_sysplex::db::group::{DataSharingGroup, GroupConfig};
use parallel_sysplex::services::arm::ElementSpec;
use parallel_sysplex::services::sysplex::{Sysplex, SysplexConfig};
use parallel_sysplex::services::system::SystemConfig;
use parallel_sysplex::services::wlm::ServiceClass;
use parallel_sysplex::subsys::routing::TransactionRouter;
use parallel_sysplex::subsys::tm::{CicsRegion, TranDef};
use parallel_sysplex::subsys::vtam::{generic_resource_params, GenericResources};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const ACCOUNTS: u64 = 100;
const OPENING_BALANCE: i64 = 1_000;

fn main() {
    let plex = Sysplex::new(SysplexConfig::functional("BANKPLEX"));
    let cf = plex.add_cf("CF01");
    let mut config = GroupConfig::default();
    config.db.lock_timeout = Duration::from_millis(200);
    let group =
        DataSharingGroup::new(config, &cf, plex.farm.clone(), plex.timer.clone(), plex.xcf.clone()).unwrap();
    plex.wlm.define_class(ServiceClass {
        name: "BANKHIGH".into(),
        goal: Duration::from_millis(50),
        importance: 1,
    });

    // Generic resources: customers just log on to "BANK".
    let gr_list = cf.allocate_list_structure("ISTGENERIC", generic_resource_params()).unwrap();
    let vtam = GenericResources::open(&gr_list, cf.subchannel(), plex.wlm.clone()).unwrap();

    let router = TransactionRouter::new(plex.wlm.clone());
    let mut regions = Vec::new();
    for i in 0..3u8 {
        let id = SystemId::new(i);
        let image = plex.ipl(SystemConfig::cmos(id, 2));
        let db = group.add_member(id).unwrap();
        let region = CicsRegion::new(image, db, plex.wlm.clone());
        install_transactions(&region);
        router.register_region(Arc::clone(&region));
        vtam.register_instance("BANK", &format!("BANK0{i}"), id).unwrap();
        regions.push(region);
    }

    // ARM: when a system dies, a survivor recovers the group on its
    // behalf.
    let recovered_on = Arc::new(AtomicU64::new(u64::MAX));
    for i in 0..3u8 {
        let id = SystemId::new(i);
        let group_for_arm = Arc::clone(&group);
        let router_for_arm = Arc::clone(&router);
        let recovered_on = Arc::clone(&recovered_on);
        plex.arm
            .register(
                ElementSpec {
                    name: format!("BANKDB{i:02}"),
                    restart_group: "BANKGRP".into(),
                    sequence: 1,
                    affinity_to: None,
                },
                id,
                move |target| {
                    router_for_arm.deregister_region(id);
                    if let Some(failed) = group_for_arm.crash_member(id) {
                        let report = group_for_arm.recover_on(target, &failed).expect("peer recovery");
                        recovered_on.store(target.0 as u64, Ordering::SeqCst);
                        println!(
                            "  ARM: peer recovery on {target}: {} txns backed out, {} updates undone, {} retained locks freed",
                            report.backed_out_txns, report.undone_updates, report.retained_released
                        );
                    }
                },
            )
            .unwrap();
    }

    // Open the accounts.
    group
        .member(SystemId::new(0))
        .unwrap()
        .run(10, |db, txn| {
            for acct in 0..ACCOUNTS {
                db.write(txn, acct, Some(&OPENING_BALANCE.to_be_bytes()))?;
            }
            Ok(())
        })
        .unwrap();
    println!("{ACCOUNTS} accounts opened with {OPENING_BALANCE} each");

    // Customers log on through the generic resource and run transfers.
    let sessions: Vec<_> = (0..6).map(|_| vtam.logon("BANK").unwrap()).collect();
    println!(
        "6 customers logged on to generic name BANK, bound across instances: {:?}",
        sessions.iter().map(|s| s.instance.as_str()).collect::<Vec<_>>()
    );

    let completed = Arc::new(AtomicU64::new(0));
    let failed_system = SystemId::new(2);

    // Phase 1: all three systems healthy.
    run_phase(&plex, &router, &completed, 120, "phase 1 (3 systems)");

    // Phase 2: system 2 dies abruptly.
    println!("\n*** killing {failed_system} mid-workload ***");
    plex.kill(failed_system);
    vtam.fail_system(failed_system).unwrap();
    assert!(plex.farm.fence().is_fenced(failed_system.0), "fenced before anything else");
    run_phase(&plex, &router, &completed, 120, "phase 2 (2 survivors)");

    // The dropped customers just log on again — still to "BANK".
    let rebind = vtam.logon("BANK").unwrap();
    println!("re-logon after failure bound to {} on {}", rebind.instance, rebind.system);
    assert_ne!(rebind.system, failed_system);

    // Audit: the books balance exactly.
    let survivor = group.member(SystemId::new(0)).unwrap();
    let total: i64 = survivor
        .run(10, |db, txn| {
            let mut sum = 0i64;
            for acct in 0..ACCOUNTS {
                sum += i64::from_be_bytes(db.read(txn, acct)?.unwrap()[..8].try_into().unwrap());
            }
            Ok(sum)
        })
        .unwrap();
    println!("\naudit: total balance = {total} (expected {})", ACCOUNTS as i64 * OPENING_BALANCE);
    assert_eq!(total, ACCOUNTS as i64 * OPENING_BALANCE, "money conserved across the failure");
    let target = recovered_on.load(Ordering::SeqCst);
    assert!(target != u64::MAX, "ARM ran peer recovery");
    assert_ne!(target, failed_system.0 as u64, "recovery ran on a survivor, not the corpse");
    println!(
        "continuous availability demonstrated: {} transactions completed",
        completed.load(Ordering::SeqCst)
    );

    for r in &regions {
        if r.system().id() != failed_system {
            r.system().quiesce();
        }
    }
}

fn install_transactions(region: &CicsRegion) {
    let rng_state = Arc::new(Mutex::new(0x2545_F491_4F6C_DD1Du64 ^ region.system().id().0 as u64));
    region.define(TranDef {
        name: "XFER".into(),
        service_class: "BANKHIGH".into(),
        handler: Arc::new(move |db, txn| {
            let (from, to) = {
                let mut s = rng_state.lock();
                *s ^= *s << 13;
                *s ^= *s >> 7;
                *s ^= *s << 17;
                let from = *s % ACCOUNTS;
                *s ^= *s << 13;
                *s ^= *s >> 7;
                *s ^= *s << 17;
                (from, *s % ACCOUNTS)
            };
            if from == to {
                return Ok(());
            }
            // Lock in key order to avoid deadlocks.
            let (lo, hi) = if from < to { (from, to) } else { (to, from) };
            let lo_v = i64::from_be_bytes(db.read(txn, lo)?.unwrap()[..8].try_into().unwrap());
            let hi_v = i64::from_be_bytes(db.read(txn, hi)?.unwrap()[..8].try_into().unwrap());
            let amount = 5;
            let (lo_n, hi_n) =
                if lo == from { (lo_v - amount, hi_v + amount) } else { (lo_v + amount, hi_v - amount) };
            db.write(txn, lo, Some(&lo_n.to_be_bytes()))?;
            db.write(txn, hi, Some(&hi_n.to_be_bytes()))
        }),
    });
}

fn run_phase(plex: &Sysplex, router: &TransactionRouter, completed: &Arc<AtomicU64>, n: usize, label: &str) {
    let mut pending = Vec::new();
    for _ in 0..n {
        plex.tick();
        match router.submit("XFER") {
            Ok(p) => pending.push(p),
            Err(e) => println!("  route refused: {e}"),
        }
    }
    let mut ok = 0;
    for p in pending {
        if p.wait(Duration::from_secs(30)).is_ok() {
            ok += 1;
            completed.fetch_add(1, Ordering::SeqCst);
        }
    }
    println!("{label}: {ok}/{n} transactions completed; distribution {:?}", router.distribution());
}
