//! Wire-level chaos regressions through the public crate surface.
//!
//! Three robustness contracts under hostile-network conditions:
//!
//! 1. **Typed faults, never panics.** Whatever a chaos proxy does to the
//!    byte stream — garbled bodies, truncated frames, dropped or
//!    duplicated responses — every `Remote*` method returns
//!    `CfError::LinkTimeout` or `CfError::InterfaceControlCheck`. No
//!    other error class, no panic, no hang.
//! 2. **Accounting survives faults.** The serving CF's per-class command
//!    accounting still reconciles `issued == sync + async_converted`
//!    after a fault storm.
//! 3. **Campaign determinism + the operations-day bar.** The composed
//!    partition + heal campaign is plan-level deterministic under a
//!    pinned seed, loses zero acked transactions, and passes the lock
//!    exclusivity / no-orphan oracle.

use parallel_sysplex::cf::cache::{BlockName, CacheParams, WriteKind};
use parallel_sysplex::cf::error::CfError;
use parallel_sysplex::cf::facility::{CfConfig, CouplingFacility};
use parallel_sysplex::cf::list::{ListParams, LockCondition, WritePosition};
use parallel_sysplex::cf::lock::{LockMode, LockParams};
use parallel_sysplex::cf::transport::{
    serve_cf_stream, CfTransport, InProcessTransport, RemoteCacheConnection, RemoteListConnection,
    RemoteLockConnection, TcpTransport,
};
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::Duration;
use sysplex_harness::{default_chaos_plans, partition_heal, ChaosPlan, ChaosProxy, OpsDayConfig, WireFault};

/// A CF server with one structure of each kind, served over TCP until
/// the listener drops.
fn spawn_cf_server() -> (SocketAddr, Arc<CouplingFacility>) {
    let cf = CouplingFacility::new(CfConfig::named("CF-STORM"));
    cf.allocate_lock_structure("STORM_LOCK", LockParams::with_entries(64)).unwrap();
    cf.allocate_cache_structure("STORM_GBP", CacheParams::store_in(64)).unwrap();
    cf.allocate_list_structure("STORM_LIST", ListParams::with_headers(4)).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let served = Arc::clone(&cf);
    std::thread::spawn(move || {
        while let Ok((stream, _)) = listener.accept() {
            let cf = Arc::clone(&served);
            std::thread::spawn(move || {
                let per_conn = InProcessTransport::new(&cf);
                let _ = serve_cf_stream(&per_conn, stream);
            });
        }
    });
    (addr, cf)
}

/// The broken-link contract: transport faults surface as exactly two
/// typed errors.
fn assert_typed(context: &str, e: &CfError) {
    assert!(
        matches!(e, CfError::LinkTimeout(_) | CfError::InterfaceControlCheck(_)),
        "{context}: expected LinkTimeout or InterfaceControlCheck, got {e:?}"
    );
}

/// Garble, truncate, drop, duplicate, and delay frames while a client
/// hammers lock, cache, and list methods across reconnects. Every error
/// anywhere in the session must be one of the two transport faults, and
/// the serving CF's per-class accounting must still reconcile.
#[test]
fn fault_storm_surfaces_only_typed_errors_and_accounting_reconciles() {
    let (addr, cf) = spawn_cf_server();
    // Early frames are admission traffic; the storm starts at frame 4
    // and keeps hitting whatever round trips get that far. Frames count
    // both directions, so faults land on requests and responses alike.
    let mut plan = ChaosPlan::new();
    for (i, fault) in [
        WireFault::Garble,
        WireFault::Truncate,
        WireFault::Drop,
        WireFault::Duplicate,
        WireFault::DelayMs(5),
        WireFault::Garble,
        WireFault::Truncate,
        WireFault::Drop,
        WireFault::Duplicate,
        WireFault::Garble,
    ]
    .into_iter()
    .enumerate()
    {
        plan = plan.at(4 + 4 * i as u64, fault);
    }
    let proxy = ChaosProxy::start(addr, plan).unwrap();

    let mut ops = 0u32;
    let mut faulted = 0u32;
    for round in 0..10u32 {
        let Ok(transport) = TcpTransport::connect(proxy.addr()) else { continue };
        transport.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
        let transport: Arc<dyn CfTransport> = Arc::new(transport);

        match RemoteLockConnection::attach(Arc::clone(&transport), "STORM_LOCK") {
            Ok(lock) => {
                for i in 0..4u32 {
                    let entry = lock.hash_resource(format!("R{round}.{i}").as_bytes());
                    ops += 1;
                    match lock.request_lock(entry, LockMode::Exclusive) {
                        Ok(_) => {
                            if let Err(e) = lock.release_lock(entry) {
                                assert_typed("release_lock", &e);
                                faulted += 1;
                            }
                        }
                        Err(e) => {
                            assert_typed("request_lock", &e);
                            faulted += 1;
                        }
                    }
                }
            }
            Err(e) => {
                assert_typed("lock attach", &e);
                faulted += 1;
            }
        }

        match RemoteCacheConnection::attach(Arc::clone(&transport), "STORM_GBP", 64) {
            Ok(cache) => {
                for i in 0..3u32 {
                    let block = BlockName::from_parts(0, u64::from(round * 8 + i));
                    ops += 1;
                    if let Err(e) = cache.write_invalidate(block, &[round as u8; 64], WriteKind::ChangedData)
                    {
                        assert_typed("write_invalidate", &e);
                        faulted += 1;
                    }
                    if let Err(e) = cache.register_read(block, i) {
                        assert_typed("register_read", &e);
                        faulted += 1;
                    }
                }
            }
            Err(e) => {
                assert_typed("cache attach", &e);
                faulted += 1;
            }
        }

        match RemoteListConnection::attach(Arc::clone(&transport), "STORM_LIST", 4) {
            Ok(list) => {
                for i in 0..3u64 {
                    ops += 1;
                    match list.enqueue(
                        (i % 4) as usize,
                        u64::from(round) * 100 + i,
                        b"payload",
                        WritePosition::Tail,
                        LockCondition::None,
                    ) {
                        Ok(_) => {}
                        Err(e) => {
                            assert_typed("enqueue", &e);
                            faulted += 1;
                        }
                    }
                    if let Err(e) = list.scan((i % 4) as usize) {
                        assert_typed("scan", &e);
                        faulted += 1;
                    }
                }
            }
            Err(e) => {
                assert_typed("list attach", &e);
                faulted += 1;
            }
        }
    }

    assert!(ops > 0, "the storm must exercise real commands");
    assert!(!proxy.applied().is_empty(), "the plan must actually fire");
    assert!(faulted > 0, "a {} fault plan must surface at least one typed error", proxy.applied().len());

    // Contract 2: the serving CF's accounting survived every fault.
    let stats = cf.command_stats();
    for (class, issued, sync, async_converted, _mean) in stats.report() {
        assert_eq!(issued, sync + async_converted, "{class}: issued == sync + async_converted");
    }
    assert_eq!(stats.issued(), stats.sync() + stats.async_converted(), "totals reconcile");
}

/// Composed partition + heal over TCP: the fenced member re-admits after
/// the heal, zero acked transactions are lost, and the trace passes the
/// lock-exclusivity and no-orphan-record invariants.
#[test]
fn partition_heal_campaign_meets_the_operations_day_bar() {
    let outcome = partition_heal(&OpsDayConfig { seed: 0xB10C_CA5E, members: 3, txns_per_member: 10 });
    outcome.assert_clean();
    assert_eq!(outcome.lost, 0);
    assert!(outcome.time_to_fence_us > 0, "SFM fence observed and timed");
    assert!(outcome.time_to_readmit_us > 0, "re-admission observed and timed");
    assert!(outcome.reipls > 0, "the victim re-IPLed at least once");
    assert!(outcome.committed >= 30, "members kept committing through the partition");
}

/// Plan-level determinism: a pinned seed derives identical fault plans
/// every time — across plan construction and across full campaign runs —
/// so a CI failure seed replays the same wire misfortune.
#[test]
fn seeded_chaos_replays_at_plan_level() {
    assert_eq!(default_chaos_plans(0x5EED, 3), default_chaos_plans(0x5EED, 3));
    assert_ne!(default_chaos_plans(0x5EED, 3), default_chaos_plans(0x5EEE, 3));

    let config = OpsDayConfig { seed: 0x00D3_73C7, members: 3, txns_per_member: 5 };
    let a = partition_heal(&config);
    let b = partition_heal(&config);
    assert_eq!(a.chaos_plan, b.chaos_plan, "same seed, same recorded plans");
    assert!(!a.chaos_plan.is_empty(), "plans recorded as builder chains");
    assert_eq!(a.seed, b.seed);
    a.assert_clean();
    b.assert_clean();
}
