//! Transport-layer regression tests across both backends.
//!
//! The unified broken-link contract: a command submitted after the CF
//! executor shut down (in-process backend) and a command submitted on a
//! TCP link whose peer vanished must surface the **same typed error** —
//! `CfError::LinkTimeout` — so exploiters run one recovery path for
//! "facility gone" regardless of how the commands travelled. Garbled
//! frames, by contrast, are interface control checks, matching the
//! injected-IFCC machinery.

use parallel_sysplex::cf::error::CfError;
use parallel_sysplex::cf::facility::{CfConfig, CouplingFacility};
use parallel_sysplex::cf::lock::{LockMode, LockParams};
use parallel_sysplex::cf::transport::{
    serve_cf_stream, CfTransport, InProcessTransport, RemoteLockConnection, TcpTransport, TransportBackend,
};
use parallel_sysplex::cf::wire::{read_frame, write_frame};
use parallel_sysplex::cf::WireRequest;
use std::io::Write;
use std::net::TcpListener;
use std::sync::Arc;

fn cf_with_lock() -> Arc<CouplingFacility> {
    let cf = CouplingFacility::new(CfConfig::named("CF01"));
    cf.allocate_lock_structure("IRLM1", LockParams::with_entries(64)).unwrap();
    cf
}

/// Both failure modes yield LinkTimeout with the issuing command class.
#[test]
fn shutdown_and_dead_link_surface_the_same_typed_error() {
    // Backend 1: in-process, facility shut down mid-session.
    let cf = cf_with_lock();
    let native = cf.connect_lock("IRLM1").unwrap();
    let slot = native.hash_resource(b"ACCT.1");
    assert!(native.request_lock(slot, LockMode::Exclusive).unwrap().is_granted());
    cf.shutdown();
    let in_process_err = native.request_lock(slot, LockMode::Exclusive).unwrap_err();

    // Backend 2: TCP, server hangs up after the first command.
    let cf2 = cf_with_lock();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let transport = InProcessTransport::new(&cf2);
        // Serve exactly one request, then vanish without closing cleanly.
        let body = read_frame(&mut stream).unwrap();
        let req = WireRequest::decode(&body).unwrap();
        write_frame(&mut stream, &transport.dispatch(req).encode()).unwrap();
        drop(stream);
    });
    let tcp = Arc::new(TcpTransport::connect(addr).unwrap());
    assert_eq!(tcp.backend(), TransportBackend::Tcp);
    let remote = RemoteLockConnection::attach(tcp, "IRLM1").unwrap();
    server.join().unwrap();
    let tcp_err = remote.request_lock(slot, LockMode::Exclusive).unwrap_err();

    // The regression: both backends, one error type.
    assert!(
        matches!(in_process_err, CfError::LinkTimeout("lock-request")),
        "in-process post-shutdown error: {in_process_err:?}"
    );
    assert!(matches!(tcp_err, CfError::LinkTimeout("lock-request")), "tcp dead-link error: {tcp_err:?}");
}

/// The in-process backend reports the shutdown on every command class
/// and keeps the fault visible in the subchannel accounting.
#[test]
fn post_shutdown_submits_fail_and_are_accounted() {
    let cf = cf_with_lock();
    let lock = cf.connect_lock("IRLM1").unwrap();
    let slot = lock.hash_resource(b"ACCT.2");
    assert!(lock.request_lock(slot, LockMode::Shared).unwrap().is_granted());
    cf.shutdown();
    assert!(cf.is_shut_down());
    assert!(matches!(lock.request_lock(slot, LockMode::Shared), Err(CfError::LinkTimeout(_))));
    assert!(matches!(lock.release_lock(slot), Err(CfError::LinkTimeout(_))));
    let faulted = cf.command_stats().faulted();
    assert!(faulted >= 2, "post-shutdown submits must count as faulted, got {faulted}");
}

/// A garbled frame is an interface control check — distinct from the
/// dead-link timeout, same as a corrupted-link fault injection.
#[test]
fn garbled_frame_is_an_interface_control_check() {
    let cf = cf_with_lock();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        // Answer the attach properly so the client holds a live handle...
        let transport = InProcessTransport::new(&cf);
        let body = read_frame(&mut stream).unwrap();
        let req = WireRequest::decode(&body).unwrap();
        write_frame(&mut stream, &transport.dispatch(req).encode()).unwrap();
        // ...then answer the next command with a valid frame holding junk.
        let _ = read_frame(&mut stream).unwrap();
        write_frame(&mut stream, &[0xDE, 0xAD, 0xBE, 0xEF]).unwrap();
    });
    let tcp = Arc::new(TcpTransport::connect(addr).unwrap());
    let remote = RemoteLockConnection::attach(tcp, "IRLM1").unwrap();
    let err = remote.request_lock(3, LockMode::Exclusive).unwrap_err();
    server.join().unwrap();
    assert!(
        matches!(err, CfError::InterfaceControlCheck(_)),
        "garbled response frame must be an IFCC, got {err:?}"
    );
}

/// A slow writer that dribbles a request one byte at a time is served
/// normally: the mid-frame stall allowance tolerates partial frames, so
/// a congested (but live) link never tears the session down.
#[test]
fn served_session_tolerates_a_dribbling_writer() {
    let cf = cf_with_lock();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = {
        let cf = Arc::clone(&cf);
        std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let transport = InProcessTransport::new(&cf);
            serve_cf_stream(&transport, stream).unwrap();
        })
    };

    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();

    // Render the attach request into a full frame, then trickle it out
    // byte by byte with pauses well inside the per-read stall allowance.
    let body = WireRequest::AttachLock { structure: "IRLM1".to_string() }.encode();
    let mut framed = Vec::new();
    write_frame(&mut framed, &body).unwrap();
    for byte in &framed {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    let reply = read_frame(&mut stream).unwrap();
    let response = parallel_sysplex::cf::WireResponse::decode(&reply).unwrap();
    assert!(
        matches!(response, parallel_sysplex::cf::WireResponse::Attached { .. }),
        "dribbled attach must be served normally, got {response:?}"
    );
    drop(stream);
    server.join().unwrap();
}

/// The multi-process smoke in miniature: a served CF session carries a
/// full lock round trip, and the session's abnormal end retains locks.
#[test]
fn served_session_end_to_end() {
    let cf = cf_with_lock();
    let native = cf.connect_lock("IRLM1").unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = {
        let cf = Arc::clone(&cf);
        std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let transport = InProcessTransport::new(&cf);
            serve_cf_stream(&transport, stream).unwrap();
        })
    };
    let tcp = Arc::new(TcpTransport::connect(addr).unwrap());
    let remote = RemoteLockConnection::attach(tcp, "IRLM1").unwrap();
    let peer = remote.conn_id();
    let slot = remote.hash_resource(b"ACCT.3");
    assert_eq!(slot, native.hash_resource(b"ACCT.3"), "remote hashing matches native");
    assert!(remote.request_lock(slot, LockMode::Exclusive).unwrap().is_granted());
    remote.write_lock_record(b"ACCT.3", LockMode::Exclusive, b"TXN-9").unwrap();
    drop(remote); // socket gone mid-transaction
    server.join().unwrap();

    // The dead session's lock interest survived as failed-persistent.
    assert!(native.is_failed_persistent(peer).unwrap());
    let retained = native.retained_locks_of(peer).unwrap();
    assert_eq!(retained.len(), 1);
    assert_eq!(retained[0].resource, b"ACCT.3");
    native.recovery_complete_for(peer).unwrap();
    assert!(!native.is_failed_persistent(peer).unwrap());
}
