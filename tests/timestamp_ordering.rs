//! §3.1's timer claim, verified through the logs: "local processor
//! timestamps can be relied upon for consistency with respect to
//! timestamps obtained on other systems."
//!
//! A causal chain of transactions alternates between two systems (each
//! reads what the previous one wrote before writing the next value). The
//! members' logs — timestamped independently, on different "processors" —
//! are then merged by LSN: the merged order must respect causality
//! exactly, which only holds if the shared TOD is monotonic sysplex-wide.

use parallel_sysplex::cf::SystemId;
use parallel_sysplex::db::group::{DataSharingGroup, GroupConfig};
use parallel_sysplex::db::log::{LogManager, LogRecord};
use parallel_sysplex::services::sysplex::{Sysplex, SysplexConfig};
use std::sync::Arc;

fn stack() -> (Arc<Sysplex>, Arc<DataSharingGroup>) {
    let plex = Sysplex::new(SysplexConfig::functional("TODPLEX"));
    let cf = plex.add_cf("CF01");
    let group = DataSharingGroup::new(
        GroupConfig::default(),
        &cf,
        plex.farm.clone(),
        plex.timer.clone(),
        plex.xcf.clone(),
    )
    .unwrap();
    group.add_member(SystemId::new(0)).unwrap();
    group.add_member(SystemId::new(1)).unwrap();
    (plex, group)
}

#[test]
fn merged_logs_respect_cross_system_causality() {
    let (_plex, group) = stack();
    let members = group.members();
    let chain_len = 40u64;

    // The causal chain: txn i reads counter==i then writes i+1, hopping
    // systems each step.
    for i in 0..chain_len {
        let db = &members[(i % 2) as usize];
        db.run(10, move |db, txn| {
            let cur = db.read(txn, 0)?.map(|v| u64::from_be_bytes(v[..8].try_into().unwrap())).unwrap_or(0);
            assert_eq!(cur, i, "causal chain intact");
            db.write(txn, 0, Some(&(i + 1).to_be_bytes()))
        })
        .unwrap();
    }

    // Merge both logs by LSN.
    let mut merged: Vec<(u64, u8, LogRecord)> = Vec::new();
    for (m, vol) in [(0u8, "DSGLOG00"), (1u8, "DSGLOG01")] {
        for rec in LogManager::read_log(0, &group.farm, vol).unwrap() {
            merged.push((rec.lsn().0, m, rec));
        }
    }
    merged.sort_by_key(|(lsn, _, _)| *lsn);

    // LSNs are unique sysplex-wide.
    for w in merged.windows(2) {
        assert!(w[0].0 < w[1].0, "duplicate or non-monotonic LSN");
    }

    // In merged order, the chain's update records carry strictly
    // increasing after-values, alternating systems — causality preserved
    // across processors.
    let updates: Vec<(u8, u64)> = merged
        .iter()
        .filter_map(|(_, m, rec)| match rec {
            LogRecord::Update { key: 0, after: Some(v), .. } => {
                Some((*m, u64::from_be_bytes(v[..8].try_into().unwrap())))
            }
            _ => None,
        })
        .collect();
    assert_eq!(updates.len(), chain_len as usize);
    for (i, (system, value)) in updates.iter().enumerate() {
        assert_eq!(*value, i as u64 + 1, "merged log order == causal order");
        assert_eq!(*system, (i % 2) as u8, "steps alternate systems");
    }

    // Commit records also interleave in causal order.
    let commits: Vec<u8> = merged
        .iter()
        .filter_map(|(_, m, rec)| matches!(rec, LogRecord::Commit { .. }).then_some(*m))
        .collect();
    assert_eq!(commits.len(), chain_len as usize);
    for (i, system) in commits.iter().enumerate() {
        assert_eq!(*system, (i % 2) as u8);
    }

    group.remove_member(SystemId::new(0));
    group.remove_member(SystemId::new(1));
}

#[test]
fn transaction_ids_are_globally_ordered_without_coordination() {
    let (_plex, group) = stack();
    let members = group.members();
    // Interleaved begins across systems yield strictly increasing ids.
    let mut last = 0u64;
    for i in 0..100 {
        let db = &members[i % 2];
        let mut txn = db.begin();
        assert!(txn.id() > last, "txn ids strictly increase sysplex-wide");
        last = txn.id();
        db.abort(&mut txn).unwrap();
    }
    group.remove_member(SystemId::new(0));
    group.remove_member(SystemId::new(1));
}
