//! Seeded fault campaigns: fixed regression corpus plus a bounded
//! randomized sweep.
//!
//! Every campaign here is fully derived from a single `u64` seed
//! (member count, duplexing, fault plan, workload stream), runs on the
//! virtual Sysplex Timer, and is audited by the trace oracle. A failure
//! panics with the seed and a shrunk, copy-pasteable fault plan; replay
//! it with `SYSPLEX_SEED=<seed> cargo test --test campaigns`.

use std::time::{Duration, Instant};
use sysplex_harness::mutate::{add_fault, mutate_spec, MAX_FAULTS};
use sysplex_harness::{
    run_checked, CampaignSpec, CoverageMap, Fault, FaultPlan, SplitMix64, SweepConfig, SweepEngine,
};

/// Fixed corpus. The annotated seeds reproduced real bugs during
/// development; the rest spread coverage across member counts, duplexing,
/// and fault mixes. All must stay green forever.
const REGRESSION_SEEDS: &[u64] = &[
    0x51cc,             // duplexed mirror writes misattributed to the facility ring
    0xd0b1,             // duplex failover while a structure-loss fault is pending
    0x15792635cdd1887b, // wind-down drain abandoned the backlog on an armed link fault (guided sweep find)
    0x1,
    0x2a,
    0x12d687,
    0xdead_beef,
    0xfeed_f00d,
    0x5eed_c0de,
    0x0bad_cafe,
    0x7777_7777,
];

#[test]
fn regression_seed_corpus_stays_green() {
    for &seed in REGRESSION_SEEDS {
        let outcome = run_checked(CampaignSpec::from_seed(seed));
        assert!(outcome.stats.commits > 0, "seed {seed:#x} did no work: {:?}", outcome.stats);
    }
}

/// ISSUE acceptance: a single u64 seed reproduces a campaign bit-for-bit.
#[test]
fn acceptance_single_seed_reproduces_bit_for_bit() {
    let a = CampaignSpec::from_seed(0xacce97).run();
    let b = CampaignSpec::from_seed(0xacce97).run();
    let (la, lb) = (a.canonical_lines(), b.canonical_lines());
    for (i, (x, y)) in la.iter().zip(lb.iter()).enumerate() {
        assert_eq!(x, y, "merged traces diverge at record {i}");
    }
    assert_eq!(la.len(), lb.len());
    assert_eq!(a.digest, b.digest);
}

fn parse_u64(v: &str) -> u64 {
    let v = v.trim();
    match v.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    }
    .unwrap_or_else(|_| panic!("{v} is not a u64"))
}

/// Bounded coverage-guided sweep through the [`SweepEngine`].
/// `SYSPLEX_SWEEP_MS` sets the time budget (default 2 s locally; CI runs
/// 60 s); `SYSPLEX_SWEEP_BASE_SEED` pins the engine's whole decision
/// stream (fresh wall-clock entropy otherwise); `SYSPLEX_SEED` replays
/// exactly one `from_seed` campaign instead. Every run prints its base
/// seed as a copy-pasteable replay line, so a CI failure is reproducible
/// from the log alone — and `run_checked` additionally prints the shrunk
/// spec of the specific failing campaign.
#[test]
fn randomized_sweep_within_budget() {
    if let Ok(v) = std::env::var("SYSPLEX_SEED") {
        let seed = parse_u64(&v);
        println!("replaying seed {seed:#x}");
        run_checked(CampaignSpec::from_seed(seed));
        return;
    }
    let budget_ms: u64 = std::env::var("SYSPLEX_SWEEP_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(2_000);
    // The engine is fully deterministic given the base seed: the same
    // base replays the same spec stream (fresh draws and mutants alike)
    // until the budget cuts it off.
    let base_seed = std::env::var("SYSPLEX_SWEEP_BASE_SEED").map(|v| parse_u64(&v)).unwrap_or_else(|_| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0)
    });
    println!(
        "sweep base seed {base_seed:#x}, budget {budget_ms} ms — replay with \
         SYSPLEX_SWEEP_BASE_SEED={base_seed:#x} SYSPLEX_SWEEP_MS={budget_ms} cargo test --test \
         campaigns randomized_sweep"
    );
    let mut engine = SweepEngine::new(SweepConfig::guided(base_seed));
    let deadline = Instant::now() + Duration::from_millis(budget_ms);
    while Instant::now() < deadline {
        let spec = engine.next_spec();
        let outcome = run_checked(spec.clone());
        engine.record(&spec, &CoverageMap::of(&outcome));
    }
    println!(
        "sweep: {} campaigns, all invariants held; {} distinct coverage bits, corpus {}",
        engine.campaigns(),
        engine.coverage().count(),
        engine.corpus().len()
    );
    assert!(engine.campaigns() > 0);
}

/// ISSUE §13 acceptance: growing the CF lock table online — mid-campaign,
/// under live lock traffic, twice, and once more right after a fatal
/// member stall — must neither lose nor duplicate any held or retained
/// lock (the oracle audits exclusivity and orphan records over the whole
/// merged trace) and must stay bit-for-bit replayable.
#[test]
fn online_lock_table_resize_under_live_traffic() {
    use parallel_sysplex::cf::trace::TraceEvent;

    let spec = CampaignSpec {
        name: "resize-under-load".into(),
        seed: 0x9e512e,
        members: 3,
        steps: 300,
        plan: FaultPlan::new()
            .at(60, Fault::LockTableGrow)
            .at(90, Fault::SystemStall { system: 2, steps: 120 })
            .at(220, Fault::LockTableGrow),
        duplex: false,
    };
    let a = run_checked(spec.clone());
    assert!(a.stats.resizes >= 1, "no resize applied: {:?}", a.stats);
    assert!(a.stats.commits > 20, "workload barely ran: {:?}", a.stats);
    let resizes = a
        .records
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::LockTableResize { from_entries, to_entries } => {
                Some((from_entries, to_entries))
            }
            _ => None,
        })
        .collect::<Vec<_>>();
    assert_eq!(resizes.len() as u64, a.stats.resizes, "every resize traces exactly once");
    for (from, to) in &resizes {
        assert!(to > from, "resize must grow the table: {from} -> {to}");
    }

    let b = run_checked(spec);
    assert_eq!(a.digest, b.digest, "resize campaign must replay bit-for-bit");
    assert_eq!(a.stats, b.stats);
}

/// The coverage signal is as deterministic as the campaigns it observes:
/// one seed always hashes to the same map, different seeds to different
/// ones, and `merge`/`novel_bits` agree with `count`.
#[test]
fn coverage_map_is_deterministic_per_seed() {
    let a = CoverageMap::of(&CampaignSpec::from_seed(0xC0DE).run());
    let b = CoverageMap::of(&CampaignSpec::from_seed(0xC0DE).run());
    assert_eq!(a.digest(), b.digest(), "same seed must produce an identical coverage map");
    assert!(a.count() > 0, "a real campaign lights some coverage");

    let c = CoverageMap::of(&CampaignSpec::from_seed(0xD1CE).run());
    assert_ne!(a.digest(), c.digest(), "different seeds should light different coverage");

    let mut merged = CoverageMap::new();
    assert_eq!(merged.merge(&a), a.count());
    assert_eq!(merged.merge(&a), 0, "re-merging the same map adds nothing");
    let expected_novel = merged.novel_bits(&c);
    assert!(expected_novel > 0);
    assert_eq!(merged.merge(&c), expected_novel, "novel_bits must predict what merge admits");
}

/// Mutator soundness: every mutated plan round-trips through its printed
/// builder-chain form, and mutated specs — including the empty-plan and
/// max-length extremes — run without panicking.
#[test]
fn mutated_plans_round_trip_and_run() {
    let mut rng = SplitMix64::new(0x5EED_50DA);
    for i in 0..200 {
        let parent = CampaignSpec::from_seed(rng.next_u64());
        let donor = CampaignSpec::from_seed(rng.next_u64());
        let child = mutate_spec(&mut rng, &parent, Some(&donor));
        let printed = child.plan.to_string();
        let parsed = FaultPlan::parse(&printed)
            .unwrap_or_else(|e| panic!("round {i}: printed plan failed to parse ({e}): {printed}"));
        assert_eq!(parsed.to_string(), printed, "round {i}: Display/parse round trip");
        assert!(child.plan.len() <= MAX_FAULTS, "round {i}: mutation respects the fault cap");
    }

    // Shorter campaigns keep the property-run part of this test cheap;
    // the faults all land inside the reduced horizon anyway.
    let mut extremes = Vec::new();
    let mut empty = CampaignSpec::from_seed(0xE3);
    empty.steps = 150;
    empty.plan = FaultPlan::new();
    extremes.push(empty);
    let mut maxed = CampaignSpec::from_seed(0xE4);
    maxed.steps = 150;
    while maxed.plan.len() < MAX_FAULTS {
        maxed.plan = add_fault(&mut rng, &maxed.plan, 150, maxed.members);
    }
    extremes.push(maxed);
    for _ in 0..6 {
        let mut parent = CampaignSpec::from_seed(rng.next_u64());
        parent.steps = 150;
        let donor = extremes[0].clone();
        extremes.push(mutate_spec(&mut rng, &parent, Some(&donor)));
    }
    for spec in extremes {
        run_checked(spec);
    }
}

/// The record table is sharded; whole-table enumerations (`retained_locks`,
/// `records_snapshot`) merge across shards with an explicit sort. That
/// sort is what keeps seeded campaigns bit-for-bit reproducible — this
/// test pins it down directly at the structure level.
#[test]
fn sharded_record_merges_stay_sorted() {
    use parallel_sysplex::cf::lock::{DisconnectMode, LockMode, LockParams, LockStructure};

    let s = LockStructure::new("SORTCHK", &LockParams::with_entries(256)).unwrap();
    let conn = s.connect().unwrap();
    // Insert in a permuted order so shard iteration alone can't produce
    // sorted output by accident.
    const N: usize = 200;
    for i in 0..N {
        let r = (i * 7919) % N;
        s.write_record(conn, format!("RES{r:05}").as_bytes(), LockMode::Exclusive, &r.to_le_bytes()).unwrap();
    }
    let snap = s.records_snapshot();
    assert_eq!(snap.len(), N);
    for w in snap.windows(2) {
        assert!((&w[0].0, w[0].1) < (&w[1].0, w[1].1), "records_snapshot strictly sorted");
    }

    // Same property through the recovery path after a simulated failure.
    s.disconnect(conn, DisconnectMode::Abnormal).unwrap();
    let retained = s.retained_locks(conn);
    assert_eq!(retained.len(), N, "every record exactly once");
    for w in retained.windows(2) {
        assert!(w[0].resource < w[1].resource, "retained_locks strictly sorted");
    }
    for (i, lock) in retained.iter().enumerate() {
        assert_eq!(lock.resource, format!("RES{i:05}").into_bytes());
    }
}
