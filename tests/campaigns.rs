//! Seeded fault campaigns: fixed regression corpus plus a bounded
//! randomized sweep.
//!
//! Every campaign here is fully derived from a single `u64` seed
//! (member count, duplexing, fault plan, workload stream), runs on the
//! virtual Sysplex Timer, and is audited by the trace oracle. A failure
//! panics with the seed and a shrunk, copy-pasteable fault plan; replay
//! it with `SYSPLEX_SEED=<seed> cargo test --test campaigns`.

use std::time::{Duration, Instant};
use sysplex_harness::{run_checked, CampaignSpec, SplitMix64};

/// Fixed corpus. The annotated seeds reproduced real bugs during
/// development; the rest spread coverage across member counts, duplexing,
/// and fault mixes. All must stay green forever.
const REGRESSION_SEEDS: &[u64] = &[
    0x51cc, // duplexed mirror writes misattributed to the facility ring
    0xd0b1, // duplex failover while a structure-loss fault is pending
    0x1,
    0x2a,
    0x12d687,
    0xdead_beef,
    0xfeed_f00d,
    0x5eed_c0de,
    0x0bad_cafe,
    0x7777_7777,
];

#[test]
fn regression_seed_corpus_stays_green() {
    for &seed in REGRESSION_SEEDS {
        let outcome = run_checked(CampaignSpec::from_seed(seed));
        assert!(outcome.stats.commits > 0, "seed {seed:#x} did no work: {:?}", outcome.stats);
    }
}

/// ISSUE acceptance: a single u64 seed reproduces a campaign bit-for-bit.
#[test]
fn acceptance_single_seed_reproduces_bit_for_bit() {
    let a = CampaignSpec::from_seed(0xacce97).run();
    let b = CampaignSpec::from_seed(0xacce97).run();
    let (la, lb) = (a.canonical_lines(), b.canonical_lines());
    for (i, (x, y)) in la.iter().zip(lb.iter()).enumerate() {
        assert_eq!(x, y, "merged traces diverge at record {i}");
    }
    assert_eq!(la.len(), lb.len());
    assert_eq!(a.digest, b.digest);
}

/// Bounded randomized sweep. `SYSPLEX_SWEEP_MS` sets the time budget
/// (default 2 s locally; CI runs 60 s); `SYSPLEX_SEED` replays exactly
/// one seed instead. A failing seed is printed by the panic and can be
/// pinned into `REGRESSION_SEEDS` once fixed.
#[test]
fn randomized_sweep_within_budget() {
    if let Ok(v) = std::env::var("SYSPLEX_SEED") {
        let v = v.trim();
        let seed = match v.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => v.parse(),
        }
        .unwrap_or_else(|_| panic!("SYSPLEX_SEED={v} is not a u64"));
        println!("replaying seed {seed:#x}");
        run_checked(CampaignSpec::from_seed(seed));
        return;
    }
    let budget_ms: u64 = std::env::var("SYSPLEX_SWEEP_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(2_000);
    // Fresh entropy each run: the corpus covers the fixed seeds, the
    // sweep's job is to explore. The panic message names any bad seed.
    let entropy = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    println!("sweep entropy {entropy:#x}, budget {budget_ms} ms");
    let mut rng = SplitMix64::new(entropy);
    let deadline = Instant::now() + Duration::from_millis(budget_ms);
    let mut campaigns = 0u32;
    while Instant::now() < deadline {
        run_checked(CampaignSpec::from_seed(rng.next_u64()));
        campaigns += 1;
    }
    println!("sweep: {campaigns} randomized campaigns, all invariants held");
    assert!(campaigns > 0);
}

/// The record table is sharded; whole-table enumerations (`retained_locks`,
/// `records_snapshot`) merge across shards with an explicit sort. That
/// sort is what keeps seeded campaigns bit-for-bit reproducible — this
/// test pins it down directly at the structure level.
#[test]
fn sharded_record_merges_stay_sorted() {
    use parallel_sysplex::cf::lock::{DisconnectMode, LockMode, LockParams, LockStructure};

    let s = LockStructure::new("SORTCHK", &LockParams::with_entries(256)).unwrap();
    let conn = s.connect().unwrap();
    // Insert in a permuted order so shard iteration alone can't produce
    // sorted output by accident.
    const N: usize = 200;
    for i in 0..N {
        let r = (i * 7919) % N;
        s.write_record(conn, format!("RES{r:05}").as_bytes(), LockMode::Exclusive, &r.to_le_bytes()).unwrap();
    }
    let snap = s.records_snapshot();
    assert_eq!(snap.len(), N);
    for w in snap.windows(2) {
        assert!((&w[0].0, w[0].1) < (&w[1].0, w[1].1), "records_snapshot strictly sorted");
    }

    // Same property through the recovery path after a simulated failure.
    s.disconnect(conn, DisconnectMode::Abnormal).unwrap();
    let retained = s.retained_locks(conn);
    assert_eq!(retained.len(), N, "every record exactly once");
    for w in retained.windows(2) {
        assert!(w[0].resource < w[1].resource, "retained_locks strictly sorted");
    }
    for (i, lock) in retained.iter().enumerate() {
        assert_eq!(lock.resource, format!("RES{i:05}").into_bytes());
    }
}
