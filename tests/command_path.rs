//! The unified CF command path under load and under faults.
//!
//! Every CF operation an exploiter issues — lock, cache, or list — flows
//! through a [`parallel_sysplex::cf::CfSubchannel`], which decides sync vs
//! asynchronous execution (§3.3's two execution modes), keeps per-class
//! accounting, and surfaces injected link malfunctions as typed errors.
//! These tests drive the full stack from N emulated systems and reconcile
//! the facility-wide books.

use parallel_sysplex::cf::cache::{CacheParams, WriteKind};
use parallel_sysplex::cf::list::{DequeueEnd, ListParams, LockCondition, WritePosition};
use parallel_sysplex::cf::lock::{LockMode, LockParams};
use parallel_sysplex::cf::SystemId;
use parallel_sysplex::cf::{CfConfig, CfError, CouplingFacility, LinkFault};
use parallel_sysplex::db::group::{DataSharingGroup, GroupConfig};
use parallel_sysplex::services::sysplex::{Sysplex, SysplexConfig};
use std::sync::Arc;
use std::time::Duration;

/// N systems hammer all three structure models concurrently; afterwards
/// the facility-wide accounting must reconcile exactly: every command was
/// issued through a subchannel and ran in exactly one of the two modes.
#[test]
fn mixed_sync_async_traffic_reconciles_across_systems() {
    const SYSTEMS: usize = 4;
    const OPS: usize = 200;

    let cf = CouplingFacility::new(CfConfig::named("CF01"));
    cf.allocate_lock_structure("LOCK1", LockParams::with_entries(256)).unwrap();
    cf.allocate_cache_structure("GBP0", CacheParams::store_in(512)).unwrap();
    cf.allocate_list_structure("WORKQ", ListParams::with_headers(2)).unwrap();

    let handles: Vec<_> = (0..SYSTEMS)
        .map(|sys| {
            let cf = Arc::clone(&cf);
            std::thread::spawn(move || {
                let lock = cf.connect_lock("LOCK1").unwrap();
                let cache = cf.connect_cache("GBP0", 64).unwrap();
                let list = cf.connect_list("WORKQ", 1).unwrap();
                let blk = parallel_sysplex::cf::cache::BlockName::from_parts(sys as u32, 1);
                // An oversized payload: the conversion heuristic sends it
                // through the asynchronous CF processor pool.
                let big = vec![0u8; 16 * 1024];
                for i in 0..OPS {
                    let entry = (sys * OPS + i) % 256;
                    lock.request_lock(entry, LockMode::Shared).unwrap();
                    lock.release_lock(entry).unwrap();
                    cache.register_read(blk, 0).unwrap();
                    if i % 10 == 0 {
                        cache.write_invalidate(blk, &big, WriteKind::ChangedData).unwrap();
                    } else {
                        cache.write_invalidate(blk, b"small", WriteKind::ChangedData).unwrap();
                    }
                    let id =
                        list.enqueue(0, i as u64, b"item", WritePosition::Tail, LockCondition::None).unwrap();
                    if i % 7 == 0 {
                        // Bulk scan: always async-converted.
                        list.scan(0).unwrap();
                    }
                    list.delete(id, LockCondition::None).unwrap();
                }
                // Drain check on the untouched header: nothing there.
                assert!(list.take(1, DequeueEnd::Head, LockCondition::None).unwrap().is_none());
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let stats = cf.command_stats();
    // The invariant the connection layer maintains: every issued command
    // ran in exactly one mode, per class and in total.
    for (class, issued, sync, async_converted, _mean_ns) in stats.report() {
        assert_eq!(issued, sync + async_converted, "{class}: issued == sync + async");
    }
    assert_eq!(stats.issued(), stats.sync() + stats.async_converted());
    // Both execution modes actually happened: small commands stayed
    // CPU-synchronous, bulk scans and oversized writes converted.
    assert!(stats.sync() > 0, "sync commands ran");
    assert!(stats.async_converted() > 0, "async conversions happened");
    // Lower bound on traffic: 2 lock + 2 cache + 2 list commands per op.
    assert!(stats.issued() >= (SYSTEMS * OPS * 6) as u64, "issued={}", stats.issued());
}

/// An injected link malfunction surfaces as a typed [`CfError`] on the
/// issuing exploiter — never a panic, and the facility keeps serving
/// subsequent commands.
#[test]
fn injected_link_faults_surface_as_typed_errors() {
    let cf = CouplingFacility::new(CfConfig::named("CF01"));
    cf.allocate_lock_structure("LOCK1", LockParams::with_entries(16)).unwrap();
    let conn = cf.connect_lock("LOCK1").unwrap();

    // Lost command: the issuer times out.
    cf.inject_fault(LinkFault::Timeout);
    let err = conn.request_lock(3, LockMode::Exclusive).unwrap_err();
    assert!(matches!(err, CfError::LinkTimeout(_)), "got {err:?}");

    // Channel subsystem malfunction mid-command.
    cf.inject_fault(LinkFault::InterfaceControlCheck);
    let err = conn.request_lock(3, LockMode::Exclusive).unwrap_err();
    assert!(matches!(err, CfError::InterfaceControlCheck(_)), "got {err:?}");

    // A degraded link only delays; the command still completes.
    cf.inject_fault(LinkFault::Delay(Duration::from_micros(50)));
    assert!(conn.request_lock(3, LockMode::Exclusive).unwrap().is_granted());
    conn.release_lock(3).unwrap();

    // The books record the faults without breaking the mode invariant.
    let stats = cf.command_stats();
    assert_eq!(stats.faulted(), 2);
    assert_eq!(stats.issued(), stats.sync() + stats.async_converted());
}

/// Faults injected under a live data-sharing group surface as clean
/// database errors on the member that hit them; the group keeps running.
#[test]
fn database_member_survives_injected_cf_fault() {
    let plex = Sysplex::new(SysplexConfig::functional("FIPLEX"));
    let cf = plex.add_cf("CF01");
    let mut config = GroupConfig::default();
    config.db.lock_timeout = Duration::from_millis(200);
    let group =
        DataSharingGroup::new(config, &cf, plex.farm.clone(), plex.timer.clone(), plex.xcf.clone()).unwrap();
    let db = group.add_member(SystemId::new(0)).unwrap();
    db.run(10, |db, txn| db.write(txn, 1, Some(b"before"))).unwrap();

    // One lost command somewhere in the next transaction's CF traffic.
    cf.inject_fault(LinkFault::Timeout);
    let _ = db.run(0, |db, txn| db.write(txn, 2, Some(b"during")));

    // The member (and the facility) keep serving.
    db.run(10, |db, txn| db.write(txn, 3, Some(b"after"))).unwrap();
    let v = db.run(10, |db, txn| db.read(txn, 1)).unwrap().unwrap();
    assert_eq!(v, b"before");
    assert!(cf.command_stats().faulted() >= 1);
    group.remove_member(SystemId::new(0));
}
