//! CF structure rebuild — "Multiple CF's can be connected for
//! availability, performance, and capacity reasons" (§3.3).
//!
//! A data-sharing group migrates its lock and cache structures from CF01
//! to CF02 while transactions hold locks and changed data sits in the
//! group buffer. Everything the old structures protected must stay
//! protected, and everything readable must stay readable.

use parallel_sysplex::cf::SystemId;
use parallel_sysplex::db::error::DbError;
use parallel_sysplex::db::group::{DataSharingGroup, GroupConfig};
use parallel_sysplex::services::sysplex::{Sysplex, SysplexConfig};
use std::sync::Arc;
use std::time::Duration;

fn rig() -> (Arc<Sysplex>, Arc<DataSharingGroup>) {
    let plex = Sysplex::new(SysplexConfig::functional("RBPLEX"));
    let cf1 = plex.add_cf("CF01");
    let mut config = GroupConfig::default();
    config.db.lock_timeout = Duration::from_millis(150);
    let group =
        DataSharingGroup::new(config, &cf1, plex.farm.clone(), plex.timer.clone(), plex.xcf.clone()).unwrap();
    group.add_member(SystemId::new(0)).unwrap();
    group.add_member(SystemId::new(1)).unwrap();
    (plex, group)
}

#[test]
fn rebuild_preserves_data_and_held_locks() {
    let (plex, group) = rig();
    let a = group.member(SystemId::new(0)).unwrap();
    let b = group.member(SystemId::new(1)).unwrap();

    // Committed data + changed pages in the old group buffer.
    a.run(10, |db, txn| {
        for k in 0..20u64 {
            db.write(txn, k, Some(format!("value-{k}").as_bytes()))?;
        }
        Ok(())
    })
    .unwrap();
    assert!(group.cache_structure().changed_count() > 0);

    // An open transaction holds an exclusive (persistent) lock.
    let mut open_txn = a.begin();
    a.write(&mut open_txn, 5, Some(b"uncommitted")).unwrap();

    let old_lock = group.lock_structure();
    let old_cache = group.cache_structure();

    // Rebuild onto CF02.
    let cf2 = plex.add_cf("CF02");
    group.rebuild_into(&cf2).unwrap();
    assert!(!Arc::ptr_eq(&old_lock, &group.lock_structure()));
    assert!(!Arc::ptr_eq(&old_cache, &group.cache_structure()));
    assert_eq!(old_cache.changed_count(), 0, "changed data destaged before the move");

    // The held lock migrated: b still cannot write record 5.
    let mut tb = b.begin();
    assert!(matches!(b.write(&mut tb, 5, Some(b"x")), Err(DbError::LockTimeout { .. })));
    b.abort(&mut tb).unwrap();

    // Committed data readable through the new structures (from DASD, since
    // the new group buffer starts clean).
    for k in 0..20u64 {
        if k == 5 {
            continue; // exclusively held by the open transaction
        }
        let v = b.run(10, move |db, txn| db.read(txn, k)).unwrap().unwrap();
        assert_eq!(v, format!("value-{k}").as_bytes());
    }

    // Commit through the new structures; now b can take the lock.
    a.commit(&mut open_txn).unwrap();
    let v = b.run(10, |db, txn| db.read(txn, 5)).unwrap().unwrap();
    assert_eq!(v, b"uncommitted");

    // New traffic lands on the new structure only.
    let before = group.lock_structure().stats.requests.get();
    b.run(10, |db, txn| db.write(txn, 30, Some(b"post-rebuild"))).unwrap();
    assert!(group.lock_structure().stats.requests.get() > before);

    group.remove_member(SystemId::new(0));
    group.remove_member(SystemId::new(1));
}

#[test]
fn rebuild_migrates_persistent_records_for_recovery() {
    let (plex, group) = rig();
    let a = group.member(SystemId::new(0)).unwrap();
    let b = group.member(SystemId::new(1)).unwrap();

    // a holds a persistent update lock, then the structures move.
    let mut ta = a.begin();
    a.write(&mut ta, 7, Some(b"in-flight")).unwrap();
    let cf2 = plex.add_cf("CF02");
    group.rebuild_into(&cf2).unwrap();

    // a crashes AFTER the rebuild: retained state must exist in the NEW
    // structure for peer recovery to work.
    plex.kill(SystemId::new(0));
    let failed = group.crash_member(SystemId::new(0)).unwrap();
    let retained = b.irlm().retained_locks_of(failed.lock_conn);
    assert!(!retained.unwrap().is_empty(), "persistent records migrated with the rebuild");
    let report = group.recover_on(SystemId::new(1), &failed).unwrap();
    assert!(report.retained_released >= 1);
    b.run(10, |db, txn| db.write(txn, 7, Some(b"recovered"))).unwrap();
    group.remove_member(SystemId::new(1));
}

#[test]
fn concurrent_traffic_stalls_through_rebuild_and_resumes() {
    let (plex, group) = rig();
    let b = group.member(SystemId::new(1)).unwrap();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let b = Arc::clone(&b);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                b.run(100, |db, txn| db.write(txn, n % 40, Some(&n.to_be_bytes()))).unwrap();
                n += 1;
            }
            n
        })
    };
    std::thread::sleep(Duration::from_millis(30));
    let cf2 = plex.add_cf("CF02");
    group.rebuild_into(&cf2).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    stop.store(true, std::sync::atomic::Ordering::Release);
    let written = writer.join().unwrap();
    assert!(written > 0, "writer made progress across the rebuild");
    // Integrity: every record readable.
    let a = group.member(SystemId::new(0)).unwrap();
    a.run(10, |db, txn| {
        for k in 0..40u64 {
            let _ = db.read(txn, k)?;
        }
        Ok(())
    })
    .unwrap();
    group.remove_member(SystemId::new(0));
    group.remove_member(SystemId::new(1));
}

/// Regression for the cached-structure-handle fast path: connections
/// cache an `Arc` to their structure so the per-command path never takes
/// the facility registry lock. A rebuild swaps those Arcs via reattach —
/// afterwards every member's commands must land on the new structure's
/// counters while the old structure stays completely frozen.
#[test]
fn post_rebuild_cached_handles_hit_the_new_structure() {
    let (plex, group) = rig();
    let a = group.member(SystemId::new(0)).unwrap();
    let b = group.member(SystemId::new(1)).unwrap();
    a.run(10, |db, txn| db.write(txn, 1, Some(b"seed"))).unwrap();

    let old_lock = group.lock_structure();
    let old_cache = group.cache_structure();
    let cf2 = plex.add_cf("CF02");
    group.rebuild_into(&cf2).unwrap();
    let new_lock = group.lock_structure();
    let new_cache = group.cache_structure();
    assert!(!Arc::ptr_eq(&old_lock, &new_lock));
    assert!(!Arc::ptr_eq(&old_cache, &new_cache));

    let old_lock_reqs = old_lock.stats.requests.get();
    let old_cache_reqs = old_cache.stats.reads.get();
    let new_lock_before = new_lock.stats.requests.get();
    let new_cache_before = new_cache.stats.reads.get();

    // Both members drive commands through whatever handles their
    // connections cached.
    a.run(10, |db, txn| db.write(txn, 2, Some(b"via-a"))).unwrap();
    b.run(10, |db, txn| db.read(txn, 1).map(|_| ())).unwrap();

    assert!(
        new_lock.stats.requests.get() > new_lock_before,
        "post-rebuild lock commands advance the NEW structure"
    );
    assert!(
        new_cache.stats.reads.get() > new_cache_before,
        "post-rebuild cache commands advance the NEW structure"
    );
    assert_eq!(old_lock.stats.requests.get(), old_lock_reqs, "old lock structure is frozen");
    assert_eq!(old_cache.stats.reads.get(), old_cache_reqs, "old cache structure is frozen");

    group.remove_member(SystemId::new(0));
    group.remove_member(SystemId::new(1));
}
