//! System-managed CF structure duplexing — instant failover with no
//! rebuild and no destage (the strongest reading of §3.3's "Multiple CF's
//! can be connected for availability, performance, and capacity reasons").
//!
//! Contrast with `tests/cf_rebuild.rs`: a *rebuild* re-creates state from
//! members' storage and DASD; *duplexing* keeps a synchronous mirror, so
//! a CF loss costs one pointer swap. The tests assert the availability
//! difference explicitly: after failover, changed data is served from the
//! promoted structure even though DASD was never brought current.

use parallel_sysplex::cf::SystemId;
use parallel_sysplex::db::error::DbError;
use parallel_sysplex::db::group::{DataSharingGroup, GroupConfig};
use parallel_sysplex::services::sysplex::{Sysplex, SysplexConfig};
use std::sync::Arc;
use std::time::Duration;

fn rig() -> (Arc<Sysplex>, Arc<DataSharingGroup>) {
    let plex = Sysplex::new(SysplexConfig::functional("DXPLEX"));
    let cf1 = plex.add_cf("CF01");
    let mut config = GroupConfig::default();
    config.db.lock_timeout = Duration::from_millis(150);
    let group =
        DataSharingGroup::new(config, &cf1, plex.farm.clone(), plex.timer.clone(), plex.xcf.clone()).unwrap();
    group.add_member(SystemId::new(0)).unwrap();
    group.add_member(SystemId::new(1)).unwrap();
    (plex, group)
}

#[test]
fn duplexed_writes_mirror_to_the_secondary() {
    let (plex, group) = rig();
    let cf2 = plex.add_cf("CF02");
    assert!(!group.is_duplexed());
    group.enable_duplexing(&cf2).unwrap();
    assert!(group.is_duplexed());

    let a = group.member(SystemId::new(0)).unwrap();
    let mut open = a.begin();
    a.write(&mut open, 5, Some(b"held")).unwrap();
    a.run(10, |db, txn| db.write(txn, 6, Some(b"committed"))).unwrap();

    // The secondary structures on CF02 carry the mirrored state.
    let sec_lock = cf2.lock_structure("DSG_LOCK1_DX1").unwrap();
    let sec_cache = cf2.cache_structure("DSG_GBP0_DX1").unwrap();
    assert!(sec_lock.record_count() >= 1, "persistent lock mirrored");
    assert!(sec_cache.changed_count() >= 1, "changed data mirrored");
    a.commit(&mut open).unwrap();
    group.remove_member(SystemId::new(0));
    group.remove_member(SystemId::new(1));
}

#[test]
fn failover_preserves_held_locks_and_changed_data_without_dasd() {
    let (plex, group) = rig();
    let cf2 = plex.add_cf("CF02");

    let a = group.member(SystemId::new(0)).unwrap();
    let b = group.member(SystemId::new(1)).unwrap();

    // Pre-duplex state is carried into the mirror at enable time.
    a.run(10, |db, txn| db.write(txn, 1, Some(b"pre-duplex"))).unwrap();
    group.enable_duplexing(&cf2).unwrap();

    // Post-duplex: a holds a lock and a committed-but-not-castout update.
    let mut open = a.begin();
    a.write(&mut open, 2, Some(b"held")).unwrap();
    a.run(10, |db, txn| db.write(txn, 3, Some(b"only-in-cf"))).unwrap();
    // Deliberately do NOT cast out: DASD stays stale for keys 1 and 3.

    // CF01 "fails": promote the secondaries. No recovery, no destage.
    group.cf_failover().unwrap();
    assert!(!group.is_duplexed(), "now simplex on the survivor CF");

    // Held lock still enforced through the promoted structure.
    let mut tb = b.begin();
    assert!(matches!(b.write(&mut tb, 2, Some(b"steal")), Err(DbError::LockTimeout { .. })));
    b.abort(&mut tb).unwrap();

    // Changed data served from the promoted group buffer — DASD never had
    // it.
    let page3 = group.store.page_of(3);
    assert_eq!(group.store.read_page(1, page3).unwrap().get(3), None, "DASD is stale by construction");
    let v = b.run(10, |db, txn| db.read(txn, 3)).unwrap().unwrap();
    assert_eq!(v, b"only-in-cf", "served from the duplexed changed data");
    let v = b.run(10, |db, txn| db.read(txn, 1)).unwrap().unwrap();
    assert_eq!(v, b"pre-duplex", "pre-duplex changed data was copied at enable time");

    // The open transaction commits normally on the promoted structure.
    a.commit(&mut open).unwrap();
    let v = b.run(10, |db, txn| db.read(txn, 2)).unwrap().unwrap();
    assert_eq!(v, b"held");

    // Castout now works against the promoted structure.
    b.buffers().castout(1000).unwrap();
    assert_eq!(group.cache_structure().changed_count(), 0);
    group.remove_member(SystemId::new(0));
    group.remove_member(SystemId::new(1));
}

#[test]
fn duplexing_enables_and_fails_over_under_live_traffic() {
    let (plex, group) = rig();
    let cf2 = plex.add_cf("CF02");
    let b = group.member(SystemId::new(1)).unwrap();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let b = Arc::clone(&b);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                b.run(200, |db, txn| db.write(txn, n % 30, Some(&n.to_be_bytes()))).unwrap();
                n += 1;
            }
            n
        })
    };
    std::thread::sleep(Duration::from_millis(20));
    group.enable_duplexing(&cf2).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    group.cf_failover().unwrap();
    std::thread::sleep(Duration::from_millis(20));
    stop.store(true, std::sync::atomic::Ordering::Release);
    let written = writer.join().unwrap();
    assert!(written > 0);
    // Integrity: every record readable through the promoted structures.
    let a = group.member(SystemId::new(0)).unwrap();
    a.run(10, |db, txn| {
        for k in 0..30u64 {
            let _ = db.read(txn, k)?;
        }
        Ok(())
    })
    .unwrap();
    group.remove_member(SystemId::new(0));
    group.remove_member(SystemId::new(1));
}

#[test]
fn duplexing_requires_matching_geometry() {
    let (plex, group) = rig();
    let cf2 = plex.add_cf("CF02");
    // Allocate a mismatched secondary by hand and try to enable against it
    // through the member API.
    let wrong = cf2
        .allocate_lock_structure("WRONG", parallel_sysplex::cf::lock::LockParams::with_entries(8))
        .unwrap();
    let members = group.members();
    let irlms: Vec<_> = members.iter().map(|d| Arc::clone(d.irlm())).collect();
    let err = parallel_sysplex::db::Irlm::enable_duplexing(&irlms, wrong, &cf2.subchannel()).unwrap_err();
    assert!(matches!(err, DbError::Cf(parallel_sysplex::cf::CfError::BadParameter(_))));
    group.remove_member(SystemId::new(0));
    group.remove_member(SystemId::new(1));
}

#[test]
fn failover_then_reduplex_onto_a_third_cf() {
    let (plex, group) = rig();
    let cf2 = plex.add_cf("CF02");
    let cf3 = plex.add_cf("CF03");
    let a = group.member(SystemId::new(0)).unwrap();

    group.enable_duplexing(&cf2).unwrap();
    a.run(10, |db, txn| db.write(txn, 7, Some(b"v1"))).unwrap();
    group.cf_failover().unwrap(); // CF01 lost; running on CF02
    a.run(10, |db, txn| db.write(txn, 7, Some(b"v2"))).unwrap();
    group.enable_duplexing(&cf3).unwrap(); // re-establish the mirror
    assert!(group.is_duplexed());
    a.run(10, |db, txn| db.write(txn, 7, Some(b"v3"))).unwrap();
    group.cf_failover().unwrap(); // CF02 lost; running on CF03
    let b = group.member(SystemId::new(1)).unwrap();
    let v = b.run(10, |db, txn| db.read(txn, 7)).unwrap().unwrap();
    assert_eq!(v, b"v3", "state survived two CF losses");
    group.remove_member(SystemId::new(0));
    group.remove_member(SystemId::new(1));
}
