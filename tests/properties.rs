//! Property-based tests over the core data structures and invariants.

use parallel_sysplex::cf::bitvec::BitVector;
use parallel_sysplex::cf::hashing::hash_to_slot;
use parallel_sysplex::cf::list::{DequeueEnd, ListParams, ListStructure, LockCondition, WritePosition};
use parallel_sysplex::cf::lock::{LockMode, LockParams, LockResponse, LockStructure};
use parallel_sysplex::cf::types::conns_in_mask;
use parallel_sysplex::db::log::LogRecord;
use parallel_sysplex::db::pagestore::Page;
use parallel_sysplex::services::timer::Tod;
use parallel_sysplex::workload::decision::ScanQuery;
use parallel_sysplex::workload::Zipf;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ----- page codec -----

    #[test]
    fn page_codec_roundtrips(records in proptest::collection::btree_map(any::<u64>(), proptest::collection::vec(any::<u8>(), 0..64), 0..40)) {
        let mut page = Page::new();
        for (k, v) in &records {
            page.set(*k, v);
        }
        let decoded = Page::decode(&page.encode(), 0).unwrap();
        prop_assert_eq!(decoded.len(), records.len());
        for (k, v) in &records {
            prop_assert_eq!(decoded.get(*k).unwrap(), v.as_slice());
        }
        // Key order is canonical.
        let keys: Vec<u64> = decoded.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        prop_assert_eq!(keys, sorted);
    }

    #[test]
    fn page_mutations_match_btreemap_model(ops in proptest::collection::vec((any::<u64>(), proptest::option::of(proptest::collection::vec(any::<u8>(), 0..16))), 0..60)) {
        let mut page = Page::new();
        let mut model: std::collections::BTreeMap<u64, Vec<u8>> = Default::default();
        for (k, v) in ops {
            match v {
                Some(v) => {
                    prop_assert_eq!(page.set(k, &v), model.insert(k, v));
                }
                None => {
                    prop_assert_eq!(page.remove(k), model.remove(&k));
                }
            }
        }
        prop_assert_eq!(page.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(page.get(*k).unwrap(), v.as_slice());
        }
    }

    // ----- log codec -----

    #[test]
    fn log_codec_roundtrips(
        lsn in any::<u64>(),
        txn in any::<u64>(),
        page in any::<u64>(),
        key in any::<u64>(),
        before in proptest::option::of(proptest::collection::vec(any::<u8>(), 0..32)),
        after in proptest::option::of(proptest::collection::vec(any::<u8>(), 0..32)),
        kind in 0u8..3,
    ) {
        let rec = match kind {
            0 => LogRecord::Update { lsn: Tod(lsn), txn, page, key, before, after },
            1 => LogRecord::Commit { lsn: Tod(lsn), txn },
            _ => LogRecord::Abort { lsn: Tod(lsn), txn },
        };
        // Encode via the private encoder by writing through a LogManager is
        // heavyweight; the enum derives PartialEq so a roundtrip through
        // DASD in log.rs unit tests covers bytes. Here: semantic accessors.
        prop_assert_eq!(rec.lsn(), Tod(lsn));
        prop_assert_eq!(rec.txn(), txn);
    }

    // ----- hashing -----

    #[test]
    fn hash_to_slot_in_range(name in proptest::collection::vec(any::<u8>(), 0..64), len in 1usize..1_000_000) {
        prop_assert!(hash_to_slot(&name, len) < len);
    }

    // ----- bit vector vs model -----

    #[test]
    fn bitvector_matches_model(len in 1usize..300, ops in proptest::collection::vec((any::<bool>(), any::<u16>()), 0..200)) {
        let v = BitVector::new(len);
        let mut model = vec![false; len];
        for (set, idx) in ops {
            let idx = idx as usize % len;
            if set {
                prop_assert_eq!(v.set(idx), model[idx]);
                model[idx] = true;
            } else {
                prop_assert_eq!(v.clear(idx), model[idx]);
                model[idx] = false;
            }
        }
        for (i, &m) in model.iter().enumerate() {
            prop_assert_eq!(v.test(i), m);
        }
        prop_assert_eq!(v.count_set(), model.iter().filter(|&&b| b).count());
    }

    // ----- zipf -----

    #[test]
    fn zipf_masses_are_a_distribution(n in 1usize..200, theta in 0.0f64..1.5) {
        let z = Zipf::new(n, theta);
        let total: f64 = (0..n).map(|i| z.mass(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        for i in 1..n {
            prop_assert!(z.mass(i - 1) >= z.mass(i) - 1e-12, "mass decreasing at {}", i);
        }
    }

    // ----- decision split -----

    #[test]
    fn scan_split_partitions_exactly(from in 0u64..10_000, len in 0u64..10_000, n in 0usize..40) {
        let q = ScanQuery { from, to: from + len };
        let shards = q.split(n);
        let covered: u64 = shards.iter().map(|s| s.to - s.from).sum();
        prop_assert_eq!(covered, q.len());
        for w in shards.windows(2) {
            prop_assert_eq!(w[0].to, w[1].from);
        }
        if let (Some(first), Some(last)) = (shards.first(), shards.last()) {
            prop_assert_eq!(first.from, q.from);
            prop_assert_eq!(last.to, q.to);
        }
        if !shards.is_empty() {
            let sizes: Vec<u64> = shards.iter().map(|s| s.to - s.from).collect();
            prop_assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        }
    }
}

// ----- VSAM KSDS vs a BTreeMap model -----

#[derive(Debug, Clone)]
enum KsdsOp {
    Put(u16, Vec<u8>),
    Erase(u16),
    Get(u16),
    Browse(u16, u8),
}

fn ksds_op_strategy() -> impl Strategy<Value = KsdsOp> {
    prop_oneof![
        3 => (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..12)).prop_map(|(k, v)| KsdsOp::Put(k % 200, v)),
        1 => any::<u16>().prop_map(|k| KsdsOp::Erase(k % 200)),
        2 => any::<u16>().prop_map(|k| KsdsOp::Get(k % 200)),
        1 => (any::<u16>(), any::<u8>()).prop_map(|(k, n)| KsdsOp::Browse(k % 200, n % 20)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The KSDS (string keys, CI splits, ordered browse) behaves exactly
    /// like a sorted map under arbitrary operation sequences.
    #[test]
    fn vsam_ksds_matches_btreemap_model(ops in proptest::collection::vec(ksds_op_strategy(), 0..80)) {
        use parallel_sysplex::cf::facility::{CfConfig, CouplingFacility};
        use parallel_sysplex::dasd::farm::DasdFarm;
        use parallel_sysplex::dasd::volume::IoModel;
        use parallel_sysplex::db::group::{DataSharingGroup, GroupConfig};
        use parallel_sysplex::db::vsam::Ksds;
        use parallel_sysplex::services::timer::SysplexTimer;
        use parallel_sysplex::services::xcf::Xcf;

        let cf = CouplingFacility::new(CfConfig::named("CF01"));
        let farm = DasdFarm::new(IoModel::instant());
        let timer = SysplexTimer::new();
        let xcf = Xcf::new(std::sync::Arc::clone(&timer));
        let group = DataSharingGroup::new(GroupConfig::default(), &cf, farm, timer, xcf).unwrap();
        let db = group.add_member(parallel_sysplex::cf::SystemId::new(0)).unwrap();
        let file = Ksds::define(db, 1 << 20, 4).unwrap();
        let mut model: std::collections::BTreeMap<String, Vec<u8>> = Default::default();
        let key_of = |k: u16| format!("K{k:05}");
        for op in ops {
            match op {
                KsdsOp::Put(k, v) => {
                    file.put(&key_of(k), &v).unwrap();
                    model.insert(key_of(k), v);
                }
                KsdsOp::Erase(k) => {
                    let existed = file.erase(&key_of(k)).unwrap();
                    prop_assert_eq!(existed, model.remove(&key_of(k)).is_some());
                }
                KsdsOp::Get(k) => {
                    prop_assert_eq!(file.get(&key_of(k)).unwrap(), model.get(&key_of(k)).cloned());
                }
                KsdsOp::Browse(k, n) => {
                    let got = file.browse(&key_of(k), n as usize).unwrap();
                    let want: Vec<(String, Vec<u8>)> = model
                        .range(key_of(k)..)
                        .take(n as usize)
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    prop_assert_eq!(got, want);
                }
            }
        }
        prop_assert_eq!(file.record_count().unwrap(), model.len());
        group.remove_member(parallel_sysplex::cf::SystemId::new(0));
    }
}

// ----- cache structure: the coherency invariant -----

#[derive(Debug, Clone)]
enum CacheOp {
    /// Connector registers + refills its copy of a block.
    Register { conn: u8, block: u8 },
    /// Connector writes a block (holding serialization, by construction).
    Write { conn: u8, block: u8, value: u8 },
}

fn cache_op_strategy() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        (0u8..3, 0u8..4).prop_map(|(conn, block)| CacheOp::Register { conn, block }),
        (0u8..3, 0u8..4, any::<u8>()).prop_map(|(conn, block, value)| CacheOp::Write { conn, block, value }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The §3.3.2 safety property: a connector whose validity bit is set
    /// holds the latest committed copy — across any interleaving of
    /// registrations and writes.
    #[test]
    fn cache_structure_valid_bit_implies_current_copy(ops in proptest::collection::vec(cache_op_strategy(), 0..150)) {
        use parallel_sysplex::cf::cache::{BlockName, CacheParams, CacheStructure, WriteKind};
        let cache = CacheStructure::new("P", &CacheParams::store_in(64)).unwrap();
        let conns: Vec<_> = (0..3).map(|_| cache.connect(4).unwrap()).collect();
        // Model: latest committed value per block; each connector's local
        // copy of each block (what it last refilled).
        let mut latest: HashMap<u8, u8> = HashMap::new();
        let mut local: HashMap<(u8, u8), u8> = HashMap::new();
        let blk = |b: u8| BlockName::from_parts(1, b as u64);
        for op in ops {
            match op {
                CacheOp::Register { conn, block } => {
                    let r = cache.read_and_register(&conns[conn as usize], blk(block), block as u32).unwrap();
                    // Refill from the CF copy or "DASD" (the model's latest).
                    let refill = r
                        .data
                        .map(|d| d[0])
                        .or_else(|| latest.get(&block).copied());
                    if let Some(v) = refill {
                        local.insert((conn, block), v);
                    }
                }
                CacheOp::Write { conn, block, value } => {
                    cache
                        .write_and_invalidate(&conns[conn as usize], blk(block), &[value], WriteKind::ChangedData)
                        .unwrap();
                    latest.insert(block, value);
                    local.insert((conn, block), value);
                }
            }
            // Invariant sweep: any set bit must imply a current copy.
            for (c, conn) in conns.iter().enumerate() {
                for b in 0u8..4 {
                    if conn.is_valid(b as u32) {
                        if let Some(expected) = latest.get(&b) {
                            let have = local.get(&(c as u8, b));
                            prop_assert_eq!(
                                have,
                                Some(expected),
                                "conn {} block {} valid bit with stale copy",
                                c,
                                b
                            );
                        }
                    }
                }
            }
        }
    }
}

// ----- lock structure vs a reference model -----

#[derive(Debug, Clone)]
enum LockOp {
    Request { conn: u8, entry: u8, exclusive: bool },
    Release { conn: u8, entry: u8 },
}

fn lock_op_strategy(conns: u8, entries: u8) -> impl Strategy<Value = LockOp> {
    prop_oneof![
        (0..conns, 0..entries, any::<bool>()).prop_map(|(conn, entry, exclusive)| LockOp::Request {
            conn,
            entry,
            exclusive
        }),
        (0..conns, 0..entries).prop_map(|(conn, entry)| LockOp::Release { conn, entry }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lock_structure_matches_reference_model(ops in proptest::collection::vec(lock_op_strategy(4, 4), 0..120)) {
        let s = LockStructure::new("P", &LockParams::with_entries(4)).unwrap();
        let conns: Vec<_> = (0..4).map(|_| s.connect().unwrap()).collect();
        // Model: per entry, set of sharers + optional exclusive owner.
        #[derive(Default, Clone)]
        struct Entry {
            sharers: HashSet<u8>,
            excl: Option<u8>,
        }
        let mut model: HashMap<u8, Entry> = HashMap::new();
        for op in ops {
            match op {
                LockOp::Request { conn, entry, exclusive } => {
                    let m = model.entry(entry).or_default();
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                    let resp = s.request(conns[conn as usize], entry as usize, mode).unwrap();
                    let foreign_excl = m.excl.filter(|&e| e != conn);
                    let foreign_share: HashSet<u8> = m.sharers.iter().copied().filter(|&c| c != conn).collect();
                    let compatible = if exclusive {
                        foreign_excl.is_none() && foreign_share.is_empty()
                    } else {
                        foreign_excl.is_none()
                    };
                    match resp {
                        LockResponse::Granted => {
                            prop_assert!(compatible, "granted but model says conflict");
                            if exclusive {
                                m.excl = Some(conn);
                            } else {
                                m.sharers.insert(conn);
                            }
                        }
                        LockResponse::Contention { holders, exclusive: excl_holder, .. } => {
                            prop_assert!(!compatible, "contention but model says compatible");
                            // Holder set must include every conflicting peer.
                            let holder_set: HashSet<u8> = conns_in_mask(holders).map(|c| c.raw()).collect();
                            for c in &foreign_share {
                                prop_assert!(holder_set.contains(c));
                            }
                            if let Some(e) = foreign_excl {
                                prop_assert!(holder_set.contains(&e));
                                prop_assert_eq!(excl_holder.map(|c| c.raw()), Some(e));
                            }
                        }
                    }
                }
                LockOp::Release { conn, entry } => {
                    s.release(conns[conn as usize], entry as usize).unwrap();
                    let m = model.entry(entry).or_default();
                    m.sharers.remove(&conn);
                    if m.excl == Some(conn) {
                        m.excl = None;
                    }
                }
            }
        }
        // Final state agrees.
        for (entry, m) in &model {
            let (share, excl) = s.holders(*entry as usize);
            let share_set: HashSet<u8> = conns_in_mask(share).map(|c| c.raw()).collect();
            prop_assert_eq!(&share_set, &m.sharers, "entry {} sharers", entry);
            prop_assert_eq!(excl.map(|c| c.raw()), m.excl, "entry {} excl", entry);
        }
    }

    // ----- list structure conservation -----

    #[test]
    fn list_operations_conserve_entries(ops in proptest::collection::vec((0u8..4, 0u8..3, any::<u64>()), 0..100)) {
        let s = ListStructure::new("P", &ListParams::with_headers(3)).unwrap();
        let conn = s.connect(4).unwrap();
        let mut live: Vec<parallel_sysplex::cf::list::EntryId> = Vec::new();
        let mut expected = 0usize;
        for (op, header, key) in ops {
            let header = header as usize;
            match op {
                0 => {
                    let id = s
                        .write_entry(&conn, header, key, b"x", WritePosition::Keyed, LockCondition::None)
                        .unwrap();
                    live.push(id);
                    expected += 1;
                }
                1 => {
                    if s.dequeue(&conn, header, DequeueEnd::Head, LockCondition::None).unwrap().is_some() {
                        expected -= 1;
                    }
                }
                2 => {
                    if let Some(&id) = live.get(key as usize % live.len().max(1)) {
                        // Move may fail if the entry was dequeued already.
                        let _ = s.move_entry(&conn, id, header, WritePosition::Tail, LockCondition::None);
                    }
                }
                _ => {
                    let other = (header + 1) % 3;
                    if s.move_first(&conn, header, other, DequeueEnd::Head, WritePosition::Keyed, LockCondition::None)
                        .unwrap()
                        .is_some()
                    {
                        // moved, not consumed
                    }
                }
            }
            let total: usize = (0..3).map(|h| s.header_len(h).unwrap()).sum();
            prop_assert_eq!(total, expected, "entries conserved");
            prop_assert_eq!(s.entry_count(), expected);
        }
        // Keyed headers remain key-sorted.
        for h in 0..3 {
            let keys: Vec<u64> = s.read_list(&conn, h).unwrap().iter().map(|e| e.key).collect();
            let _ = keys; // ordering within mixed Tail/Keyed inserts is not globally sorted
        }
    }
}
