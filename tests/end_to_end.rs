//! Full-stack integration: every layer of the reproduction wired together
//! the way Figure 4 draws it — applications on transaction managers on
//! data managers on MVS services on the CF and shared DASD.

use parallel_sysplex::cf::SystemId;
use parallel_sysplex::db::group::{DataSharingGroup, GroupConfig};
use parallel_sysplex::services::sysplex::{Sysplex, SysplexConfig};
use parallel_sysplex::services::system::SystemConfig;
use parallel_sysplex::services::wlm::ServiceClass;
use parallel_sysplex::subsys::routing::TransactionRouter;
use parallel_sysplex::subsys::tm::{CicsRegion, TranDef};
use parallel_sysplex::subsys::vtam::{generic_resource_params, GenericResources};
use parallel_sysplex::subsys::workq::{queue_params, SharedQueue};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Stack {
    plex: Arc<Sysplex>,
    group: Arc<DataSharingGroup>,
    router: Arc<TransactionRouter>,
    regions: Vec<Arc<CicsRegion>>,
    vtam: GenericResources,
}

fn stack(systems: u8) -> Stack {
    let plex = Sysplex::new(SysplexConfig::functional("ITPLEX"));
    let cf = plex.add_cf("CF01");
    let mut config = GroupConfig::default();
    config.db.lock_timeout = Duration::from_millis(200);
    let group =
        DataSharingGroup::new(config, &cf, plex.farm.clone(), plex.timer.clone(), plex.xcf.clone()).unwrap();
    plex.wlm.define_class(ServiceClass {
        name: "OLTP".into(),
        goal: Duration::from_millis(100),
        importance: 1,
    });
    let gr_list = cf.allocate_list_structure("ISTGENERIC", generic_resource_params()).unwrap();
    let vtam = GenericResources::open(&gr_list, cf.subchannel(), plex.wlm.clone()).unwrap();
    let router = TransactionRouter::new(plex.wlm.clone());
    let mut regions = Vec::new();
    for i in 0..systems {
        let id = SystemId::new(i);
        let image = plex.ipl(SystemConfig::cmos(id, 2));
        let db = group.add_member(id).unwrap();
        let region = CicsRegion::new(image, db, plex.wlm.clone());
        region.define(TranDef {
            name: "BUMP".into(),
            service_class: "OLTP".into(),
            handler: Arc::new(|db, txn| {
                let cur =
                    db.read(txn, 0)?.map(|v| u64::from_be_bytes(v[..8].try_into().unwrap())).unwrap_or(0);
                db.write(txn, 0, Some(&(cur + 1).to_be_bytes()))
            }),
        });
        router.register_region(Arc::clone(&region));
        vtam.register_instance("CICS", &format!("CICS0{i}"), id).unwrap();
        regions.push(region);
    }
    Stack { plex, group, router, regions, vtam }
}

fn teardown(s: &Stack) {
    for r in &s.regions {
        if r.system().state() == parallel_sysplex::services::system::SystemState::Active {
            r.system().quiesce();
        }
    }
}

#[test]
fn routed_counter_increments_serialize_across_systems() {
    let s = stack(3);
    let total = 60;
    let pending: Vec<_> = (0..total).map(|_| s.router.submit("BUMP").unwrap()).collect();
    for p in pending {
        p.wait(Duration::from_secs(60)).unwrap();
    }
    // Every increment landed exactly once, across three systems writing
    // the same record through the CF protocols.
    let v = s.group.member(SystemId::new(0)).unwrap().run(10, |db, txn| db.read(txn, 0)).unwrap().unwrap();
    assert_eq!(u64::from_be_bytes(v[..8].try_into().unwrap()), total as u64);
    // And work actually spread.
    let dist = s.router.distribution();
    assert_eq!(dist.len(), 3, "{dist:?}");
    assert!(dist.iter().all(|(_, n)| *n > 0), "{dist:?}");
    teardown(&s);
}

#[test]
fn single_image_logon_and_queue_flow() {
    let s = stack(2);
    // VTAM single image: users bind to "CICS" with no system name.
    let binds: Vec<_> = (0..10).map(|_| s.vtam.logon("CICS").unwrap()).collect();
    let on0 = binds.iter().filter(|b| b.system == SystemId::new(0)).count();
    assert!(on0 > 0 && on0 < 10, "sessions spread: {on0}/10 on SYS00");

    // Shared work queue between the systems.
    let cf = s.plex.cf("CF01").unwrap();
    let q_list = cf.allocate_list_structure("IMSMSGQ", queue_params()).unwrap();
    let producer = SharedQueue::open(&q_list, cf.subchannel()).unwrap();
    let consumer = SharedQueue::open(&q_list, cf.subchannel()).unwrap();
    for i in 0..20u64 {
        producer.put(i % 3, &i.to_be_bytes()).unwrap();
    }
    let mut got = 0;
    while let Some(item) = consumer.take().unwrap() {
        consumer.complete(&item).unwrap();
        got += 1;
    }
    assert_eq!(got, 20);
    teardown(&s);
}

#[test]
fn wlm_goals_observe_completions() {
    let s = stack(2);
    for _ in 0..10 {
        s.router.submit_and_wait("BUMP", Duration::from_secs(60)).unwrap();
    }
    let pi = s.plex.wlm.performance_index("OLTP").expect("completions recorded");
    assert!(pi > 0.0);
    teardown(&s);
}

#[test]
fn castout_keeps_dasd_convergent_with_group_buffer() {
    let s = stack(2);
    let db0 = s.group.member(SystemId::new(0)).unwrap();
    db0.run(10, |db, txn| db.write(txn, 42, Some(b"current"))).unwrap();
    assert!(s.group.cache_structure().changed_count() > 0, "changed data pending castout");
    let done = db0.buffers().castout(1000).unwrap();
    assert!(done > 0);
    assert_eq!(s.group.cache_structure().changed_count(), 0);
    // DASD image now matches.
    let page = s.group.store.page_of(42);
    let img = s.group.store.read_page(0, page).unwrap();
    assert_eq!(img.get(42).unwrap(), b"current");
    teardown(&s);
}

#[test]
fn cf_statistics_reflect_protocol_activity() {
    let s = stack(2);
    let db0 = s.group.member(SystemId::new(0)).unwrap();
    let db1 = s.group.member(SystemId::new(1)).unwrap();
    db0.run(10, |db, txn| db.write(txn, 7, Some(b"a"))).unwrap();
    db1.run(10, |db, txn| db.read(txn, 7).map(|_| ())).unwrap();
    db1.run(10, |db, txn| db.write(txn, 7, Some(b"b"))).unwrap();
    let lock_structure = s.group.lock_structure();
    let lock_stats = &lock_structure.stats;
    assert!(lock_stats.requests.get() > 0);
    assert!(lock_stats.sync_grants.get() > 0);
    let cache_structure = s.group.cache_structure();
    let cache_stats = &cache_structure.stats;
    assert!(cache_stats.writes.get() >= 2);
    assert!(cache_stats.xi_signals.get() >= 1, "db0's cached page was cross-invalidated");
    // The IRLMs really used XCF only when contention demanded it. With
    // the §13 local-interest fast path, repeat grants never reach the CF
    // at all, so the remaining CF request mix is relatively richer in
    // contention outcomes — the bar is "majority", not the old 80%.
    let sync_rate = s.group.lock_structure().rates().sync_grant_fraction;
    assert!(sync_rate > 0.5, "majority of grants CPU-synchronous: {sync_rate}");
    teardown(&s);
}

#[test]
fn heartbeats_and_utilization_flow_through_tick() {
    let s = stack(2);
    let gate = Arc::new(AtomicU64::new(0));
    {
        let gate = Arc::clone(&gate);
        s.regions[0]
            .system()
            .submit(move || {
                while gate.load(Ordering::Acquire) == 0 {
                    std::thread::yield_now();
                }
            })
            .unwrap();
    }
    // Let the busy worker be observed.
    std::thread::sleep(Duration::from_millis(20));
    assert!(s.plex.tick().is_empty(), "nobody failed");
    let w0 = s.plex.wlm.available_capacity(SystemId::new(0)).unwrap();
    let w1 = s.plex.wlm.available_capacity(SystemId::new(1)).unwrap();
    assert!(w0 < w1, "busy system reports less available capacity: {w0} vs {w1}");
    gate.store(1, Ordering::Release);
    teardown(&s);
}
