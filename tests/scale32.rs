//! The architectural maximum, live: "a configuration of 32 systems"
//! (§1) sharing one database with full integrity, surviving a failure,
//! with the CF's connector space exactly exhausted.

use parallel_sysplex::cf::SystemId;
use parallel_sysplex::db::group::{DataSharingGroup, GroupConfig};
use parallel_sysplex::services::sysplex::{Sysplex, SysplexConfig};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn thirty_two_members_share_one_database() {
    let plex = Sysplex::new(SysplexConfig::functional("MAXPLEX"));
    let cf = plex.add_cf("CF01");
    let mut config = GroupConfig::default();
    config.db.lock_timeout = Duration::from_millis(300);
    let group =
        DataSharingGroup::new(config, &cf, plex.farm.clone(), plex.timer.clone(), plex.xcf.clone()).unwrap();

    // IPL the architectural maximum.
    let members: Vec<_> = (0..32u8).map(|i| group.add_member(SystemId::new(i)).unwrap()).collect();
    assert_eq!(members.len(), 32);
    // The connector space is exactly full.
    assert!(group.add_member(SystemId::new(0)).is_err(), "33rd connector refused");

    // Every member writes its own record and increments one shared
    // counter; every member reads everyone's record.
    let mut handles = Vec::new();
    for m in &members {
        let m = Arc::clone(m);
        handles.push(std::thread::spawn(move || {
            let me = m.system().0 as u64;
            m.run(500, move |db, txn| {
                db.write(txn, 1000 + me, Some(&me.to_be_bytes()))?;
                let c = db.read(txn, 0)?.map(|v| u64::from_be_bytes(v[..8].try_into().unwrap())).unwrap_or(0);
                db.write(txn, 0, Some(&(c + 1).to_be_bytes()))
            })
            .unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Snapshot lock counters after the storm: the storm proves volume,
    // but its sync/async split is a host-scheduling artifact (on a
    // starved single hardware thread nearly every grant legitimately
    // contends). §3.3.1's claim — uncontended requests grant
    // CPU-synchronously — is asserted over the single-threaded phase
    // below, where it holds regardless of machine load.
    let lock = group.lock_structure();
    // (Most grants are IRLM-local; only escalations reach the CF, so the
    // CF-level request count is load-dependent and small on a quiet box.)
    let (req_storm, sync_storm) = (lock.stats.requests.get(), lock.stats.sync_grants.get());
    assert!(req_storm > 0, "storm drove lock traffic to the CF");

    let auditor = &members[31];
    let counter = auditor
        .run(10, |db, txn| db.read(txn, 0))
        .unwrap()
        .map(|v| u64::from_be_bytes(v[..8].try_into().unwrap()))
        .unwrap();
    assert_eq!(counter, 32, "all 32 increments serialized correctly");
    for i in 0..32u64 {
        let v = auditor.run(10, move |db, txn| db.read(txn, 1000 + i)).unwrap().unwrap();
        assert_eq!(v, i.to_be_bytes(), "member {i}'s record visible to member 31");
    }

    // Lose one of the 32 mid-flight; peers recover; the slot is reusable.
    let mut stranded = members[7].begin();
    members[7].write(&mut stranded, 500, Some(b"stranded")).unwrap();
    let failed = group.crash_member(SystemId::new(7)).unwrap();
    // What the heartbeat's fail-stop path would do: fail the dead
    // system's XCF members out of their groups.
    plex.xcf.fail_system(SystemId::new(7));
    let report = group.recover_on(SystemId::new(8), &failed).unwrap();
    assert!(report.retained_released >= 1);
    let rejoined = group.add_member(SystemId::new(7)).unwrap();
    rejoined.run(10, |db, txn| db.write(txn, 500, Some(b"rejoined"))).unwrap();

    // The single-threaded phase (audit reads, recovery, rejoin) is
    // uncontended, so its grants must be CPU-synchronous no matter how
    // oversubscribed the host is.
    let (req_quiet, sync_quiet) =
        (lock.stats.requests.get() - req_storm, lock.stats.sync_grants.get() - sync_storm);
    assert!(req_quiet > 0, "quiet phase issued lock requests");
    let quiet_fraction = sync_quiet as f64 / req_quiet as f64;
    assert!(quiet_fraction > 0.5, "uncontended sync rate {quiet_fraction} ({sync_quiet}/{req_quiet})");

    for m in group.members() {
        group.remove_member(m.system());
    }
}
