//! §2.5 end to end: unscheduled outage with work in flight, fail-stop
//! fencing, ARM-driven peer recovery, retained-lock release, and the 1/N
//! spare-capacity arithmetic.

use parallel_sysplex::cf::SystemId;
use parallel_sysplex::db::error::DbError;
use parallel_sysplex::db::group::{DataSharingGroup, GroupConfig};
use parallel_sysplex::db::log::LogRecord;
use parallel_sysplex::services::arm::ElementSpec;
use parallel_sysplex::services::sysplex::{Sysplex, SysplexConfig};
use parallel_sysplex::services::system::SystemConfig;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn plex_and_group(systems: u8) -> (Arc<Sysplex>, Arc<DataSharingGroup>) {
    let plex = Sysplex::new(SysplexConfig::functional("HAPLEX"));
    let cf = plex.add_cf("CF01");
    let mut config = GroupConfig::default();
    config.db.lock_timeout = Duration::from_millis(150);
    let group =
        DataSharingGroup::new(config, &cf, plex.farm.clone(), plex.timer.clone(), plex.xcf.clone()).unwrap();
    for i in 0..systems {
        plex.ipl(SystemConfig::cmos(SystemId::new(i), 1));
        group.add_member(SystemId::new(i)).unwrap();
    }
    (plex, group)
}

/// The worst-case §2.5 scenario: a system dies after externalising an
/// uncommitted page change. Peer recovery must back it out and free the
/// retained locks, after which the record is consistent and available.
#[test]
fn mid_commit_failure_is_backed_out_by_peer() {
    let (plex, group) = plex_and_group(2);
    let a = group.member(SystemId::new(0)).unwrap();
    let b = group.member(SystemId::new(1)).unwrap();

    a.run(10, |db, txn| db.write(txn, 5, Some(b"committed-value"))).unwrap();

    // Manually drive a's commit to the most dangerous point: WAL forced,
    // page externalised to the group buffer, no commit record.
    let mut ta = a.begin();
    a.write(&mut ta, 5, Some(b"torn-update")).unwrap();
    let page_no = group.store.page_of(5);
    a.log().append(LogRecord::Update {
        lsn: group.timer.tod(),
        txn: ta.id(),
        page: page_no,
        key: 5,
        before: Some(b"committed-value".to_vec()),
        after: Some(b"torn-update".to_vec()),
    });
    a.log().force().unwrap();
    let mut page = a.buffers().get_page(page_no).unwrap();
    page.set(5, b"torn-update");
    a.buffers().put_page(page_no, &page).unwrap();

    // The system dies. Fence first (heartbeat), then crash the member.
    plex.kill(SystemId::new(0));
    let failed = group.crash_member(SystemId::new(0)).unwrap();

    // Survivor is blocked by the retained lock until recovery.
    let mut tb = b.begin();
    assert!(matches!(b.write(&mut tb, 5, Some(b"x")), Err(DbError::LockTimeout { .. })));
    b.abort(&mut tb).unwrap();

    let report = group.recover_on(SystemId::new(1), &failed).unwrap();
    assert_eq!(report.backed_out_txns, 1);
    assert_eq!(report.undone_updates, 1, "the externalised torn update was undone");
    assert!(report.retained_released >= 1);

    // Consistent, available, writable.
    let v = b.run(10, |db, txn| db.read(txn, 5)).unwrap().unwrap();
    assert_eq!(v, b"committed-value");
    b.run(10, |db, txn| db.write(txn, 5, Some(b"after-recovery"))).unwrap();
    plex.remove_planned(SystemId::new(1));
}

/// Data the failed system was NOT touching stays available the whole time
/// — the heart of the continuous-availability claim.
#[test]
fn untouched_data_never_blocks_during_recovery() {
    let (plex, group) = plex_and_group(3);
    let a = group.member(SystemId::new(0)).unwrap();
    let c = group.member(SystemId::new(2)).unwrap();
    // a holds a lock on key 1 and dies with it.
    let mut ta = a.begin();
    a.write(&mut ta, 1, Some(b"held")).unwrap();
    plex.kill(SystemId::new(0));
    let failed = group.crash_member(SystemId::new(0)).unwrap();

    // Before recovery even starts, every other key is fully available.
    for k in 2..20u64 {
        c.run(10, move |db, txn| db.write(txn, k, Some(b"fine"))).unwrap();
    }
    let report = group.recover_on(SystemId::new(2), &failed).unwrap();
    assert!(report.retained_released >= 1);
    // Now key 1 is available too.
    c.run(10, |db, txn| db.write(txn, 1, Some(b"released"))).unwrap();
    plex.remove_planned(SystemId::new(1));
    plex.remove_planned(SystemId::new(2));
}

/// ARM choreography through the Sysplex runtime: the heartbeat callback
/// plans restarts on the WLM-chosen survivor and the handler confirms.
#[test]
fn arm_restarts_elements_on_survivors() {
    let (plex, group) = plex_and_group(3);
    let restarted = Arc::new(AtomicU64::new(u64::MAX));
    {
        let group = Arc::clone(&group);
        let plexc = Arc::clone(&plex);
        let restarted = Arc::clone(&restarted);
        plex.arm
            .register(
                ElementSpec {
                    name: "DBM01".into(),
                    restart_group: "DB".into(),
                    sequence: 1,
                    affinity_to: None,
                },
                SystemId::new(1),
                move |target| {
                    if let Some(failed) = group.crash_member(SystemId::new(1)) {
                        group.recover_on(target, &failed).unwrap();
                    }
                    plexc.arm.confirm_restart("DBM01", target).unwrap();
                    restarted.store(target.0 as u64, Ordering::SeqCst);
                },
            )
            .unwrap();
    }
    plex.kill(SystemId::new(1));
    let target = restarted.load(Ordering::SeqCst);
    assert!(target == 0 || target == 2, "restarted on a survivor, got {target}");
    assert_eq!(
        plex.arm.whereabouts("DBM01").unwrap().1,
        parallel_sysplex::services::arm::ElementState::Running
    );
    plex.remove_planned(SystemId::new(0));
    plex.remove_planned(SystemId::new(2));
}

/// §2.5's capacity arithmetic: "each individual system only requires 1/N
/// spare system capacity ... for all remaining systems to continue
/// execution of critical workloads" — with N systems at (N-1)/N
/// utilization, the survivors exactly absorb a failure.
#[test]
fn one_over_n_spare_capacity_absorbs_a_failure() {
    use parallel_sysplex::sim::queueing::{run, Node, QueueSimConfig};
    let n = 4usize;
    let cap = 100.0;
    let offered_total = cap * (n as f64 - 1.0); // each node at 75% = 1-1/N
    let cfg = QueueSimConfig { dt_s: 0.1, steps: 400, seed: 5 };
    // Node 0 dies halfway; its load redistributes to the survivors.
    let outcome = run(cfg, (0..n).map(|_| Node::new(cap)).collect(), move |step, _q| {
        if step < 200 {
            vec![offered_total / n as f64; n]
        } else {
            let mut v = vec![offered_total / (n - 1) as f64; n];
            v[0] = 0.0;
            v
        }
    });
    // Survivors run at exactly ρ = 1 after the failure, so Poisson noise
    // leaves a small transient backlog; service is sustained within it.
    assert!(outcome.completion_ratio > 0.985, "no observable loss of service: {outcome:?}");
    assert!(outcome.final_backlog < offered_total, "backlog bounded, not diverging: {outcome:?}");
    // Survivors ended up fully loaded but not over capacity.
    for u in &outcome.utilization[1..] {
        assert!(*u > 0.80 && *u <= 1.0, "survivor utilization {u}");
    }
}
