//! The classic debit/credit (TPC-A-shaped) workload on the live stack —
//! the same workload family as the paper's §4 CICS/DBCTL measurements —
//! with full accounting invariants across systems and across a failure.

use parallel_sysplex::cf::SystemId;
use parallel_sysplex::db::error::DbResult;
use parallel_sysplex::db::group::{DataSharingGroup, GroupConfig};
use parallel_sysplex::db::Database;
use parallel_sysplex::services::sysplex::{Sysplex, SysplexConfig};
use parallel_sysplex::workload::debitcredit::{
    DebitCreditConfig, DebitCreditGenerator, DebitCreditTxn, KeyLayout,
};
use std::sync::Arc;
use std::time::Duration;

fn schema() -> DebitCreditConfig {
    DebitCreditConfig { branches: 3, tellers_per_branch: 4, accounts_per_branch: 40, remote_fraction: 0.2 }
}

fn stack(members: u8) -> (Arc<Sysplex>, Arc<DataSharingGroup>) {
    let plex = Sysplex::new(SysplexConfig::functional("TPCAPLEX"));
    let cf = plex.add_cf("CF01");
    let mut config = GroupConfig { pages: 512, ..GroupConfig::default() };
    config.db.lock_timeout = Duration::from_millis(150);
    let group =
        DataSharingGroup::new(config, &cf, plex.farm.clone(), plex.timer.clone(), plex.xcf.clone()).unwrap();
    for i in 0..members {
        group.add_member(SystemId::new(i)).unwrap();
    }
    (plex, group)
}

fn read_i64(db: &Database, txn: &mut parallel_sysplex::db::Txn, key: u64) -> DbResult<i64> {
    Ok(db.read(txn, key)?.map(|v| i64::from_be_bytes(v[..8].try_into().unwrap())).unwrap_or(0))
}

fn apply(db: &Database, layout: &KeyLayout, t: &DebitCreditTxn) -> DbResult<()> {
    db.run(500, |db, txn| {
        // Fixed key-acquisition order (account > teller > branch keys)
        // keeps the lock graph acyclic.
        let keys = [
            layout.account(t.account_branch, t.account),
            layout.teller(t.home_branch, t.teller),
            layout.branch(t.home_branch),
        ];
        for k in keys {
            let v = read_i64(db, txn, k)?;
            db.write(txn, k, Some(&(v + t.delta).to_be_bytes()))?;
        }
        db.write(txn, layout.history_base() + t.history_seq, Some(&t.delta.to_be_bytes()))
    })
}

#[test]
fn books_balance_across_systems() {
    let (_plex, group) = stack(2);
    let cfg = schema();
    let layout = KeyLayout::new(cfg);
    let mut gen = DebitCreditGenerator::new(cfg, 1996);
    let txns: Vec<DebitCreditTxn> = (0..120).map(|_| gen.next_txn()).collect();
    let expected_total: i64 = txns.iter().map(|t| t.delta).sum();

    // Round-robin the transactions over both members, concurrently.
    let members = group.members();
    let mut handles = Vec::new();
    for (i, member) in members.iter().enumerate() {
        let member = Arc::clone(member);
        let mine: Vec<DebitCreditTxn> = txns.iter().copied().skip(i).step_by(members.len()).collect();
        handles.push(std::thread::spawn(move || {
            for t in mine {
                apply(&member, &KeyLayout::new(schema()), &t).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Audit from either member: accounts ≡ tellers ≡ branches ≡ Σdeltas,
    // and the history is complete.
    let auditor = &members[0];
    let (accounts, tellers, branches, history_count) = auditor
        .run(10, |db, txn| {
            let mut accounts = 0i64;
            let mut tellers = 0i64;
            let mut branches = 0i64;
            for b in 0..cfg.branches {
                branches += read_i64(db, txn, layout.branch(b))?;
                for t in 0..cfg.tellers_per_branch {
                    tellers += read_i64(db, txn, layout.teller(b, t))?;
                }
                for a in 0..cfg.accounts_per_branch {
                    accounts += read_i64(db, txn, layout.account(b, a))?;
                }
            }
            let mut history_count = 0u64;
            for seq in 1..=120u64 {
                if db.read(txn, layout.history_base() + seq)?.is_some() {
                    history_count += 1;
                }
            }
            Ok((accounts, tellers, branches, history_count))
        })
        .unwrap();
    assert_eq!(accounts, expected_total, "account ledger balances");
    assert_eq!(tellers, expected_total, "teller ledger balances");
    assert_eq!(branches, expected_total, "branch ledger balances");
    assert_eq!(history_count, 120, "one history record per transaction");

    for m in group.members() {
        group.remove_member(m.system());
    }
}

#[test]
fn books_balance_across_a_mid_run_failure() {
    let (plex, group) = stack(3);
    let cfg = schema();
    let layout = KeyLayout::new(cfg);
    let mut gen = DebitCreditGenerator::new(cfg, 7);

    let members = group.members();
    let mut applied_deltas = 0i64;
    let mut applied = 0u64;
    for i in 0..60u64 {
        let t = gen.next_txn();
        if i == 30 {
            // System 2 dies between transactions; peer recovery runs.
            plex.kill(SystemId::new(2));
            let failed = group.crash_member(SystemId::new(2)).unwrap();
            group.recover_on(SystemId::new(0), &failed).unwrap();
        }
        let member = &members[(i % 2) as usize]; // route to survivors
        apply(member, &layout, &t).unwrap();
        applied_deltas += t.delta;
        applied += 1;
    }

    let auditor = &members[0];
    let total: i64 = auditor
        .run(10, |db, txn| {
            let mut sum = 0i64;
            for b in 0..cfg.branches {
                sum += read_i64(db, txn, layout.branch(b))?;
            }
            Ok(sum)
        })
        .unwrap();
    assert_eq!(total, applied_deltas, "branch totals match all {applied} applied transactions");
    group.remove_member(SystemId::new(0));
    group.remove_member(SystemId::new(1));
}
