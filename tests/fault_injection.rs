//! Failure-injection suite: the reliability features §3.1–3.2 list,
//! exercised under adversity — channel path loss, couple-data-set member
//! loss, zombie systems after fencing, and structure-full conditions
//! (which drive the commit-failure backout path).

use parallel_sysplex::cf::SystemId;
use parallel_sysplex::db::error::DbError;
use parallel_sysplex::db::group::{DataSharingGroup, GroupConfig};
use parallel_sysplex::services::sysplex::{Sysplex, SysplexConfig};
use std::sync::Arc;
use std::time::Duration;

fn plex_group(systems: u8, config: GroupConfig) -> (Arc<Sysplex>, Arc<DataSharingGroup>) {
    let plex = Sysplex::new(SysplexConfig::functional("FIPLEX"));
    let cf = plex.add_cf("CF01");
    let group =
        DataSharingGroup::new(config, &cf, plex.farm.clone(), plex.timer.clone(), plex.xcf.clone()).unwrap();
    for i in 0..systems {
        group.add_member(SystemId::new(i)).unwrap();
    }
    (plex, group)
}

fn short_timeout_config() -> GroupConfig {
    let mut c = GroupConfig::default();
    c.db.lock_timeout = Duration::from_millis(150);
    c
}

#[test]
fn dasd_path_failures_are_transparent_until_the_last_path() {
    let (_plex, group) = plex_group(1, short_timeout_config());
    let db = group.member(SystemId::new(0)).unwrap();
    db.run(10, |db, txn| db.write(txn, 1, Some(b"seed"))).unwrap();
    db.buffers().castout(100).unwrap();

    let vol = group.farm.volume("DSGDB01").unwrap();
    // Knock out 3 of 4 channel paths: I/O keeps flowing.
    vol.fail_path(0);
    vol.fail_path(1);
    vol.fail_path(2);
    db.run(10, |db, txn| db.write(txn, 2, Some(b"still-works"))).unwrap();
    assert!(vol.redrives.load(std::sync::atomic::Ordering::Relaxed) > 0, "redrives happened");

    // Last path gone: the error surfaces cleanly (no panic, no corruption)…
    vol.fail_path(3);
    // Pages already buffered still read fine (no DASD involved).
    let v = db.run(10, |db, txn| db.read(txn, 1)).unwrap().unwrap();
    assert_eq!(v, b"seed");
    // …and a cold read of an unbuffered page reports the I/O failure.
    let err = db.run(0, |db, txn| db.read(txn, 77)).unwrap_err();
    assert!(matches!(err, DbError::Io(_)), "got {err:?}");

    // Path restored: service resumes.
    vol.restore_path(2);
    db.run(10, |db, txn| db.write(txn, 77, Some(b"recovered"))).unwrap();
    group.remove_member(SystemId::new(0));
}

#[test]
fn cds_member_loss_under_heartbeat_traffic_hot_switches() {
    let plex = Sysplex::new(SysplexConfig::functional("FIPLEX2"));
    for i in 0..3u8 {
        plex.ipl(parallel_sysplex::services::system::SystemConfig::cmos(SystemId::new(i), 1));
    }
    // Drive heartbeats while the CDS primary dies and a fresh alternate is
    // introduced.
    for round in 0..30 {
        assert!(plex.tick().is_empty(), "no false failure declarations");
        if round == 10 {
            plex.cds.pair().hot_switch().unwrap();
        }
        if round == 20 {
            let fresh = Arc::new(parallel_sysplex::dasd::volume::Volume::new(
                "CDS03",
                1024,
                parallel_sysplex::dasd::volume::IoModel::instant(),
            ));
            plex.cds.pair().replace_alternate(fresh).unwrap();
            assert!(plex.cds.pair().is_duplexed());
        }
    }
    assert_eq!(plex.cds.pair().switches.load(std::sync::atomic::Ordering::Relaxed), 1);
    for i in 0..3u8 {
        plex.remove_planned(SystemId::new(i));
    }
}

#[test]
fn fenced_zombie_cannot_damage_shared_state() {
    let (plex, group) = plex_group(2, short_timeout_config());
    for i in 0..2u8 {
        plex.ipl(parallel_sysplex::services::system::SystemConfig::cmos(SystemId::new(i), 1));
    }
    let zombie = group.member(SystemId::new(0)).unwrap();
    let healthy = group.member(SystemId::new(1)).unwrap();
    healthy.run(10, |db, txn| db.write(txn, 5, Some(b"good"))).unwrap();
    healthy.buffers().castout(100).unwrap();

    // Declare system 0 failed: the fence rises first. Its threads are
    // still running — the zombie scenario the paper's fail-stop design
    // guards against.
    plex.kill(SystemId::new(0));
    // Zombie DASD I/O is rejected…
    let err = group.store.write_image(0, 0, b"corruption").unwrap_err();
    assert!(matches!(err, DbError::Io(parallel_sysplex::dasd::IoError::Fenced(0))));
    // …zombie transactions fail (fenced log force or DASD read)…
    let r = zombie.run(0, |db, txn| db.write(txn, 5, Some(b"evil")));
    assert!(r.is_err(), "zombie write must not succeed: {r:?}");
    // …and the shared data is untouched and available to survivors.
    let v = healthy.run(10, |db, txn| db.read(txn, 5)).unwrap().unwrap();
    assert_eq!(v, b"good");
    group.remove_member(SystemId::new(1));
    plex.remove_planned(SystemId::new(1));
}

#[test]
fn group_buffer_full_aborts_cleanly_and_recovers_by_castout() {
    // A group buffer too small for the working set: once every directory
    // entry holds changed data, further writes must fail the transaction
    // cleanly (commit backout path) — and a castout sweep must restore
    // service.
    let mut config = short_timeout_config();
    config.cache_entries = 4;
    config.pages = 64;
    let (_plex, group) = plex_group(1, config);
    let db = group.member(SystemId::new(0)).unwrap();

    // Fill the tiny structure with changed pages.
    let mut filled = 0u64;
    let mut failed_key = None;
    for k in 0..16u64 {
        match db.run(0, move |db, txn| db.write(txn, k, Some(b"dirty"))) {
            Ok(()) => filled += 1,
            Err(DbError::Cf(e)) => {
                assert_eq!(e, parallel_sysplex::cf::CfError::StructureFull);
                failed_key = Some(k);
                break;
            }
            Err(e) => panic!("unexpected {e:?}"),
        }
    }
    let failed_key = failed_key.expect("the tiny structure must fill");
    assert!(filled >= 3, "several pages fit before exhaustion");

    // Castout drains the structure; service resumes. (While jammed, even
    // registration for reads is refused — that is the point of the test.)
    db.buffers().castout(100).unwrap();

    // The failed transaction backed out: its lock is free (no leak) and
    // its record absent.
    let v = db.run(10, move |db, txn| db.read(txn, failed_key)).unwrap();
    assert_eq!(v, None, "failed write left nothing behind");
    db.run(10, move |db, txn| db.write(txn, failed_key, Some(b"after-castout"))).unwrap();
    // Everything previously committed is intact.
    for k in 0..filled {
        let v = db.run(10, move |db, txn| db.read(txn, k)).unwrap().unwrap();
        assert_eq!(v, b"dirty");
    }
    group.remove_member(SystemId::new(0));
}

#[test]
fn castout_daemon_and_peer_recovery_coexist() {
    use parallel_sysplex::db::castout::{CastoutConfig, CastoutDaemon};
    let (plex, group) = plex_group(2, short_timeout_config());
    let a = group.member(SystemId::new(0)).unwrap();
    let b = group.member(SystemId::new(1)).unwrap();
    // The survivor runs a castout daemon throughout.
    let daemon = CastoutDaemon::start(
        Arc::clone(&b),
        CastoutConfig { interval: Duration::from_millis(2), batch: 64, checkpoint: true },
    );
    a.run(10, |db, txn| db.write(txn, 9, Some(b"committed"))).unwrap();
    // a dies holding a lock with an externalised torn update.
    let mut ta = a.begin();
    a.write(&mut ta, 9, Some(b"torn")).unwrap();
    a.log().append(parallel_sysplex::db::log::LogRecord::Update {
        lsn: group.timer.tod(),
        txn: ta.id(),
        page: group.store.page_of(9),
        key: 9,
        before: Some(b"committed".to_vec()),
        after: Some(b"torn".to_vec()),
    });
    a.log().force().unwrap();
    let page_no = group.store.page_of(9);
    let mut page = a.buffers().get_page(page_no).unwrap();
    page.set(9, b"torn");
    a.buffers().put_page(page_no, &page).unwrap();
    plex.kill(SystemId::new(0));
    let failed = group.crash_member(SystemId::new(0)).unwrap();
    // Recovery runs while the daemon keeps sweeping.
    let report = group.recover_on(SystemId::new(1), &failed).unwrap();
    assert_eq!(report.undone_updates, 1);
    // Let the daemon drain everything; DASD converges to the committed
    // value despite the concurrent backout.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while group.cache_structure().changed_count() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(group.cache_structure().changed_count(), 0);
    assert_eq!(group.store.read_page(1, page_no).unwrap().get(9).unwrap(), b"committed");
    let v = b.run(10, |db, txn| db.read(txn, 9)).unwrap().unwrap();
    assert_eq!(v, b"committed");
    daemon.stop();
    group.remove_member(SystemId::new(1));
}

#[test]
fn lock_record_exhaustion_fails_the_request_not_the_structure() {
    let mut config = short_timeout_config();
    config.lock_entries = 64; // record capacity follows entries
    let (_plex, group) = plex_group(1, config);
    let db = group.member(SystemId::new(0)).unwrap();
    // Open one transaction holding many persistent locks until the record
    // area fills.
    let mut txn = db.begin();
    let mut hit_full = false;
    for k in 0..200u64 {
        match db.write(&mut txn, k, Some(b"x")) {
            Ok(()) => {}
            Err(DbError::Cf(parallel_sysplex::cf::CfError::StructureFull)) => {
                hit_full = true;
                break;
            }
            Err(e) => panic!("unexpected {e:?}"),
        }
    }
    assert!(hit_full, "record capacity must be enforceable");
    // The transaction can still abort cleanly and the structure serves new
    // work.
    db.abort(&mut txn).unwrap();
    db.run(10, |db, txn| db.write(txn, 0, Some(b"fresh"))).unwrap();
    group.remove_member(SystemId::new(0));
}
