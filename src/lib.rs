//! # parallel-sysplex — facade crate
//!
//! A reproduction of *Overview of IBM System/390 Parallel Sysplex — A
//! Commercial Parallel Processing System* (Nick, Chung & Bowen, IPPS 1996).
//!
//! The workspace builds the full stack the paper describes; this crate
//! re-exports every layer under one roof:
//!
//! * [`cf`] — the Coupling Facility: lock, cache and list structure models
//!   with coupling links (§3.3).
//! * [`dasd`] — the shared DASD substrate: volumes, multipath, duplexing,
//!   I/O fencing (§3.1–3.2).
//! * [`services`] — base MVS multi-system services: sysplex timer, XCF
//!   group services, couple data sets, heartbeat monitoring, WLM, ARM and
//!   system images (§3.2, §2.1, §2.5).
//! * [`db`] — the data-sharing database stack: IRLM-style global lock
//!   manager, coherent buffer manager, record store, WAL and peer recovery
//!   (§3.3.1–3.3.2, §5.2).
//! * [`subsys`] — exploiting subsystems: CICS-style transaction management
//!   with dynamic routing, shared work queues, and VTAM generic resources
//!   (§5).
//! * [`workload`] — OLTP / decision-support workload generators and
//!   metrics (§2.3).
//! * [`sim`] — the discrete-event capacity simulator behind the Figure 3
//!   scalability study and the data-sharing vs data-partitioning
//!   comparison (§2.3, §4).
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench`
//! for the harness regenerating every figure and quantitative claim.

pub use sysplex_core as cf;
pub use sysplex_dasd as dasd;
pub use sysplex_db as db;
pub use sysplex_services as services;
pub use sysplex_sim as sim;
pub use sysplex_subsys as subsys;
pub use sysplex_workload as workload;
