//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the
//! `proptest!` macro (with `#![proptest_config(..)]`), `any::<T>()`,
//! integer/float range strategies, tuple strategies, `prop_map`,
//! `prop_oneof!` (weighted and unweighted), `collection::{vec,
//! btree_map}`, `option::of`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Inputs are generated from a deterministic per-test seed (FNV of the
//! test name), so failures reproduce run-to-run. There is **no
//! shrinking**: a failing case reports its case number and panics with
//! the original assertion message.

pub mod test_runner {
    /// Run configuration: how many random cases each property executes.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded construction.
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform value in `[lo, hi)` (i128 bounds cover all int types).
        pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
            assert!(lo < hi, "cannot sample empty range");
            let width = (hi - lo) as u128;
            lo + ((self.next_u64() as u128) % width) as i128
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values of `Value`.
    ///
    /// Object-safe: `generate` takes no type parameters, so
    /// `Box<dyn Strategy<Value = T>>` works (used by `prop_oneof!`).
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Produce one random value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of one value (proptest's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice between type-erased strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof needs at least one weighted arm");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.next_u64() % self.total;
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights sum covered the draw")
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw one unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    /// Strategy returned by [`crate::any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T> Any<T> {
        pub(crate) fn new() -> Any<T> {
            Any { _marker: std::marker::PhantomData }
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.int_in(self.start as i128, self.end as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.int_in(*self.start() as i128, *self.end() as i128 + 1) as $t
                }
            }
        )*};
    }
    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
    );
}

/// The canonical strategy for "any value of `T`".
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::new()
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector whose length is drawn from `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.int_in(self.size.start as i128, self.size.end as i128) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap` with a target size drawn from `size`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// A map with a size drawn from `size` (best effort under key
    /// collisions) and entries from `key`/`value`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let target = rng.int_in(self.size.start as i128, self.size.end as i128) as usize;
            let mut map = BTreeMap::new();
            // Bounded attempts: duplicate keys may keep the map short.
            for _ in 0..target.saturating_mul(4) {
                if map.len() >= target {
                    break;
                }
                map.insert(self.key.generate(rng), self.value.generate(rng));
            }
            map
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` (3:1 `Some`, like upstream's
    /// default weighting).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` three quarters of the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Define property tests: each `#[test] fn name(arg in strategy, ..)`
/// runs `cases` times over freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in stringify!($name).bytes() {
                seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut rng = $crate::test_runner::TestRng::new(seed);
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(move || {
                    $body
                }));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest: {} failed at case {}/{} (seed {:#x}); no shrinking in offline shim",
                        stringify!($name),
                        case,
                        config.cases,
                        seed
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Weighted (`w => strategy`) or uniform choice among strategies
/// producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Assert inside a property (plain `assert!` here — no shrink report).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    pub use crate::strategy::{Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Add(u8),
        Clear,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => any::<u8>().prop_map(Op::Add),
            1 => (0u8..1).prop_map(|_| Op::Clear),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_lengths_in_bounds(v in crate::collection::vec(any::<u8>(), 3..9)) {
            prop_assert!((3..9).contains(&v.len()));
        }

        #[test]
        fn ranges_and_tuples(
            a in 0u8..3,
            pair in (1usize..10, 0.0f64..1.5),
            flag in any::<bool>(),
        ) {
            prop_assert!(a < 3);
            prop_assert!((1..10).contains(&pair.0));
            prop_assert!((0.0..1.5).contains(&pair.1));
            let _ = flag;
        }

        #[test]
        fn oneof_and_map_produce_all_arms(ops in crate::collection::vec(op_strategy(), 40..80)) {
            prop_assert!(ops.iter().any(|o| matches!(o, Op::Add(_))));
        }

        #[test]
        fn btree_map_respects_target(m in crate::collection::btree_map(any::<u64>(), any::<u8>(), 0..10)) {
            prop_assert!(m.len() < 10);
        }

        #[test]
        fn option_of_mixes(v in crate::collection::vec(crate::option::of(any::<u8>()), 64..65)) {
            let somes = v.iter().filter(|o| o.is_some()).count();
            prop_assert!(somes > 0 && somes < 64, "both variants appear");
        }
    }
}
