//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock benchmarking harness with criterion's API shape
//! (`Criterion::default().sample_size(..)`, `benchmark_group`,
//! `bench_function`, `Bencher::iter`). It calibrates an iteration count
//! per sample, runs the requested number of samples, and prints
//! `name  time: [min mean max]` lines. No statistics engine, plots, or
//! saved baselines — the experiment benches print their own tables and
//! only need stable relative numbers.

use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver, builder-style like upstream.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Samples collected per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before measuring.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target time spent measuring each benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Upstream parses CLI filters/baselines here; cargo passes
    /// `--bench` to harness-less bench binaries. This shim accepts and
    /// ignores all arguments.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    /// Run one benchmark outside any group.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        f: F,
    ) -> &mut Self {
        run_bench(
            &name.into(),
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            f,
        );
        self
    }

    /// Upstream prints the aggregate summary; the per-bench lines have
    /// already been printed, so this is a no-op.
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix and (optionally
/// overridden) sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override samples per benchmark for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Override measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Override warm-up time for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Measure one benchmark in this group.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_bench(&full, self.sample_size, self.warm_up_time, self.measurement_time, f);
        self
    }

    /// Close the group (upstream emits summary output here).
    pub fn finish(self) {}
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `routine`; the harness divides by the
    /// iteration count afterwards.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    mut f: F,
) {
    // Calibration pass: one iteration, which also serves as warm-up
    // start.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    let warm_start = Instant::now();
    f(&mut b);
    let mut per_iter = b.elapsed.max(Duration::from_nanos(1));

    // Warm up for the remaining budget.
    while warm_start.elapsed() < warm_up_time {
        let mut w = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut w);
        per_iter = (per_iter + w.elapsed.max(Duration::from_nanos(1))) / 2;
    }

    // Pick iterations per sample so all samples together roughly fill
    // the measurement budget; slow benchmarks degrade to fewer samples
    // of one iteration each rather than overshooting wildly.
    let budget_per_sample = measurement_time.as_nanos() / sample_size.max(1) as u128;
    let iters = (budget_per_sample / per_iter.as_nanos().max(1)).clamp(1, u64::MAX as u128) as u64;
    let samples = if iters == 1 {
        let fit = (measurement_time.as_nanos() / per_iter.as_nanos().max(1)).max(1) as usize;
        sample_size.min(fit.max(1))
    } else {
        sample_size
    };

    let mut means: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut s = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut s);
        means.push(s.elapsed.as_nanos() as f64 / iters as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let min = means.first().copied().unwrap_or(0.0);
    let max = means.last().copied().unwrap_or(0.0);
    let mean = means.iter().sum::<f64>() / means.len().max(1) as f64;
    println!(
        "{name:<40} time:   [{} {} {}]  ({} samples x {} iters)",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max),
        samples,
        iters
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(25))
            .configure_from_args();
        let mut group = c.benchmark_group("shim");
        let mut count = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
                black_box(count)
            })
        });
        group.finish();
        c.final_summary();
        assert!(count > 0, "routine actually ran");
    }

    #[test]
    fn slow_benchmarks_do_not_overshoot_budget() {
        let mut c = Criterion::default()
            .sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(40));
        let start = Instant::now();
        c.bench_function("slow", |b| {
            b.iter(|| std::thread::sleep(Duration::from_millis(10)))
        });
        assert!(start.elapsed() < Duration::from_secs(2));
    }
}
