//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the subset the workspace uses: a seedable
//! deterministic [`rngs::StdRng`] (SplitMix64 — statistically fine for
//! workload generation and queueing simulation, not cryptographic), the
//! [`RngExt`] extension trait with `random::<T>()` and
//! `random_range(range)`, and [`SeedableRng::seed_from_u64`].

/// A source of random `u64`s plus the convenience methods the workspace
/// calls. Blanket-implemented helpers mirror the upstream `Rng` surface.
pub trait RngExt {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T` (see [`Random`] for the types).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniform value in `range` (half-open or inclusive integer
    /// ranges). Panics on an empty range, as upstream does.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Fill `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types [`RngExt::random`] can produce.
pub trait Random {
    /// Draw one uniformly random value from `rng`.
    fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for bool {
    fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` using the top 24 bits.
    fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % width;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                // width can be 2^64 at most for 64-bit types; modulo in
                // u128 keeps that case exact.
                let v = (rng.next_u64() as u128) % width;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Construction from a seed, mirroring upstream's trait of the same name.
pub trait SeedableRng: Sized {
    /// Build a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.random_range(0..10u64);
            assert!(v < 10);
            let d = rng.random_range(-999_999..=999_999i64);
            assert!((-999_999..=999_999).contains(&d));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.random_range(0..10usize)] += 1;
        }
        for b in buckets {
            assert!((8_000..12_000).contains(&b), "bucket {b} out of tolerance");
        }
    }
}
