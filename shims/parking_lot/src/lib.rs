//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no reachable crates.io mirror, so the real
//! crate cannot be downloaded. This shim provides the exact subset the
//! workspace uses — `Mutex`, `RwLock`, `Condvar` with parking_lot's
//! no-poison API shape — implemented over `std::sync`. Poisoned std
//! guards are recovered transparently (parking_lot has no poisoning).

use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` returns the guard directly
/// (no `Result`), matching parking_lot.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(_) => panic!("mutex poisoned"),
        }
    }
}

/// RAII guard for [`Mutex`]. Holds an `Option` internally so
/// [`Condvar::wait_for`] can hand the underlying std guard to
/// `std::sync::Condvar` and put it back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Try to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(RwLockReadGuard { inner: e.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(_) => panic!("rwlock poisoned"),
        }
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable operating on this module's [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified (spurious wakeups possible, as upstream).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self.inner.wait(std_guard).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, res) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult(res.timed_out())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.try_read().map(|g| g.len()), Some(3));
    }

    #[test]
    fn condvar_wait_for_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            *p2.0.lock() = true;
            p2.1.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            let r = cv.wait_for(&mut done, Duration::from_secs(5));
            assert!(!r.timed_out(), "notified before timeout");
        }
        h.join().unwrap();
    }
}
