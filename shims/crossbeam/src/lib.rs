//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the subset the workspace uses: MPMC `channel` (crossbeam's
//! `Receiver` is `Clone`, unlike `std::sync::mpsc`) and
//! `utils::CachePadded`. Built on a mutex-guarded `VecDeque` plus two
//! condition variables; correctness over raw throughput — the hot paths
//! in this workspace model CF link latency anyway, which dwarfs channel
//! overhead.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half of a channel. Cloneable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a channel. Cloneable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Sender {{ .. }}")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Receiver {{ .. }}")
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // No `T: Debug` bound, matching upstream.
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl std::fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Timed out with the channel still empty.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "channel is empty and disconnected")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// Create a bounded MPMC channel holding at most `cap` messages.
    /// (A zero capacity is treated as one; the workspace never uses
    /// rendezvous channels.)
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        /// Send a message, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = inner.cap.is_some_and(|c| inner.queue.len() >= c);
                if !full {
                    inner.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                inner = self
                    .shared
                    .not_full
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap_or_else(|e| e.into_inner()).senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receive a message, blocking until one arrives or all senders
        /// are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .shared
                    .not_empty
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = inner.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receive, blocking at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                inner = guard;
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap_or_else(|e| e.into_inner()).queue.len()
        }

        /// Whether the channel is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap_or_else(|e| e.into_inner()).receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.shared.not_full.notify_all();
            }
        }
    }
}

pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to (at least) a cache-line boundary so
    /// adjacent counters never share a line (false sharing).
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wrap `value` in padding.
        pub const fn new(value: T) -> CachePadded<T> {
            CachePadded { value }
        }

        /// Unwrap the padded value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn mpmc_fan_out_and_in() {
        let (tx, rx) = unbounded::<u64>();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        for i in 1..=100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u64 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 5050);
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded::<u8>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let h = std::thread::spawn(move || tx.send(3).map_err(|_| ()));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        h.join().unwrap().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn disconnect_and_timeout_semantics() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
