//! IRLM — the distributed lock manager on the CF lock structure.
//!
//! §3.3.1: "The CF lock structure provides a hardware-assisted global lock
//! contention detection mechanism for use by distributed lock managers,
//! such as the IMS Resource Lock Manager (IRLM). ... This allows the
//! majority of requests for locks to be granted cpu-synchronously to the
//! requesting system ... Only in exception cases involving lock contention
//! is lock negotiation required. In such cases, the CF returns the identity
//! of the system or systems currently holding locks in an incompatible
//! state ... to enable selective cross-system communication for lock
//! negotiation."
//!
//! Each system runs one [`Irlm`] instance per lock structure. The grant
//! hierarchy, cheapest first:
//!
//! 1. **Local grant** — the system already holds covering interest in the
//!    resource's hash class; no CF command at all.
//! 2. **CF-synchronous grant** — one lock-structure command, microseconds.
//! 3. **Negotiated grant** — the CF reported contention; the requester
//!    queries exactly the holder systems over XCF. When none actually
//!    holds *this* resource in a conflicting mode the contention was
//!    *false* (hash collision) and interest is recorded anyway.
//! 4. **Busy** — a real resource-level conflict; the caller backs off.
//!
//! Exclusive locks taken for updates also write CF **record data** so that,
//! after a system failure, survivors can read exactly which resources the
//! dead system held ([`Irlm::retained_locks_of`]) and release them once
//! backout completes ([`Irlm::complete_peer_recovery`]).

use crate::error::{DbError, DbResult};
use crossbeam::channel::{bounded, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use sysplex_core::connection::{CfSubchannel, LockConnection};
use sysplex_core::lock::{DisconnectMode, LockMode, LockResponse, LockStructure, RetainedLock};
use sysplex_core::stats::Counter;
use sysplex_core::types::{conns_in_mask, ConnId};
use sysplex_core::SystemId;
use sysplex_services::timer::SysplexTimer;
use sysplex_services::xcf::{Xcf, XcfError, XcfItem, XcfMember};

/// Outcome of a single (non-waiting) lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock is held.
    Granted,
    /// A real conflict exists; retry later or give up.
    Busy,
}

/// Counters published by an IRLM instance.
#[derive(Debug, Default)]
pub struct IrlmStats {
    /// All lock requests.
    pub requests: Counter,
    /// Granted without any CF command (covering local interest).
    pub grants_local: Counter,
    /// Granted by a CPU-synchronous CF command.
    pub grants_cf_sync: Counter,
    /// Requests that saw CF entry contention.
    pub contentions: Counter,
    /// Contentions resolved as false (hash collision only).
    pub false_contentions: Counter,
    /// Contentions confirmed as real resource conflicts.
    pub real_conflicts: Counter,
    /// Conflicts detected locally (two transactions, same system).
    pub local_conflicts: Counter,
    /// Negotiation queries answered for peers.
    pub queries_served: Counter,
    /// Re-granted from cached sole CF interest — no CF command at all.
    pub regrants_local: Counter,
    /// Last local hold released with CF interest parked, not released.
    pub lazy_releases: Counter,
    /// Cached or parked interest recalled by a peer's negotiation query.
    pub recalls: Counter,
}

#[derive(Debug, Clone, Copy)]
struct Holder {
    mode: LockMode,
    persistent: bool,
}

#[derive(Debug, Default)]
struct ResourceHolders {
    holders: HashMap<u64, Holder>,
}

impl ResourceHolders {
    /// Can `txn` acquire `mode` alongside the current local holders?
    fn compatible_for(&self, txn: u64, mode: LockMode) -> bool {
        self.holders
            .iter()
            .all(|(&t, h)| t == txn || matches!((h.mode, mode), (LockMode::Shared, LockMode::Shared)))
    }

    /// Would a *foreign-system* request of `mode` conflict with any holder?
    fn conflicts_with_peer(&self, mode: LockMode) -> bool {
        if self.holders.is_empty() {
            return false;
        }
        match mode {
            LockMode::Exclusive => true,
            LockMode::Shared => self.holders.values().any(|h| h.mode == LockMode::Exclusive),
        }
    }

    fn strongest(&self) -> Option<LockMode> {
        if self.holders.values().any(|h| h.mode == LockMode::Exclusive) {
            Some(LockMode::Exclusive)
        } else if !self.holders.is_empty() {
            Some(LockMode::Shared)
        } else {
            None
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct EntryInterest {
    /// Distinct local resources hashing to this entry. CF interest in the
    /// entry is released when this drops to zero — unless the entry is
    /// parked (lazy release).
    count: usize,
    /// This system observed a sole-interest exclusive CF grant for the
    /// entry and no peer has negotiated since. While set, re-grants
    /// against the entry complete locally: any foreign acquisition must
    /// negotiate with us first, and the recall clears the flag before the
    /// reply goes out.
    cached: bool,
    /// `count == 0` but CF interest is retained so a re-acquire can take
    /// the local fast path. Surrendered on recall or FIFO eviction.
    parked: bool,
}

/// Cap on parked (lazily released) entries per IRLM. Eviction is FIFO so
/// replayed runs surrender the same victims in the same order.
const PARK_CAP: usize = 1024;

#[derive(Debug, Default)]
struct LocalState {
    resources: HashMap<Vec<u8>, ResourceHolders>,
    entries: HashMap<usize, EntryInterest>,
    /// FIFO of parked entry indexes. May hold stale positions for entries
    /// re-granted since parking; eviction skips them (`parked` is the
    /// source of truth, `parked_live` the live count).
    parked: VecDeque<usize>,
    parked_live: usize,
    /// Entries with a phase-2 CF request in flight. A recall must not
    /// surrender such an entry: the requester may be granted on its own
    /// retained interest and a concurrent release would wipe the grant.
    inflight: HashMap<usize, u32>,
    /// Entries where a phase-2 request is *inside the grant window*: the
    /// CF command is executing, or it succeeded and phase 3 has not yet
    /// recorded the grant locally. A peer's negotiation query in this
    /// window must report conflict — the resource scan cannot see the
    /// pending grant, and answering "no conflict" would let the peer's
    /// negotiated write bypass it (dual exclusive holders, lost update).
    /// Kept separate from `inflight`: the whole negotiate loop is slow
    /// (XCF round trips, backoff) and reporting conflict for all of it
    /// starves wide member groups; the grant window is microseconds.
    critical: HashMap<usize, u32>,
    /// Bumped by every peer negotiation query. A CF grant caches its
    /// entry only when no recall intervened since the request started —
    /// a query racing phase 2/3 might concern interest we are about to
    /// record, and its recall must win.
    recall_seq: u64,
    /// Hash classes a peer recently negotiated on: inter-system interest
    /// exists there, so sole-interest caching would only bounce — every
    /// grant parks at unlock and forces the next peer through a recall
    /// round trip, and on a hot shared class the whole group degenerates
    /// into negotiation storms. A queried entry skips the cached fast
    /// path for its next [`RECALL_COOLDOWN`] CF grants (refreshed by
    /// further queries); genuinely local classes are never queried and
    /// keep caching.
    cool: HashMap<usize, u32>,
}

/// CF grants on a recalled hash class that must complete before the
/// class may be cached (and hence parked) again.
const RECALL_COOLDOWN: u32 = 8;

const MSG_QUERY: u8 = 0x01;
const MSG_REPLY: u8 = 0x02;

fn encode_query(req_id: u64, mode: LockMode, resource: &[u8]) -> Vec<u8> {
    let mut m = Vec::with_capacity(10 + resource.len());
    m.push(MSG_QUERY);
    m.extend_from_slice(&req_id.to_be_bytes());
    m.push(match mode {
        LockMode::Shared => 0,
        LockMode::Exclusive => 1,
    });
    m.extend_from_slice(resource);
    m
}

fn encode_reply(req_id: u64, conflict: bool) -> Vec<u8> {
    let mut m = Vec::with_capacity(10);
    m.push(MSG_REPLY);
    m.extend_from_slice(&req_id.to_be_bytes());
    m.push(conflict as u8);
    m
}

/// The IRLM's current CF attachment. Swapped atomically (under the
/// rebuild gate) when the lock structure is rebuilt into another CF.
/// With duplexing enabled, `secondary` mirrors every grant, release and
/// record so a CF loss fails over with no recovery at all.
#[derive(Debug, Clone)]
struct CfTarget {
    conn: LockConnection,
    secondary: Option<LockConnection>,
}

impl CfTarget {
    // Duplexing requires identical geometry (enforced at enable time), so
    // the primary's entry index is valid verbatim on the secondary and
    // release decisions stay aligned across both structures.

    /// Mirror recorded interest onto the secondary. Forced interest
    /// over-approximates (safe: at worst extra negotiation after a
    /// failover, never a missed conflict).
    fn mirror_grant(&self, entry: usize, mode: LockMode) {
        if let Some(sec) = &self.secondary {
            let _ = sec.force_interest(entry, mode);
        }
    }

    fn mirror_record(&self, resource: &[u8], mode: LockMode, txn: u64) {
        if let Some(sec) = &self.secondary {
            let _ = sec.write_lock_record(resource, mode, &txn.to_be_bytes());
        }
    }

    fn mirror_unlock(&self, resource: &[u8], entry: usize, release_entry: bool, had_record: bool) {
        if let Some(sec) = &self.secondary {
            if had_record {
                let _ = sec.delete_lock_record(resource);
            }
            if release_entry {
                let _ = sec.release_lock(entry);
            }
        }
    }
}

/// Clears a phase-2 in-flight registration on every exit path of
/// `lock_inner` (grant, busy, renegotiation exhaustion, CF error).
struct InflightGuard<'a> {
    irlm: &'a Irlm,
    entry: usize,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        let mut local = self.irlm.local.lock();
        if let Some(n) = local.inflight.get_mut(&self.entry) {
            *n -= 1;
            if *n == 0 {
                local.inflight.remove(&self.entry);
            }
        }
    }
}

/// Marks the grant window (CF command in flight, or granted at the CF but
/// not yet recorded locally) in `LocalState::critical`. Entered just
/// before each CF interest write and exited either on a failed attempt or
/// — for the winning attempt — under the same latch acquisition that
/// records the grant, so a peer's negotiation query can never observe the
/// granted-but-unrecorded gap.
struct CriticalGuard<'a> {
    irlm: &'a Irlm,
    entry: usize,
    entered: bool,
}

impl<'a> CriticalGuard<'a> {
    fn new(irlm: &'a Irlm, entry: usize) -> Self {
        CriticalGuard { irlm, entry, entered: false }
    }

    fn enter(&mut self) {
        if !self.entered {
            *self.irlm.local.lock().critical.entry(self.entry).or_insert(0) += 1;
            self.entered = true;
        }
    }

    fn exit(&mut self) {
        if self.entered {
            Self::clear(&mut self.irlm.local.lock(), self.entry);
            self.entered = false;
        }
    }

    /// Exit under an already-held latch (the grant-recording acquisition).
    fn exit_in(&mut self, local: &mut LocalState) {
        if self.entered {
            Self::clear(local, self.entry);
            self.entered = false;
        }
    }

    fn clear(local: &mut LocalState, entry: usize) {
        if let Some(n) = local.critical.get_mut(&entry) {
            *n -= 1;
            if *n == 0 {
                local.critical.remove(&entry);
            }
        }
    }
}

impl Drop for CriticalGuard<'_> {
    fn drop(&mut self) {
        self.exit();
    }
}

/// A per-system IRLM instance.
pub struct Irlm {
    system: SystemId,
    /// Current structure + connector. Every CF-touching operation holds a
    /// read guard; structure rebuild holds the write guard, which both
    /// quiesces in-flight CF operations and publishes the new target.
    cf: RwLock<CfTarget>,
    member: Arc<XcfMember>,
    local: Mutex<LocalState>,
    pending: Arc<Mutex<HashMap<u64, Sender<bool>>>>,
    next_req: AtomicU64,
    stop: Arc<AtomicBool>,
    service: Mutex<Option<JoinHandle<()>>>,
    /// How long a negotiation waits for a peer's verdict.
    negotiation_timeout: Duration,
    /// Time reference for lock-wait timeouts. Defaults to a wall clock;
    /// the deterministic harness swaps in the sysplex's virtual timer so
    /// deadlock-breaker expiry is driven by simulated time.
    clock: RwLock<Arc<SysplexTimer>>,
    /// Published counters.
    pub stats: Arc<IrlmStats>,
}

impl Irlm {
    /// XCF group used by the IRLMs of one lock structure.
    pub fn group_name(structure: &LockStructure) -> String {
        format!("IRLM.{}", structure.name())
    }

    /// XCF member name of the IRLM holding connector `conn`.
    pub fn member_name(conn: ConnId) -> String {
        format!("IRLM{:02}", conn.raw())
    }

    /// Start an IRLM on `system`: the caller supplies a [`LockConnection`]
    /// (the unified CF command path); the IRLM joins the negotiation group
    /// and spawns the service thread answering peer queries.
    pub fn start(system: SystemId, conn: LockConnection, xcf: &Arc<Xcf>) -> DbResult<Arc<Self>> {
        let member = Arc::new(
            xcf.join(&Self::group_name(conn.structure()), &Self::member_name(conn.conn_id()), system)
                .map_err(|_| DbError::NegotiationFailed)?,
        );
        let irlm = Arc::new(Irlm {
            system,
            cf: RwLock::new(CfTarget { conn, secondary: None }),
            member,
            local: Mutex::new(LocalState::default()),
            pending: Arc::new(Mutex::new(HashMap::new())),
            next_req: AtomicU64::new(1),
            stop: Arc::new(AtomicBool::new(false)),
            service: Mutex::new(None),
            negotiation_timeout: Duration::from_secs(2),
            clock: RwLock::new(SysplexTimer::new()),
            stats: Arc::new(IrlmStats::default()),
        });
        let service = {
            let irlm = Arc::clone(&irlm);
            std::thread::Builder::new()
                .name(format!("irlm-{}", system))
                .spawn(move || irlm.service_loop())
                .expect("spawn irlm service")
        };
        *irlm.service.lock() = Some(service);
        Ok(irlm)
    }

    /// The system this IRLM serves.
    pub fn system(&self) -> SystemId {
        self.system
    }

    /// This IRLM's lock-structure connector.
    pub fn conn(&self) -> ConnId {
        self.cf.read().conn.conn_id()
    }

    /// The lock structure currently attached.
    pub fn structure(&self) -> Arc<LockStructure> {
        Arc::clone(self.cf.read().conn.structure())
    }

    /// Clock lock-wait timeouts from `timer` (see the field doc).
    pub fn set_clock(&self, timer: Arc<SysplexTimer>) {
        *self.clock.write() = timer;
    }

    fn service_loop(&self) {
        while !self.stop.load(Ordering::Acquire) {
            match self.member.recv_timeout(Duration::from_millis(10)) {
                Ok(XcfItem::Message { from, payload }) => self.handle_message(&from, &payload),
                Ok(XcfItem::Event(_)) => {} // recovery is driven at the Database layer
                Err(_) => {}                // timeout; loop to check stop flag
            }
        }
    }

    fn handle_message(&self, from: &str, payload: &[u8]) {
        match payload.first() {
            Some(&MSG_QUERY) if payload.len() >= 10 => {
                let req_id = u64::from_be_bytes(payload[1..9].try_into().unwrap());
                let mode = if payload[9] == 1 { LockMode::Exclusive } else { LockMode::Shared };
                let resource = &payload[10..];
                // A peer negotiating on this hash class is about to gain
                // foreign interest: recall our cached fast path for the
                // entry — and surrender parked interest — *before* the
                // reply releases the peer, so a local re-grant can never
                // race the peer's negotiated write. `try_read` keeps the
                // service thread from blocking against a rebuild writer;
                // a rebuild rebuilds the cache away anyway.
                let conflict = {
                    let cf = self.cf.try_read();
                    let mut local = self.local.lock();
                    local.recall_seq += 1;
                    // A request of our own inside the grant window — CF
                    // interest written (or being written) but the grant
                    // not yet in `resources` — is invisible to the
                    // resource scan below. Answering "no conflict" there
                    // would let the peer's negotiated write bypass our
                    // granted lock — both sides exclusive, lost update.
                    // `critical` covers exactly that window (and only it;
                    // a member merely negotiating must not read as a
                    // conflict), so report conflict and make the peer
                    // retry against our settled state instead.
                    let critical_here = match &cf {
                        Some(cf) => {
                            let entry = cf.conn.hash_resource(resource);
                            let state = &mut *local;
                            let critical_here = state.critical.contains_key(&entry);
                            state.cool.insert(entry, RECALL_COOLDOWN);
                            let surrender = match state.entries.get_mut(&entry) {
                                Some(e) => {
                                    if e.cached || e.parked {
                                        self.stats.recalls.incr();
                                    }
                                    e.cached = false;
                                    e.parked
                                        && e.count == 0
                                        && !state.inflight.contains_key(&entry)
                                }
                                None => false,
                            };
                            if surrender {
                                // Release under the local latch: a racing
                                // requester must observe either the parked
                                // entry or the released one, never both.
                                state.entries.remove(&entry);
                                state.parked_live -= 1;
                                let _ = cf.conn.release_lock(entry);
                                if let Some(sec) = &cf.secondary {
                                    let _ = sec.release_lock(entry);
                                }
                            }
                            critical_here
                        }
                        None => {
                            // Rebuild in progress: geometry unknown, so
                            // conservatively drop every cached flag and
                            // treat any grant-window request as a conflict.
                            for e in local.entries.values_mut() {
                                e.cached = false;
                            }
                            !local.critical.is_empty()
                        }
                    };
                    critical_here
                        || local
                            .resources
                            .get(resource)
                            .map(|r| r.conflicts_with_peer(mode))
                            .unwrap_or(false)
                };
                self.stats.queries_served.incr();
                let _ = self.member.send_to(from, &encode_reply(req_id, conflict));
            }
            Some(&MSG_REPLY) if payload.len() >= 10 => {
                let req_id = u64::from_be_bytes(payload[1..9].try_into().unwrap());
                let conflict = payload[9] != 0;
                if let Some(tx) = self.pending.lock().remove(&req_id) {
                    let _ = tx.send(conflict);
                }
            }
            _ => {}
        }
    }

    /// Ask each holder whether it really conflicts on `resource`. Returns
    /// `Ok(true)` when the contention was false (nobody conflicts).
    ///
    /// `ignore` names a failed connector whose retained interest is being
    /// recovered *by the caller* — acting on the dead system's behalf, the
    /// recovery coordinator may pass through its retained locks.
    fn negotiate(
        &self,
        cf: &CfTarget,
        holders: u32,
        resource: &[u8],
        mode: LockMode,
        ignore: Option<ConnId>,
    ) -> DbResult<bool> {
        for holder in conns_in_mask(holders & !cf.conn.conn_id().mask()) {
            if Some(holder) == ignore {
                continue;
            }
            if cf.conn.is_failed_persistent(holder)? {
                // Retained interest of a dead system conflicts until peer
                // recovery completes.
                return Ok(false);
            }
            let req_id = self.next_req.fetch_add(1, Ordering::Relaxed);
            let (tx, rx) = bounded(1);
            self.pending.lock().insert(req_id, tx);
            match self.member.send_to(&Self::member_name(holder), &encode_query(req_id, mode, resource)) {
                Ok(()) => {}
                Err(XcfError::NoSuchMember(_)) => {
                    // Holder vanished between CF response and query: its
                    // interest is going away; treat as conflicting for now
                    // (the caller retries, by which time cleanup is done).
                    self.pending.lock().remove(&req_id);
                    return Ok(false);
                }
                Err(_) => {
                    self.pending.lock().remove(&req_id);
                    return Err(DbError::NegotiationFailed);
                }
            }
            match rx.recv_timeout(self.negotiation_timeout) {
                Ok(true) => return Ok(false),
                Ok(false) => {}
                Err(_) => {
                    self.pending.lock().remove(&req_id);
                    return Ok(false); // unresponsive peer: assume conflict, retry later
                }
            }
        }
        Ok(true)
    }

    /// Request `mode` on `resource` for transaction `txn` without waiting.
    ///
    /// `persistent` records the lock in CF record data (set for update
    /// locks so they are recoverable after a system failure).
    pub fn lock(&self, txn: u64, resource: &[u8], mode: LockMode, persistent: bool) -> DbResult<LockOutcome> {
        self.lock_inner(txn, resource, mode, persistent, None)
    }

    /// [`Irlm::lock`], but negotiation passes through the retained interest
    /// of `recovering` — used only by the peer-recovery coordinator, which
    /// acts on the failed connector's behalf.
    pub fn lock_recover(
        &self,
        txn: u64,
        resource: &[u8],
        mode: LockMode,
        recovering: ConnId,
    ) -> DbResult<LockOutcome> {
        self.lock_inner(txn, resource, mode, false, Some(recovering))
    }

    fn lock_inner(
        &self,
        txn: u64,
        resource: &[u8],
        mode: LockMode,
        persistent: bool,
        ignore: Option<ConnId>,
    ) -> DbResult<LockOutcome> {
        self.stats.requests.incr();
        // Hold the rebuild gate across the whole request: entry indexes
        // are only meaningful against one structure generation.
        let cf = self.cf.read();
        let entry = cf.conn.hash_resource(resource);

        // Phase 1: local table under the latch. A grant is local (no CF
        // command) only when this system *already holds the same resource*
        // in a covering way: negotiation soundness guarantees no foreign
        // system can then hold a conflicting mode on it. Entry-level
        // shortcuts are sound in exactly one case — the `cached` fast
        // path below, where a sole-interest exclusive CF grant proved no
        // foreign interest exists and every foreign acquisition since
        // would have recalled the flag before completing.
        let recall_snapshot;
        {
            let mut local = self.local.lock();
            if let Some(rh) = local.resources.get(resource) {
                if !rh.compatible_for(txn, mode) {
                    self.stats.local_conflicts.incr();
                    return Ok(LockOutcome::Busy);
                }
                let own_exclusive =
                    rh.holders.get(&txn).map(|h| h.mode == LockMode::Exclusive).unwrap_or(false);
                let covered = mode == LockMode::Shared || own_exclusive;
                if covered {
                    self.record_grant(&mut local, txn, resource, entry, mode, persistent);
                    self.stats.grants_local.incr();
                    if persistent {
                        drop(local);
                        cf.conn.write_lock_record(resource, mode, &txn.to_be_bytes())?;
                        cf.mirror_record(resource, mode, txn);
                    }
                    return Ok(LockOutcome::Granted);
                }
            }
            // Local-interest re-grant fast path: the CF hash slot records
            // only this system's (exclusive) interest — new resources,
            // upgrades, and re-acquires of parked locks in the hash class
            // complete with no CF command. Local compatibility was checked
            // above; a resource absent from the local table has no holders.
            if local.entries.get(&entry).is_some_and(|e| e.cached) {
                self.record_grant(&mut local, txn, resource, entry, mode, persistent);
                self.stats.regrants_local.incr();
                cf.conn.subchannel().emit(sysplex_core::trace::TraceEvent::LockLocalRegrant {
                    entry: entry as u64,
                    conn: cf.conn.conn_id().raw(),
                    exclusive: mode == LockMode::Exclusive,
                });
                if persistent {
                    drop(local);
                    cf.conn.write_lock_record(resource, mode, &txn.to_be_bytes())?;
                    cf.mirror_record(resource, mode, txn);
                }
                return Ok(LockOutcome::Granted);
            }
            // Going to the CF: register the entry as in-flight so a
            // concurrent recall cannot surrender retained interest our
            // request may be granted on, and snapshot the recall sequence
            // so a grant only caches when no recall raced it.
            *local.inflight.entry(entry).or_insert(0) += 1;
            recall_snapshot = local.recall_seq;
        }
        let _inflight = InflightGuard { irlm: self, entry };

        // Phase 2: CF command (local latch released — the service thread
        // must be able to answer our peers' queries while we negotiate).
        // Negotiation loop: a successful negotiation is only valid against
        // the holder set it was conducted with. If a *new* holder acquires
        // the entry between the contention response and our interest write
        // (e.g. the old holder released and a third system was granted the
        // freed entry synchronously), the conditional write refuses and we
        // renegotiate against the current holders. Bounded: on a hot entry
        // we eventually report Busy and let the caller's retry loop pace
        // us instead of spinning here.
        let mut renegotiations = 4u32;
        let mut cacheable = false;
        // The grant window — each CF interest write, and a successful
        // write until phase 3 records it — is marked `critical` so the
        // service thread reports conflict for the entry while our grant
        // is invisible to its resource scan. Failed attempts exit the
        // window immediately: negotiation itself must not read as a
        // conflict or a wide member group storms itself into timeouts.
        let mut critical = CriticalGuard::new(self, entry);
        loop {
            critical.enter();
            match cf.conn.request_lock(entry, mode)? {
                LockResponse::Granted => {
                    self.stats.grants_cf_sync.incr();
                    cf.mirror_grant(entry, mode);
                    // A synchronous exclusive grant proves zero foreign
                    // interest in the entry at this instant — the only
                    // state the local fast path may be built on.
                    cacheable = mode == LockMode::Exclusive;
                    break;
                }
                LockResponse::Contention { holders, generation, .. } => {
                    critical.exit();
                    self.stats.contentions.incr();
                    if !self.negotiate(&cf, holders, resource, mode, ignore)? {
                        self.stats.real_conflicts.incr();
                        return Ok(LockOutcome::Busy);
                    }
                    self.stats.false_contentions.incr();
                    cf.conn.subchannel().emit(sysplex_core::trace::TraceEvent::LockFalseContend {
                        entry: entry as u64,
                        holders: holders as u64,
                    });
                    // Quote the contention-time generation: if any holder's
                    // interest departed while we negotiated (it may have
                    // re-acquired — and locally cached — the entry since),
                    // the write refuses and we renegotiate fresh.
                    critical.enter();
                    if cf.conn.force_interest_negotiated(entry, mode, holders, generation)? {
                        cf.mirror_grant(entry, mode);
                        break;
                    }
                    critical.exit();
                    if renegotiations == 0 {
                        return Ok(LockOutcome::Busy);
                    }
                    renegotiations -= 1;
                }
            }
        }

        // Phase 3: re-validate locally and record the grant. The critical
        // marker clears under the same latch acquisition that records the
        // grant: from a peer's perspective the entry goes conflict-by-
        // critical to conflict-by-resource with no observable gap.
        {
            let mut local = self.local.lock();
            if let Some(rh) = local.resources.get(resource) {
                if !rh.compatible_for(txn, mode) {
                    // A sibling transaction on this system won the race.
                    // Our CF interest stays: the sibling's hold needs it,
                    // and the resource scan now covers the entry.
                    critical.exit_in(&mut local);
                    self.stats.local_conflicts.incr();
                    return Ok(LockOutcome::Busy);
                }
            }
            self.record_grant(&mut local, txn, resource, entry, mode, persistent);
            critical.exit_in(&mut local);
            if cacheable && local.recall_seq == recall_snapshot {
                let state = &mut *local;
                // A hash class with recent inter-system interest is not
                // worth caching: parking it would just trigger another
                // recall. Burn one cooldown credit instead.
                let cooling = match state.cool.get_mut(&entry) {
                    Some(n) => {
                        *n -= 1;
                        if *n == 0 {
                            state.cool.remove(&entry);
                        }
                        true
                    }
                    None => false,
                };
                if !cooling {
                    if let Some(e) = state.entries.get_mut(&entry) {
                        e.cached = true;
                    }
                }
            }
        }
        if persistent {
            cf.conn.write_lock_record(resource, mode, &txn.to_be_bytes())?;
            cf.mirror_record(resource, mode, txn);
        }
        Ok(LockOutcome::Granted)
    }

    fn record_grant(
        &self,
        local: &mut LocalState,
        txn: u64,
        resource: &[u8],
        entry: usize,
        mode: LockMode,
        persistent: bool,
    ) {
        let is_new_resource = !local.resources.contains_key(resource);
        let rh = local.resources.entry(resource.to_vec()).or_default();
        let h = rh.holders.entry(txn).or_insert(Holder { mode, persistent });
        // Strengthen, never weaken.
        if mode == LockMode::Exclusive {
            h.mode = LockMode::Exclusive;
        }
        h.persistent |= persistent;
        let state = &mut *local;
        let e = state.entries.entry(entry).or_default();
        if is_new_resource {
            e.count += 1;
        }
        // A parked entry is live again; its FIFO position goes stale and
        // eviction will skip it.
        if e.parked && e.count > 0 {
            e.parked = false;
            state.parked_live -= 1;
        }
    }

    /// Request with retry until `timeout` (the deadlock breaker: waits that
    /// exceed it abort the transaction).
    pub fn lock_wait(
        &self,
        txn: u64,
        resource: &[u8],
        mode: LockMode,
        persistent: bool,
        timeout: Duration,
    ) -> DbResult<()> {
        let clock = Arc::clone(&self.clock.read());
        // Measure with `elapsed()` (the raw time source), not `tod()`: the
        // TOD uniqueness bump inflates under concurrent readers, which would
        // shrink every waiter's timeout exactly when contention is worst.
        let start = clock.elapsed();
        loop {
            match self.lock(txn, resource, mode, persistent)? {
                LockOutcome::Granted => return Ok(()),
                LockOutcome::Busy => {
                    let waited = clock.elapsed().saturating_sub(start);
                    if waited >= timeout {
                        return Err(DbError::LockTimeout { resource: resource.to_vec(), waited });
                    }
                    // Virtual clock: each retry burns 1ms of simulated time,
                    // so the deadlock breaker fires after a bounded number of
                    // deterministic iterations. Wall clock: a short real
                    // sleep, not a yield — IRLM suspends a blocked
                    // requestor. A pure yield-spin lets N waiters starve
                    // the holder on an oversubscribed host: nobody commits
                    // inside anyone's timeout window and a wide member
                    // group livelocks in abort/retry cycles on the hottest
                    // row.
                    clock.park_us(if clock.is_virtual() { 1_000 } else { 200 });
                }
            }
        }
    }

    /// Release `txn`'s hold on `resource`.
    ///
    /// The last local hold on a *cached* entry is released lazily: CF
    /// interest is parked so a re-acquire in the hash class stays a local
    /// re-grant, and the interest is surrendered only on a peer's recall
    /// or FIFO eviction past [`PARK_CAP`].
    pub fn unlock(&self, txn: u64, resource: &[u8]) -> DbResult<()> {
        let cf = self.cf.read();
        let entry = cf.conn.hash_resource(resource);
        let had_record = {
            let mut local = self.local.lock();
            let state = &mut *local;
            let Some(rh) = state.resources.get_mut(resource) else { return Ok(()) };
            let Some(h) = rh.holders.remove(&txn) else { return Ok(()) };
            let had_record = h.persistent;
            let mut parked = false;
            if rh.holders.is_empty() {
                state.resources.remove(resource);
                if let Some(e) = state.entries.get_mut(&entry) {
                    e.count -= 1;
                    if e.count == 0 {
                        // A sibling request in phase 2/3 may already have
                        // written CF interest for this entry that it has
                        // not yet recorded locally; releasing the entry
                        // here would yank that interest out from under the
                        // grant and let a peer acquire a conflicting lock.
                        // Park instead — the recall/eviction machinery
                        // surrenders the interest once nothing is in
                        // flight.
                        if e.cached || state.inflight.contains_key(&entry) {
                            e.parked = true;
                            state.parked_live += 1;
                            state.parked.push_back(entry);
                            parked = true;
                        } else {
                            state.entries.remove(&entry);
                            // Release under the local latch (as surrender
                            // and eviction do): a racing requester must
                            // observe either our live interest or the
                            // released entry — never have its phase-2
                            // interest revoked after the fact.
                            cf.conn.release_lock(entry)?;
                            if let Some(sec) = &cf.secondary {
                                let _ = sec.release_lock(entry);
                            }
                        }
                    }
                }
            }
            if parked {
                self.stats.lazy_releases.incr();
                cf.conn.subchannel().emit(sysplex_core::trace::TraceEvent::LockLazyRelease {
                    entry: entry as u64,
                    conn: cf.conn.conn_id().raw(),
                });
                // Evict FIFO past the cap, skipping stale positions; an
                // in-flight victim rotates to the back. Still under the
                // local latch so eviction cannot race a re-grant.
                let mut budget = state.parked.len();
                while state.parked_live > PARK_CAP && budget > 0 {
                    budget -= 1;
                    let Some(victim) = state.parked.pop_front() else { break };
                    let live =
                        state.entries.get(&victim).is_some_and(|v| v.parked && v.count == 0);
                    if !live {
                        continue;
                    }
                    if state.inflight.contains_key(&victim) {
                        state.parked.push_back(victim);
                        continue;
                    }
                    state.entries.remove(&victim);
                    state.parked_live -= 1;
                    cf.conn.release_lock(victim)?;
                    if let Some(sec) = &cf.secondary {
                        let _ = sec.release_lock(victim);
                    }
                }
            }
            had_record
        };
        if had_record {
            // Another transaction (even on another system) may have its own
            // record for the resource; delete only ours — records are keyed
            // per connector, so this removes exactly this system's record.
            let _ = cf.conn.delete_lock_record(resource);
        }
        cf.mirror_unlock(resource, entry, false, had_record);
        Ok(())
    }

    /// Release everything `txn` holds (commit/abort).
    pub fn unlock_all(&self, txn: u64) -> DbResult<()> {
        let mut resources: Vec<Vec<u8>> = {
            let local = self.local.lock();
            local
                .resources
                .iter()
                .filter(|(_, rh)| rh.holders.contains_key(&txn))
                .map(|(r, _)| r.clone())
                .collect()
        };
        // Release in resource order, not HashMap order: the CF release
        // sequence is trace-visible, and replayable simulation runs must
        // produce it identically.
        resources.sort();
        for r in resources {
            self.unlock(txn, &r)?;
        }
        Ok(())
    }

    /// Resources `txn` currently holds, with modes (diagnostics).
    pub fn held_by(&self, txn: u64) -> Vec<(Vec<u8>, LockMode)> {
        let local = self.local.lock();
        let mut v: Vec<(Vec<u8>, LockMode)> = local
            .resources
            .iter()
            .filter_map(|(r, rh)| rh.holders.get(&txn).map(|h| (r.clone(), h.mode)))
            .collect();
        v.sort();
        v
    }

    /// Strongest local mode on a resource (diagnostics).
    pub fn local_mode(&self, resource: &[u8]) -> Option<LockMode> {
        self.local.lock().resources.get(resource).and_then(|rh| rh.strongest())
    }

    // ----- failure & recovery -----

    /// Mark a peer's connector failed-persistent (called by the recovery
    /// coordinator when the heartbeat declares that system dead).
    pub fn mark_peer_failed(&self, peer: ConnId) -> DbResult<()> {
        let cf = self.cf.read();
        cf.conn.detach_peer(peer, DisconnectMode::Abnormal)?;
        if let Some(sec) = &cf.secondary {
            let _ = sec.detach_peer(peer, DisconnectMode::Abnormal);
        }
        Ok(())
    }

    /// The retained (persistent) locks of a failed connector.
    pub fn retained_locks_of(&self, peer: ConnId) -> DbResult<Vec<RetainedLock>> {
        Ok(self.cf.read().conn.retained_locks_of(peer)?)
    }

    /// Peer recovery finished: free the dead connector's interest/records.
    pub fn complete_peer_recovery(&self, peer: ConnId) -> DbResult<()> {
        let cf = self.cf.read();
        cf.conn.recovery_complete_for(peer)?;
        if let Some(sec) = &cf.secondary {
            let _ = sec.recovery_complete_for(peer);
        }
        Ok(())
    }

    /// Whether structure duplexing is active.
    pub fn is_duplexed(&self) -> bool {
        self.cf.read().secondary.is_some()
    }

    /// Enable system-managed duplexing for a whole group: quiesce, attach
    /// every member to `secondary` (same connector slots; identical
    /// geometry required), replay current interest and records, and mirror
    /// everything from then on.
    pub fn enable_duplexing(
        members: &[Arc<Irlm>],
        secondary: Arc<LockStructure>,
        sub: &CfSubchannel,
    ) -> DbResult<()> {
        let mut guards: Vec<_> = members.iter().map(|m| m.cf.write()).collect();
        if let Some(g) = guards.first() {
            if g.conn.structure().entries() != secondary.entries() {
                return Err(DbError::Cf(sysplex_core::CfError::BadParameter(
                    "duplexing requires identical lock-table geometry",
                )));
            }
        }
        for (member, guard) in members.iter().zip(guards.iter_mut()) {
            let sec = LockConnection::attach_slot(
                &secondary,
                sub.clone().with_system(member.system),
                guard.conn.conn_id(),
            )?;
            let local = member.local.lock();
            // Copy interest in sorted resource order: the mirror writes go
            // through the traced command layer, so replayed runs must issue
            // them in the same sequence.
            let mut resources: Vec<&Vec<u8>> = local.resources.keys().collect();
            resources.sort();
            for resource in resources {
                let rh = &local.resources[resource.as_slice()];
                let Some(mode) = rh.strongest() else { continue };
                let entry = sec.hash_resource(resource);
                sec.force_interest(entry, mode)?;
                let mut txns: Vec<_> = rh.holders.iter().collect();
                txns.sort_by_key(|(t, _)| **t);
                for (txn, h) in txns {
                    if h.persistent {
                        sec.write_lock_record(resource, h.mode, &txn.to_be_bytes())?;
                    }
                }
            }
            drop(local);
            guard.secondary = Some(sec);
        }
        Ok(())
    }

    /// The primary CF is gone: promote the secondary on every member.
    /// Nothing is lost and nothing needs recovery — the §3.3 availability
    /// argument for multiple CFs, in its strongest form.
    pub fn failover_all(members: &[Arc<Irlm>]) -> DbResult<()> {
        let mut guards: Vec<_> = members.iter().map(|m| m.cf.write()).collect();
        for guard in guards.iter_mut() {
            let Some(sec) = guard.secondary.take() else {
                return Err(DbError::Cf(sysplex_core::CfError::WrongModel));
            };
            guard.conn = sec;
        }
        Ok(())
    }

    /// Rebuild the lock space of a whole data-sharing group into a fresh
    /// structure (typically on another CF — planned CF maintenance or CF
    /// failure, §3.3: "Multiple CF's can be connected for availability").
    ///
    /// Protocol: every member's rebuild gate is taken (quiescing all CF
    /// lock traffic group-wide), then each member re-creates its interest
    /// and persistent records in the new structure *from its local tables*
    /// — the same in-storage-rebuild the real XES performs — keeping its
    /// connector slot so peer addressing is unchanged. Members with
    /// failed-persistent state must be recovered before rebuilding.
    pub fn rebuild_all(members: &[Arc<Irlm>], new: Arc<LockStructure>, sub: &CfSubchannel) -> DbResult<()> {
        // Quiesce the whole group before any member swaps: lock spaces of
        // different generations must never coexist.
        let mut guards: Vec<_> = members.iter().map(|m| m.cf.write()).collect();
        for (member, guard) in members.iter().zip(guards.iter_mut()) {
            let new_conn = LockConnection::attach_slot(&new, sub.clone(), guard.conn.conn_id())?;
            let mut local = member.local.lock();
            let mut new_entries: HashMap<usize, EntryInterest> = HashMap::new();
            // Repopulate in sorted order so the new structure's command
            // stream (and record layout) is identical on every replay.
            let mut resources: Vec<&Vec<u8>> = local.resources.keys().collect();
            resources.sort();
            for resource in resources {
                let rh = &local.resources[resource.as_slice()];
                let Some(mode) = rh.strongest() else { continue };
                let entry = new_conn.hash_resource(resource);
                new_conn.force_interest(entry, mode)?;
                new_entries.entry(entry).or_default().count += 1;
                let mut txns: Vec<(&u64, &Holder)> = rh.holders.iter().collect();
                txns.sort_by_key(|(t, _)| **t);
                for (txn, h) in txns {
                    if h.persistent {
                        new_conn.write_lock_record(resource, h.mode, &txn.to_be_bytes())?;
                    }
                }
            }
            // Fresh entries carry no cached flags (foreign interest is
            // re-imported unconditionally, so no sole-interest proof
            // exists) and parked interest is simply not re-created — the
            // old structure's Normal detach below surrenders it.
            local.entries = new_entries;
            local.parked.clear();
            local.parked_live = 0;
            // Cooldown indexes are against the old geometry.
            local.cool.clear();
            drop(local);
            // The old structure (or its CF) may already be gone. A rebuild
            // re-simplexes: re-enable duplexing afterwards if desired.
            let _ = guard.conn.detach(DisconnectMode::Normal);
            guard.conn = new_conn;
            guard.secondary = None;
        }
        Ok(())
    }

    /// Grow (or shrink) the lock table online: rebuild the whole group
    /// into `new` — the same §3.3 quiesced-rebuild machinery; every live
    /// resource is rehashed against the new geometry — and emit the
    /// table-resize trace event once the swap completes. Held locks and
    /// persistent records carry over exactly; parked (lazily released)
    /// interest is deliberately not re-created.
    pub fn resize_all(members: &[Arc<Irlm>], new: Arc<LockStructure>, sub: &CfSubchannel) -> DbResult<()> {
        let from = members.first().map(|m| m.structure().entries()).unwrap_or(0);
        let to = new.entries();
        Self::rebuild_all(members, new, sub)?;
        sub.emit(sysplex_core::trace::TraceEvent::LockTableResize {
            from_entries: from as u64,
            to_entries: to as u64,
        });
        Ok(())
    }

    /// Orderly shutdown: stop the service thread, leave the group,
    /// disconnect from the structure.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.service.lock().take() {
            let _ = h.join();
        }
        let _ = self.member.leave();
        let cf = self.cf.read();
        let _ = cf.conn.detach(DisconnectMode::Normal);
    }

    /// Abandon the instance as a failed system would: stop the service
    /// thread *without* cleaning up CF state — the structure keeps this
    /// connector's interest until [`Irlm::mark_peer_failed`] /
    /// [`Irlm::complete_peer_recovery`] run on a survivor.
    pub fn crash(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.service.lock().take() {
            let _ = h.join();
        }
    }
}

/// Adaptive lock-table sizing policy (§3.3.1 / experiment E10): watch the
/// observed false-contention rate per interval and recommend growing the
/// table while the rate stays above threshold. The caller owns *when* to
/// observe (per RMF interval, per N operations, …) and *how* to execute
/// the grow ([`Irlm::resize_all`] / `DataSharingGroup::resize_lock_table`).
#[derive(Debug, Clone)]
pub struct LockResizePolicy {
    /// Grow when an interval's false contentions exceed this fraction of
    /// its lock requests (e.g. `0.01` for the 1% target).
    pub threshold: f64,
    /// Never recommend a table larger than this.
    pub max_entries: usize,
    /// Ignore intervals with fewer requests than this — too little signal.
    pub min_interval_requests: u64,
    last_requests: u64,
    last_false: u64,
}

impl LockResizePolicy {
    /// Policy with the given threshold fraction and size ceiling.
    pub fn new(threshold: f64, max_entries: usize) -> Self {
        LockResizePolicy {
            threshold,
            max_entries,
            min_interval_requests: 256,
            last_requests: 0,
            last_false: 0,
        }
    }

    /// Feed the *cumulative* request / false-contention counters (e.g.
    /// [`IrlmStats`] sums across a group) plus the current table size.
    /// Returns `Some(new_entries)` when the interval since the previous
    /// call ran hot enough to justify doubling the table.
    pub fn observe(
        &mut self,
        requests: u64,
        false_contentions: u64,
        current_entries: usize,
    ) -> Option<usize> {
        let dr = requests.saturating_sub(self.last_requests);
        let df = false_contentions.saturating_sub(self.last_false);
        self.last_requests = requests;
        self.last_false = false_contentions;
        if dr < self.min_interval_requests || current_entries >= self.max_entries {
            return None;
        }
        if df as f64 / dr as f64 > self.threshold {
            Some((current_entries.saturating_mul(2)).min(self.max_entries))
        } else {
            None
        }
    }
}

impl std::fmt::Debug for Irlm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Irlm").field("system", &self.system).field("conn", &self.conn()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysplex_core::facility::{CfConfig, CouplingFacility};
    use sysplex_core::lock::LockParams;
    use sysplex_services::timer::SysplexTimer;

    struct Rig {
        irlms: Vec<Arc<Irlm>>,
        #[allow(dead_code)]
        cf: Arc<CouplingFacility>,
        #[allow(dead_code)]
        xcf: Arc<Xcf>,
    }

    impl Drop for Rig {
        fn drop(&mut self) {
            for i in &self.irlms {
                i.shutdown();
            }
        }
    }

    fn rig(n: usize, entries: usize) -> Rig {
        let xcf = Xcf::new(SysplexTimer::new());
        let cf = CouplingFacility::new(CfConfig::named("CF01"));
        cf.allocate_lock_structure("IRLMLOCK1", LockParams::with_entries(entries)).unwrap();
        let irlms = (0..n)
            .map(|i| {
                let conn = cf.connect_lock("IRLMLOCK1").unwrap();
                Irlm::start(SystemId::new(i as u8), conn, &xcf).unwrap()
            })
            .collect();
        Rig { irlms, cf, xcf }
    }

    #[test]
    fn uncontended_exclusive_is_cf_synchronous() {
        let r = rig(2, 1024);
        let a = &r.irlms[0];
        assert_eq!(a.lock(1, b"ROW.1", LockMode::Exclusive, false).unwrap(), LockOutcome::Granted);
        assert_eq!(a.stats.grants_cf_sync.get(), 1);
        assert_eq!(a.stats.contentions.get(), 0);
    }

    #[test]
    fn second_lock_in_same_hash_class_is_local() {
        let r = rig(1, 1024);
        let a = &r.irlms[0];
        a.lock(1, b"ROW.1", LockMode::Exclusive, false).unwrap();
        // Different txn, different resource — but covering CF interest
        // exists only if the hash classes collide; force same resource
        // to exercise the local path with a shared re-grant by same txn.
        assert_eq!(a.lock(1, b"ROW.1", LockMode::Shared, false).unwrap(), LockOutcome::Granted);
        assert_eq!(a.stats.grants_local.get(), 1, "covered by existing interest: no CF command");
    }

    #[test]
    fn real_conflict_across_systems_is_busy_and_resolves_on_release() {
        let r = rig(2, 1024);
        let (a, b) = (&r.irlms[0], &r.irlms[1]);
        a.lock(1, b"ROW.7", LockMode::Exclusive, false).unwrap();
        assert_eq!(b.lock(2, b"ROW.7", LockMode::Exclusive, false).unwrap(), LockOutcome::Busy);
        assert_eq!(b.stats.real_conflicts.get(), 1);
        a.unlock(1, b"ROW.7").unwrap();
        assert_eq!(b.lock(2, b"ROW.7", LockMode::Exclusive, false).unwrap(), LockOutcome::Granted);
    }

    #[test]
    fn shared_locks_coexist_across_systems() {
        let r = rig(3, 1024);
        for (i, irlm) in r.irlms.iter().enumerate() {
            assert_eq!(
                irlm.lock(i as u64 + 1, b"ROW.42", LockMode::Shared, false).unwrap(),
                LockOutcome::Granted,
                "system {i}"
            );
        }
    }

    #[test]
    fn false_contention_detected_and_granted() {
        // One lock table entry: every resource collides.
        let r = rig(2, 1);
        let (a, b) = (&r.irlms[0], &r.irlms[1]);
        a.lock(1, b"ROW.A", LockMode::Exclusive, false).unwrap();
        // Different resource, same (only) entry: CF sees contention, but
        // negotiation discovers a lives on ROW.A — false contention.
        assert_eq!(b.lock(2, b"ROW.B", LockMode::Exclusive, false).unwrap(), LockOutcome::Granted);
        assert_eq!(b.stats.contentions.get(), 1);
        assert_eq!(b.stats.false_contentions.get(), 1);
        assert_eq!(b.stats.real_conflicts.get(), 0);
        assert_eq!(a.stats.queries_served.get(), 1, "peer answered the negotiation query");
        // And a real conflict on the same entry still caught.
        assert_eq!(b.lock(2, b"ROW.A", LockMode::Exclusive, false).unwrap(), LockOutcome::Busy);
    }

    #[test]
    fn local_conflict_detected_without_cf() {
        let r = rig(1, 1024);
        let a = &r.irlms[0];
        a.lock(1, b"ROW.5", LockMode::Exclusive, false).unwrap();
        let before = a.stats.contentions.get();
        assert_eq!(a.lock(2, b"ROW.5", LockMode::Shared, false).unwrap(), LockOutcome::Busy);
        assert_eq!(a.stats.local_conflicts.get(), 1);
        assert_eq!(a.stats.contentions.get(), before, "no CF contention for a local conflict");
    }

    #[test]
    fn upgrade_shared_to_exclusive() {
        let r = rig(2, 1024);
        let (a, b) = (&r.irlms[0], &r.irlms[1]);
        a.lock(1, b"ROW.9", LockMode::Shared, false).unwrap();
        b.lock(2, b"ROW.9", LockMode::Shared, false).unwrap();
        // Upgrade blocked by b's shared hold.
        assert_eq!(a.lock(1, b"ROW.9", LockMode::Exclusive, false).unwrap(), LockOutcome::Busy);
        b.unlock(2, b"ROW.9").unwrap();
        assert_eq!(a.lock(1, b"ROW.9", LockMode::Exclusive, false).unwrap(), LockOutcome::Granted);
        assert_eq!(a.local_mode(b"ROW.9"), Some(LockMode::Exclusive));
    }

    #[test]
    fn lock_wait_times_out_on_real_conflict() {
        let r = rig(2, 1024);
        let (a, b) = (&r.irlms[0], &r.irlms[1]);
        a.lock(1, b"ROW.1", LockMode::Exclusive, false).unwrap();
        let err =
            b.lock_wait(2, b"ROW.1", LockMode::Exclusive, false, Duration::from_millis(30)).unwrap_err();
        assert!(matches!(err, DbError::LockTimeout { .. }));
    }

    #[test]
    fn unlock_all_releases_everything() {
        let r = rig(2, 1024);
        let (a, b) = (&r.irlms[0], &r.irlms[1]);
        for k in 0..10u64 {
            a.lock(1, format!("ROW.{k}").as_bytes(), LockMode::Exclusive, false).unwrap();
        }
        assert_eq!(a.held_by(1).len(), 10);
        a.unlock_all(1).unwrap();
        assert!(a.held_by(1).is_empty());
        for k in 0..10u64 {
            assert_eq!(
                b.lock(2, format!("ROW.{k}").as_bytes(), LockMode::Exclusive, false).unwrap(),
                LockOutcome::Granted
            );
        }
    }

    #[test]
    fn persistent_locks_are_retained_after_crash() {
        let r = rig(2, 1024);
        let (a, b) = (&r.irlms[0], &r.irlms[1]);
        a.lock(77, b"ROW.PAY", LockMode::Exclusive, true).unwrap();
        a.crash();
        b.mark_peer_failed(a.conn()).unwrap();
        // Survivor sees the retained lock and who held it.
        let retained = b.retained_locks_of(a.conn()).unwrap();
        assert_eq!(retained.len(), 1);
        assert_eq!(retained[0].resource, b"ROW.PAY");
        assert_eq!(retained[0].payload, 77u64.to_be_bytes());
        // The resource is still protected until recovery completes.
        assert_eq!(b.lock(2, b"ROW.PAY", LockMode::Exclusive, false).unwrap(), LockOutcome::Busy);
        b.complete_peer_recovery(a.conn()).unwrap();
        assert_eq!(b.lock(2, b"ROW.PAY", LockMode::Exclusive, false).unwrap(), LockOutcome::Granted);
    }

    #[test]
    fn nonpersistent_locks_vanish_with_normal_shutdown() {
        let r = rig(2, 1024);
        let (a, b) = (&r.irlms[0], &r.irlms[1]);
        a.lock(1, b"ROW.X", LockMode::Exclusive, false).unwrap();
        a.shutdown();
        assert_eq!(b.lock(2, b"ROW.X", LockMode::Exclusive, false).unwrap(), LockOutcome::Granted);
    }

    #[test]
    fn regrant_fast_path_skips_cf_commands() {
        let r = rig(1, 1024);
        let a = &r.irlms[0];
        a.lock(1, b"ROW.1", LockMode::Exclusive, false).unwrap();
        assert_eq!(a.stats.grants_cf_sync.get(), 1);
        // Last hold drops: CF interest is parked, not released.
        a.unlock(1, b"ROW.1").unwrap();
        assert_eq!(a.stats.lazy_releases.get(), 1);
        assert_eq!(a.structure().interest_count(a.conn()), 1, "interest retained at the CF");
        // Re-acquire (different txn): served from the cached sole-interest
        // grant — no CF command of any kind.
        assert_eq!(a.lock(2, b"ROW.1", LockMode::Exclusive, false).unwrap(), LockOutcome::Granted);
        assert_eq!(a.stats.regrants_local.get(), 1);
        assert_eq!(a.stats.grants_cf_sync.get(), 1, "no second CF grant");
        // A new resource in the same hash class also rides the fast path.
        let colliding = (0..10_000u32)
            .map(|i| format!("ROW.C{i}").into_bytes())
            .find(|n| {
                n != b"ROW.1"
                    && a.structure().hash_resource(n) == a.structure().hash_resource(b"ROW.1")
            })
            .expect("some resource collides");
        assert_eq!(a.lock(2, &colliding, LockMode::Exclusive, false).unwrap(), LockOutcome::Granted);
        assert_eq!(a.stats.regrants_local.get(), 2);
    }

    #[test]
    fn recall_surrenders_parked_interest() {
        let r = rig(2, 1);
        let (a, b) = (&r.irlms[0], &r.irlms[1]);
        a.lock(1, b"ROW.A", LockMode::Exclusive, false).unwrap();
        a.unlock(1, b"ROW.A").unwrap();
        assert_eq!(a.stats.lazy_releases.get(), 1);
        assert_eq!(a.structure().interest_count(a.conn()), 1);
        // b's negotiation recalls a's parked interest; the surrender (and
        // the generation bump it causes) forces b through one renegotiation
        // and it lands a clean synchronous grant on the emptied entry.
        assert_eq!(b.lock(2, b"ROW.B", LockMode::Exclusive, false).unwrap(), LockOutcome::Granted);
        assert_eq!(a.stats.recalls.get(), 1);
        assert_eq!(a.structure().interest_count(a.conn()), 0, "parked interest surrendered");
    }

    #[test]
    fn exclusivity_holds_through_regrants_after_recall() {
        let r = rig(2, 1);
        let (a, b) = (&r.irlms[0], &r.irlms[1]);
        a.lock(1, b"ROW.A", LockMode::Exclusive, false).unwrap();
        a.unlock(1, b"ROW.A").unwrap();
        // b takes the very resource a had parked. The recall surrendered
        // a's interest, so a's next request must go to the CF and lose.
        assert_eq!(b.lock(2, b"ROW.A", LockMode::Exclusive, false).unwrap(), LockOutcome::Granted);
        assert_eq!(a.lock(3, b"ROW.A", LockMode::Exclusive, false).unwrap(), LockOutcome::Busy);
        assert_eq!(a.stats.regrants_local.get(), 0, "fast path never fired after the recall");
    }

    #[test]
    fn persistent_regrant_stays_recoverable_after_crash() {
        let r = rig(2, 1024);
        let (a, b) = (&r.irlms[0], &r.irlms[1]);
        a.lock(1, b"ROW.P", LockMode::Exclusive, true).unwrap();
        a.unlock(1, b"ROW.P").unwrap();
        // Fast-path re-grant of a persistent lock must still write the CF
        // record — the cached grant is worthless if a fenced holder's
        // locks can't be reconstructed by survivors.
        assert_eq!(a.lock(2, b"ROW.P", LockMode::Exclusive, true).unwrap(), LockOutcome::Granted);
        assert_eq!(a.stats.regrants_local.get(), 1);
        a.crash();
        b.mark_peer_failed(a.conn()).unwrap();
        let retained = b.retained_locks_of(a.conn()).unwrap();
        assert_eq!(retained.len(), 1);
        assert_eq!(retained[0].resource, b"ROW.P");
        assert_eq!(retained[0].payload, 2u64.to_be_bytes());
        assert_eq!(b.lock(9, b"ROW.P", LockMode::Exclusive, false).unwrap(), LockOutcome::Busy);
        b.complete_peer_recovery(a.conn()).unwrap();
        assert_eq!(b.lock(9, b"ROW.P", LockMode::Exclusive, false).unwrap(), LockOutcome::Granted);
    }

    #[test]
    fn park_cap_evicts_fifo_and_bounds_retained_interest() {
        let r = rig(1, 4096);
        let a = &r.irlms[0];
        let n = PARK_CAP + 100;
        for k in 0..n {
            let resource = format!("ROW.{k:05}").into_bytes();
            a.lock(k as u64, &resource, LockMode::Exclusive, false).unwrap();
            a.unlock(k as u64, &resource).unwrap();
        }
        assert_eq!(a.stats.lazy_releases.get(), n as u64);
        assert!(
            a.structure().interest_count(a.conn()) <= PARK_CAP,
            "eviction keeps parked interest under the cap, got {}",
            a.structure().interest_count(a.conn())
        );
    }

    #[test]
    fn concurrent_increments_under_locks_are_serialized() {
        let r = rig(4, 64);
        // A racy read-yield-write cell: correct final count only if the
        // IRLM exclusive lock actually serializes the critical sections.
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for (i, irlm) in r.irlms.iter().enumerate() {
            let irlm = Arc::clone(irlm);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for t in 0..50u64 {
                    let txn = (i as u64) << 32 | t;
                    irlm.lock_wait(txn, b"COUNTER", LockMode::Exclusive, false, Duration::from_secs(10))
                        .unwrap();
                    let v = counter.load(Ordering::Relaxed);
                    std::thread::yield_now();
                    counter.store(v + 1, Ordering::Relaxed);
                    irlm.unlock(txn, b"COUNTER").unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }
}
