//! The shared database on DASD: pages of keyed records.
//!
//! A [`PageStore`] maps a key space onto fixed page slots of a shared
//! volume ("the disks are fully connected to all processors", §3.1). The
//! page image is the unit of caching, coherency and castout; records are
//! the unit of locking.

use crate::error::{DbError, DbResult};
use std::sync::Arc;
use sysplex_core::cache::BlockName;
use sysplex_dasd::farm::DasdFarm;

/// A decoded page: a small sorted set of records.
///
/// A page image must fit a DASD block
/// ([`sysplex_dasd::volume::BLOCK_SIZE`], 4 KiB) by castout time; size
/// your key-space (`GroupConfig::pages`) so records per page stay small,
/// as a real 4K-page database would.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Page {
    records: Vec<(u64, Vec<u8>)>,
}

impl Page {
    /// Empty page.
    pub fn new() -> Self {
        Page::default()
    }

    /// Decode a page image. An empty image is an empty page.
    pub fn decode(data: &[u8], page_no: u64) -> DbResult<Self> {
        if data.is_empty() {
            return Ok(Page::new());
        }
        let corrupt = || DbError::PageCorrupt(page_no);
        if data.len() < 4 {
            return Err(corrupt());
        }
        let count = u32::from_be_bytes(data[0..4].try_into().unwrap()) as usize;
        let mut records = Vec::with_capacity(count);
        let mut off = 4;
        for _ in 0..count {
            if data.len() < off + 12 {
                return Err(corrupt());
            }
            let key = u64::from_be_bytes(data[off..off + 8].try_into().unwrap());
            let len = u32::from_be_bytes(data[off + 8..off + 12].try_into().unwrap()) as usize;
            off += 12;
            if data.len() < off + len {
                return Err(corrupt());
            }
            records.push((key, data[off..off + len].to_vec()));
            off += len;
        }
        Ok(Page { records })
    }

    /// Encode to a page image.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&(self.records.len() as u32).to_be_bytes());
        for (key, val) in &self.records {
            out.extend_from_slice(&key.to_be_bytes());
            out.extend_from_slice(&(val.len() as u32).to_be_bytes());
            out.extend_from_slice(val);
        }
        out
    }

    /// Read a record.
    pub fn get(&self, key: u64) -> Option<&[u8]> {
        self.records.binary_search_by_key(&key, |(k, _)| *k).ok().map(|i| self.records[i].1.as_slice())
    }

    /// Insert or replace a record, returning the previous value.
    pub fn set(&mut self, key: u64, value: &[u8]) -> Option<Vec<u8>> {
        match self.records.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(i) => Some(std::mem::replace(&mut self.records[i].1, value.to_vec())),
            Err(i) => {
                self.records.insert(i, (key, value.to_vec()));
                None
            }
        }
    }

    /// Remove a record, returning its value.
    pub fn remove(&mut self, key: u64) -> Option<Vec<u8>> {
        match self.records.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(i) => Some(self.records.remove(i).1),
            Err(_) => None,
        }
    }

    /// Number of records on the page.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the page holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterate records in key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[u8])> {
        self.records.iter().map(|(k, v)| (*k, v.as_slice()))
    }
}

/// The shared page store: a database id plus a DASD volume.
#[derive(Debug)]
pub struct PageStore {
    farm: Arc<DasdFarm>,
    volume: String,
    db_id: u32,
    pages: u64,
}

impl PageStore {
    /// Create the store over an existing farm volume.
    pub fn new(farm: Arc<DasdFarm>, volume: &str, db_id: u32, pages: u64) -> Arc<Self> {
        Arc::new(PageStore { farm, volume: volume.to_string(), db_id, pages })
    }

    /// Number of page slots.
    pub fn page_count(&self) -> u64 {
        self.pages
    }

    /// The database id (used in block names).
    pub fn db_id(&self) -> u32 {
        self.db_id
    }

    /// The page a key lives on.
    pub fn page_of(&self, key: u64) -> u64 {
        key % self.pages
    }

    /// Cache-structure block name of a page.
    pub fn block_name(&self, page: u64) -> BlockName {
        BlockName::from_parts(self.db_id, page)
    }

    /// Recover the page number from a block name (castout addressing).
    pub fn page_of_block(&self, name: &BlockName) -> Option<u64> {
        let b = name.as_bytes();
        let db = u32::from_be_bytes(b[0..4].try_into().unwrap());
        if db != self.db_id {
            return None;
        }
        Some(u64::from_be_bytes(b[4..12].try_into().unwrap()))
    }

    /// Read a page image from DASD as `system`.
    pub fn read_image(&self, system: u8, page: u64) -> DbResult<Vec<u8>> {
        Ok(self.farm.read(system, &self.volume, page)?)
    }

    /// Read and decode a page as `system`.
    pub fn read_page(&self, system: u8, page: u64) -> DbResult<Page> {
        Page::decode(&self.read_image(system, page)?, page)
    }

    /// Write a page image to DASD as `system` (castout destination).
    pub fn write_image(&self, system: u8, page: u64, image: &[u8]) -> DbResult<()> {
        Ok(self.farm.write(system, &self.volume, page, image)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysplex_dasd::volume::IoModel;

    fn store() -> Arc<PageStore> {
        let farm = DasdFarm::new(IoModel::instant());
        farm.add_volume("DB0001", 64, 4).unwrap();
        PageStore::new(farm, "DB0001", 1, 64)
    }

    #[test]
    fn page_encode_decode_roundtrip() {
        let mut p = Page::new();
        p.set(10, b"ten");
        p.set(2, b"two");
        p.set(7, &[]);
        let decoded = Page::decode(&p.encode(), 0).unwrap();
        assert_eq!(decoded, p);
        assert_eq!(decoded.get(2).unwrap(), b"two");
        assert_eq!(decoded.get(7).unwrap(), b"");
        assert_eq!(decoded.get(11), None);
        assert_eq!(decoded.iter().map(|(k, _)| k).collect::<Vec<_>>(), vec![2, 7, 10]);
    }

    #[test]
    fn page_set_replaces_and_returns_old() {
        let mut p = Page::new();
        assert_eq!(p.set(1, b"a"), None);
        assert_eq!(p.set(1, b"b").unwrap(), b"a");
        assert_eq!(p.get(1).unwrap(), b"b");
        assert_eq!(p.remove(1).unwrap(), b"b");
        assert!(p.is_empty());
        assert_eq!(p.remove(1), None);
    }

    #[test]
    fn corrupt_pages_detected() {
        assert!(matches!(Page::decode(&[1, 2], 9), Err(DbError::PageCorrupt(9))));
        // Count says 1 record but no record bytes follow.
        assert!(matches!(Page::decode(&1u32.to_be_bytes(), 3), Err(DbError::PageCorrupt(3))));
        assert_eq!(Page::decode(&[], 0).unwrap(), Page::new());
    }

    #[test]
    fn store_roundtrip_and_key_mapping() {
        let s = store();
        assert_eq!(s.page_of(65), 1);
        let mut p = Page::new();
        p.set(65, b"row-65");
        s.write_image(0, 1, &p.encode()).unwrap();
        let back = s.read_page(3, 1).unwrap();
        assert_eq!(back.get(65).unwrap(), b"row-65", "visible from any system");
        assert_eq!(s.read_page(0, 2).unwrap(), Page::new(), "untouched page is empty");
    }

    #[test]
    fn block_names_roundtrip() {
        let s = store();
        let name = s.block_name(42);
        assert_eq!(s.page_of_block(&name), Some(42));
        let other = BlockName::from_parts(99, 42);
        assert_eq!(s.page_of_block(&other), None, "foreign database ids rejected");
    }
}
