//! Peer recovery — §2.5's continuous-availability mechanics.
//!
//! "Peer instances of a failing subsystem(s) executing on remaining
//! healthy systems can take over recovery responsibility for resources
//! held by the failing instance." Concretely, when a system dies
//! mid-transaction:
//!
//! 1. Its lock-structure connector is marked **failed persistent**: every
//!    lock it held keeps blocking normal traffic, so nobody can see
//!    uncommitted data.
//! 2. A surviving system reads the dead member's log from shared DASD and
//!    splits its transactions into committed / aborted / in-flight.
//! 3. In-flight updates are **backed out** in reverse order: for each, the
//!    survivor takes the page P-lock *overriding only the dead member's
//!    retained interest* (it acts on the dead member's behalf), restores
//!    the before-image when the update had reached shared storage, and
//!    re-externalises the page.
//! 4. The dead connector's retained locks and records are released; the
//!    group buffer's orphaned changed pages are cast out by the survivor.
//!
//! From the outside, data the failed system was *not* touching stayed
//! available throughout; data it was touching becomes available the moment
//! backout completes.

use crate::database::{page_resource, Database};
use crate::error::{DbError, DbResult};
use crate::irlm::LockOutcome;
use crate::log::{LogManager, LogRecord};
use std::sync::Arc;
use std::time::Duration;
use sysplex_core::cache::CacheStructure;
use sysplex_core::lock::LockMode;
use sysplex_core::{CfError, ConnId};
use sysplex_dasd::farm::DasdFarm;

/// What peer recovery accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// In-flight transactions backed out.
    pub backed_out_txns: usize,
    /// Record updates undone (those that had reached shared storage).
    pub undone_updates: usize,
    /// Retained locks released at completion.
    pub retained_released: usize,
    /// Orphaned changed pages cast out to DASD.
    pub pages_cast_out: usize,
}

/// Identity of a failed member, as the recovery coordinator needs it.
#[derive(Debug, Clone)]
pub struct FailedMember {
    /// The dead member's lock-structure connector.
    pub lock_conn: ConnId,
    /// The dead member's cache-structure connector.
    pub cache_conn: ConnId,
    /// The dead member's log volume.
    pub log_volume: String,
}

/// Run peer recovery for `failed` on the `survivor` instance.
pub fn recover_peer(
    survivor: &Database,
    farm: &Arc<DasdFarm>,
    cache: &Arc<CacheStructure>,
    failed: &FailedMember,
) -> DbResult<RecoveryReport> {
    let irlm = survivor.irlm();

    // 1. Freeze the dead member's footprint (idempotent: the coordinator
    //    may run after a partial earlier attempt).
    match irlm.mark_peer_failed(failed.lock_conn) {
        Ok(()) | Err(DbError::Cf(CfError::BadConnector)) => {}
        Err(e) => return Err(e),
    }
    match cache.disconnect_by_id(failed.cache_conn) {
        Ok(()) | Err(CfError::BadConnector) => {}
        Err(e) => return Err(e.into()),
    }

    // 2. Read and analyze the dead member's log.
    let records = LogManager::read_log(survivor.system().0, farm, &failed.log_volume)?;
    let (_committed, _aborted, inflight) = LogManager::analyze(&records);

    // 3. Back out in-flight updates, newest first.
    let rtxn = survivor.begin().id();
    let mut undone = 0;
    let mut backed_out: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for rec in records.iter().rev() {
        let LogRecord::Update { txn, page, key, before, after, .. } = rec else { continue };
        if !inflight.contains(txn) {
            continue;
        }
        backed_out.insert(*txn);
        let plock = page_resource(survivor.store().db_id(), *page);
        lock_recover_wait(survivor, rtxn, &plock, failed.lock_conn, Duration::from_secs(10))?;
        let result = (|| -> DbResult<bool> {
            let mut image = survivor.buffers().get_page(*page)?;
            let current = image.get(*key).map(|v| v.to_vec());
            if current != *after {
                // The update never reached shared storage (crash before
                // externalisation): nothing to undo.
                return Ok(false);
            }
            match before {
                Some(v) => {
                    image.set(*key, v);
                }
                None => {
                    image.remove(*key);
                }
            }
            survivor.buffers().put_page(*page, &image)?;
            Ok(true)
        })();
        irlm.unlock(rtxn, &plock)?;
        if result? {
            undone += 1;
        }
    }
    irlm.unlock_all(rtxn)?;

    // 4. Release the retained locks and drain orphaned changed pages.
    let retained = irlm.retained_locks_of(failed.lock_conn)?.len();
    irlm.complete_peer_recovery(failed.lock_conn)?;
    let pages_cast_out = survivor.buffers().castout(usize::MAX >> 1)?;

    Ok(RecoveryReport {
        backed_out_txns: backed_out.len(),
        undone_updates: undone,
        retained_released: retained,
        pages_cast_out,
    })
}

fn lock_recover_wait(
    survivor: &Database,
    txn: u64,
    resource: &[u8],
    recovering: ConnId,
    timeout: Duration,
) -> DbResult<()> {
    // Clocked by the survivor's Sysplex Timer so the recovery deadlock
    // breaker works under both wall and simulated (virtual) time. Measured
    // with `elapsed()` (raw source) — the TOD uniqueness bump inflates
    // under concurrent readers.
    let clock = survivor.timer();
    let start = clock.elapsed();
    loop {
        match survivor.irlm().lock_recover(txn, resource, LockMode::Exclusive, recovering)? {
            LockOutcome::Granted => return Ok(()),
            LockOutcome::Busy => {
                let waited = clock.elapsed().saturating_sub(start);
                if waited >= timeout {
                    return Err(DbError::LockTimeout { resource: resource.to_vec(), waited });
                }
                clock.park_us(if clock.is_virtual() { 1_000 } else { 0 });
            }
        }
    }
}
