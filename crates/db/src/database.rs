//! The transactional record interface — Figure 2 made executable.
//!
//! One [`Database`] instance runs per system; all instances share the page
//! store (DASD), the group buffer (CF cache structure) and the global lock
//! space (CF lock structure via the IRLM). The protocol per transaction:
//!
//! * **Read** — take a Shared record *L-lock*, then read the page through
//!   the coherent buffer pool. No P-lock: the page image is fetched
//!   atomically and the locked record cannot change under us.
//! * **Write** — take an Exclusive, *persistent* L-lock (recorded in CF
//!   record data for recoverability), capture the before-image, and stage
//!   the change in the transaction's private workspace.
//! * **Commit** — force the undo/redo log (WAL), then externalise each
//!   touched page under a short page *P-lock* (read-merge-write against
//!   concurrent updates of *other* records on the same page, exactly DB2's
//!   data-sharing page physical locks), force the commit record, release
//!   all locks.
//! * **Abort** — discard the workspace and release locks; nothing was
//!   externalised, so no undo is needed. Undo *is* needed when a whole
//!   system dies mid-commit — that is [`crate::recovery`]'s job, using the
//!   log and the CF's retained locks.

use crate::bufmgr::BufferManager;
use crate::error::{DbError, DbResult};
use crate::irlm::Irlm;
use crate::log::{LogManager, LogRecord};
use crate::pagestore::PageStore;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use sysplex_core::lock::LockMode;
use sysplex_core::stats::Counter;
use sysplex_core::SystemId;
use sysplex_services::timer::SysplexTimer;

/// Per-database tuning.
#[derive(Debug, Clone, Copy)]
pub struct DbConfig {
    /// Deadlock breaker: max wait for any lock.
    pub lock_timeout: Duration,
    /// Local buffer pool frames.
    pub buffer_frames: usize,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig { lock_timeout: Duration::from_secs(5), buffer_frames: 256 }
    }
}

/// Counters published by a database instance.
#[derive(Debug, Default)]
pub struct DbStats {
    /// Record reads.
    pub reads: Counter,
    /// Record writes (staged).
    pub writes: Counter,
    /// Commits.
    pub commits: Counter,
    /// Aborts.
    pub aborts: Counter,
}

#[derive(Debug, Clone)]
struct StagedWrite {
    page: u64,
    before: Option<Vec<u8>>,
    after: Option<Vec<u8>>,
}

/// An open transaction. Obtain with [`Database::begin`]; must end with
/// [`Database::commit`] or [`Database::abort`].
#[derive(Debug)]
pub struct Txn {
    id: u64,
    complete: bool,
    /// key -> staged change (latest wins; before-image from first touch).
    writes: HashMap<u64, StagedWrite>,
}

impl Txn {
    /// The transaction id (a sysplex-unique TOD).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of staged record changes.
    pub fn write_count(&self) -> usize {
        self.writes.len()
    }
}

/// A per-system database manager over the shared data.
pub struct Database {
    system: SystemId,
    irlm: Arc<Irlm>,
    buf: BufferManager,
    log: LogManager,
    store: Arc<PageStore>,
    timer: Arc<SysplexTimer>,
    config: DbConfig,
    /// Transactions begun but not yet committed/aborted (checkpoint gate).
    active_txns: AtomicU64,
    /// Published counters.
    pub stats: DbStats,
}

/// Lock-name helpers shared with recovery.
pub(crate) fn row_resource(key: u64) -> Vec<u8> {
    format!("ROW.{key:016x}").into_bytes()
}

pub(crate) fn page_resource(db_id: u32, page: u64) -> Vec<u8> {
    format!("PAGE.{db_id:08x}.{page:016x}").into_bytes()
}

/// Parse a ROW lock resource back to its key (recovery/diagnostic tooling
/// inspecting retained locks).
pub fn key_of_row_resource(resource: &[u8]) -> Option<u64> {
    let s = std::str::from_utf8(resource).ok()?;
    let hex = s.strip_prefix("ROW.")?;
    u64::from_str_radix(hex, 16).ok()
}

impl Database {
    /// Assemble a database instance on `system`.
    pub fn new(
        system: SystemId,
        irlm: Arc<Irlm>,
        buf: BufferManager,
        log: LogManager,
        store: Arc<PageStore>,
        timer: Arc<SysplexTimer>,
        config: DbConfig,
    ) -> Self {
        Database {
            system,
            irlm,
            buf,
            log,
            store,
            timer,
            config,
            active_txns: AtomicU64::new(0),
            stats: DbStats::default(),
        }
    }

    /// The system this instance runs on.
    pub fn system(&self) -> SystemId {
        self.system
    }

    /// The lock manager (shared with recovery).
    pub fn irlm(&self) -> &Arc<Irlm> {
        &self.irlm
    }

    /// The buffer manager (castout sweeps, stats).
    pub fn buffers(&self) -> &BufferManager {
        &self.buf
    }

    /// The page store.
    pub fn store(&self) -> &Arc<PageStore> {
        &self.store
    }

    /// The Sysplex Timer clocking this member (wall or virtual).
    pub fn timer(&self) -> Arc<SysplexTimer> {
        Arc::clone(&self.timer)
    }

    /// The log manager (diagnostics).
    pub fn log(&self) -> &LogManager {
        &self.log
    }

    /// Begin a transaction. The id is a sysplex-unique TOD, so ids are
    /// globally ordered without coordination.
    pub fn begin(&self) -> Txn {
        self.active_txns.fetch_add(1, Ordering::AcqRel);
        Txn { id: self.timer.tod().0, complete: false, writes: HashMap::new() }
    }

    /// Transactions currently in flight on this member.
    pub fn active_transactions(&self) -> u64 {
        self.active_txns.load(Ordering::Acquire)
    }

    /// Checkpoint: truncate this member's log when no transaction is in
    /// flight (everything durable belongs to completed transactions, which
    /// never need backout). Run periodically by the castout daemon.
    pub fn checkpoint_if_idle(&self) -> DbResult<bool> {
        self.log.checkpoint_if(|| self.active_txns.load(Ordering::Acquire) == 0)
    }

    fn check_open(txn: &Txn) -> DbResult<()> {
        if txn.complete {
            Err(DbError::TxnComplete)
        } else {
            Ok(())
        }
    }

    /// Read a record under a Shared lock (repeatable read: the lock is
    /// held to commit).
    pub fn read(&self, txn: &mut Txn, key: u64) -> DbResult<Option<Vec<u8>>> {
        Self::check_open(txn)?;
        self.stats.reads.incr();
        // Read-your-writes.
        if let Some(w) = txn.writes.get(&key) {
            return Ok(w.after.clone());
        }
        self.irlm.lock_wait(txn.id, &row_resource(key), LockMode::Shared, false, self.config.lock_timeout)?;
        let page = self.buf.get_page(self.store.page_of(key))?;
        Ok(page.get(key).map(|v| v.to_vec()))
    }

    /// Stage a record write (`None` deletes) under an Exclusive persistent
    /// lock. Nothing is externalised until commit.
    pub fn write(&self, txn: &mut Txn, key: u64, value: Option<&[u8]>) -> DbResult<()> {
        Self::check_open(txn)?;
        self.stats.writes.incr();
        self.irlm.lock_wait(
            txn.id,
            &row_resource(key),
            LockMode::Exclusive,
            true,
            self.config.lock_timeout,
        )?;
        let after = value.map(|v| v.to_vec());
        if let Some(w) = txn.writes.get_mut(&key) {
            w.after = after; // keep the original before-image
            return Ok(());
        }
        // First touch: capture the committed before-image (stable — we hold
        // the exclusive record lock).
        let page_no = self.store.page_of(key);
        let page = self.buf.get_page(page_no)?;
        let before = page.get(key).map(|v| v.to_vec());
        txn.writes.insert(key, StagedWrite { page: page_no, before, after });
        Ok(())
    }

    /// Commit: WAL force, externalise pages under P-locks, commit record,
    /// release locks.
    ///
    /// A failure mid-commit (e.g. a P-lock timeout under heavy contention)
    /// backs out whatever was already externalised — the held L-locks make
    /// that safe — logs an Abort, and releases everything; the error is
    /// then surfaced.
    pub fn commit(&self, txn: &mut Txn) -> DbResult<()> {
        Self::check_open(txn)?;
        txn.complete = true;
        let result = self.commit_inner(txn);
        match &result {
            Ok(()) => self.stats.commits.incr(),
            Err(_) => {
                self.backout_externalised(txn);
                self.log.append(LogRecord::Abort { lsn: self.timer.tod(), txn: txn.id });
                let _ = self.log.force();
                let _ = self.irlm.unlock_all(txn.id);
                self.stats.aborts.incr();
            }
        }
        self.active_txns.fetch_sub(1, Ordering::AcqRel);
        result
    }

    fn commit_inner(&self, txn: &mut Txn) -> DbResult<()> {
        if txn.writes.is_empty() {
            self.irlm.unlock_all(txn.id)?;
            return Ok(());
        }
        // 1. Undo/redo records become durable before any page change
        //    reaches shared storage (WAL).
        for (key, w) in &txn.writes {
            self.log.append(LogRecord::Update {
                lsn: self.timer.tod(),
                txn: txn.id,
                page: w.page,
                key: *key,
                before: w.before.clone(),
                after: w.after.clone(),
            });
        }
        self.log.force()?;
        // 2. Externalise, page by page in ascending order (no P-lock
        //    deadlocks between committers), merging with concurrent
        //    changes to other records on the same page.
        let mut by_page: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for (key, w) in &txn.writes {
            by_page.entry(w.page).or_default().push(*key);
        }
        for (page_no, keys) in by_page {
            let plock = page_resource(self.store.db_id(), page_no);
            self.irlm.lock_wait(txn.id, &plock, LockMode::Exclusive, false, self.config.lock_timeout)?;
            let result = (|| -> DbResult<()> {
                let mut page = self.buf.get_page(page_no)?;
                for key in &keys {
                    match &txn.writes[key].after {
                        Some(v) => {
                            page.set(*key, v);
                        }
                        None => {
                            page.remove(*key);
                        }
                    }
                }
                self.buf.put_page(page_no, &page)
            })();
            self.irlm.unlock(txn.id, &plock)?;
            result?;
        }
        // 3. Commit record durable, then locks go.
        self.log.append(LogRecord::Commit { lsn: self.timer.tod(), txn: txn.id });
        self.log.force()?;
        self.irlm.unlock_all(txn.id)?;
        Ok(())
    }

    /// Best-effort in-place undo of staged writes that reached shared
    /// storage (commit-failure path; the L-locks are still held, so the
    /// record values cannot have moved under us).
    fn backout_externalised(&self, txn: &Txn) {
        for (key, w) in &txn.writes {
            let plock = page_resource(self.store.db_id(), w.page);
            if self
                .irlm
                .lock_wait(txn.id, &plock, LockMode::Exclusive, false, self.config.lock_timeout)
                .is_err()
            {
                continue;
            }
            let _ = (|| -> DbResult<()> {
                let mut page = self.buf.get_page(w.page)?;
                let current = page.get(*key).map(|v| v.to_vec());
                if current.as_deref() == w.after.as_deref() {
                    match &w.before {
                        Some(v) => {
                            page.set(*key, v);
                        }
                        None => {
                            page.remove(*key);
                        }
                    }
                    self.buf.put_page(w.page, &page)?;
                }
                Ok(())
            })();
            let _ = self.irlm.unlock(txn.id, &plock);
        }
    }

    /// Abort: nothing was externalised, so just drop the workspace and the
    /// locks (logging the abort for the record).
    pub fn abort(&self, txn: &mut Txn) -> DbResult<()> {
        Self::check_open(txn)?;
        txn.complete = true;
        if !txn.writes.is_empty() {
            self.log.append(LogRecord::Abort { lsn: self.timer.tod(), txn: txn.id });
            self.log.force()?;
        }
        txn.writes.clear();
        let unlock_result = self.irlm.unlock_all(txn.id);
        self.active_txns.fetch_sub(1, Ordering::AcqRel);
        self.stats.aborts.incr();
        unlock_result
    }

    /// Convenience: run `f` in a transaction, retrying on lock timeouts up
    /// to `retries` times (timeouts abort and re-run — the classic OLTP
    /// deadlock-breaker loop). Retries back off for a randomized interval
    /// so two transactions deadlocking in lockstep cannot livelock.
    pub fn run<R>(
        &self,
        retries: usize,
        mut f: impl FnMut(&Database, &mut Txn) -> DbResult<R>,
    ) -> DbResult<R> {
        let mut attempts: u32 = 0;
        loop {
            let mut txn = self.begin();
            match f(self, &mut txn).and_then(|r| self.commit(&mut txn).map(|_| r)) {
                Ok(r) => return Ok(r),
                Err(DbError::LockTimeout { resource, waited }) => {
                    if !txn.complete {
                        let _ = self.abort(&mut txn);
                    }
                    attempts += 1;
                    if attempts as usize > retries {
                        return Err(DbError::LockTimeout { resource, waited });
                    }
                    // Exponential randomized backoff, seeded from the
                    // (sysplex-unique) TOD: colliding transactions must
                    // desynchronise faster than they re-collide, or a
                    // wide group livelocks on a hot record with every
                    // member retrying in phase.
                    let ceil_us = 100u64 << attempts.min(8);
                    let jitter_us = self.timer.tod().0 % ceil_us;
                    // park_us: wall timers sleep, virtual timers advance —
                    // the backoff stays deterministic under simulation.
                    self.timer.park_us(jitter_us);
                }
                Err(e) => {
                    if !txn.complete {
                        let _ = self.abort(&mut txn);
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Orderly shutdown of this instance (planned removal).
    pub fn shutdown(&self) {
        self.buf.detach();
        self.irlm.shutdown();
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database").field("system", &self.system).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_names_roundtrip() {
        assert_eq!(key_of_row_resource(&row_resource(42)), Some(42));
        assert_eq!(key_of_row_resource(&row_resource(u64::MAX)), Some(u64::MAX));
        assert_eq!(key_of_row_resource(b"PAGE.x"), None);
        assert_eq!(key_of_row_resource(b"ROW.zz"), None);
        assert_ne!(page_resource(1, 2), page_resource(1, 3));
    }
}
