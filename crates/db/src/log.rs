//! Per-system write-ahead logs on shared DASD.
//!
//! Every system journals its updates to its own log volume *before*
//! externalising page changes to the group buffer (WAL). Because the log
//! volumes live on the fully-connected DASD farm, any surviving system can
//! read a failed member's log — the mechanism behind §2.5's "peer instances
//! of a failing subsystem ... take over recovery responsibility". Log
//! records carry sysplex-timer TODs, so logs from different systems merge
//! in a consistent global order.

use crate::error::{DbError, DbResult};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;
use sysplex_dasd::farm::DasdFarm;
use sysplex_services::timer::Tod;

/// One log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// A record-level change (undo/redo pair).
    Update {
        /// Sysplex-timer timestamp.
        lsn: Tod,
        /// Owning transaction.
        txn: u64,
        /// Page the record lives on.
        page: u64,
        /// Record key.
        key: u64,
        /// Before image (`None` = record did not exist).
        before: Option<Vec<u8>>,
        /// After image (`None` = record deleted).
        after: Option<Vec<u8>>,
    },
    /// Transaction committed (all its updates are now permanent).
    Commit {
        /// Sysplex-timer timestamp.
        lsn: Tod,
        /// Committing transaction.
        txn: u64,
    },
    /// Transaction rolled back by its own system.
    Abort {
        /// Sysplex-timer timestamp.
        lsn: Tod,
        /// Aborting transaction.
        txn: u64,
    },
}

impl LogRecord {
    /// The record's timestamp.
    pub fn lsn(&self) -> Tod {
        match self {
            LogRecord::Update { lsn, .. } | LogRecord::Commit { lsn, .. } | LogRecord::Abort { lsn, .. } => {
                *lsn
            }
        }
    }

    /// The record's transaction.
    pub fn txn(&self) -> u64 {
        match self {
            LogRecord::Update { txn, .. } | LogRecord::Commit { txn, .. } | LogRecord::Abort { txn, .. } => {
                *txn
            }
        }
    }

    fn encode(&self) -> Vec<u8> {
        fn put_opt(out: &mut Vec<u8>, v: &Option<Vec<u8>>) {
            match v {
                None => out.push(0),
                Some(b) => {
                    out.push(1);
                    out.extend_from_slice(&(b.len() as u32).to_be_bytes());
                    out.extend_from_slice(b);
                }
            }
        }
        let mut out = Vec::with_capacity(48);
        match self {
            LogRecord::Update { lsn, txn, page, key, before, after } => {
                out.push(1);
                out.extend_from_slice(&lsn.0.to_be_bytes());
                out.extend_from_slice(&txn.to_be_bytes());
                out.extend_from_slice(&page.to_be_bytes());
                out.extend_from_slice(&key.to_be_bytes());
                put_opt(&mut out, before);
                put_opt(&mut out, after);
            }
            LogRecord::Commit { lsn, txn } => {
                out.push(2);
                out.extend_from_slice(&lsn.0.to_be_bytes());
                out.extend_from_slice(&txn.to_be_bytes());
            }
            LogRecord::Abort { lsn, txn } => {
                out.push(3);
                out.extend_from_slice(&lsn.0.to_be_bytes());
                out.extend_from_slice(&txn.to_be_bytes());
            }
        }
        out
    }

    fn decode(data: &[u8]) -> DbResult<Self> {
        fn get_opt(data: &[u8], off: &mut usize) -> DbResult<Option<Vec<u8>>> {
            let flag = *data.get(*off).ok_or(DbError::LogCorrupt)?;
            *off += 1;
            if flag == 0 {
                return Ok(None);
            }
            if data.len() < *off + 4 {
                return Err(DbError::LogCorrupt);
            }
            let len = u32::from_be_bytes(data[*off..*off + 4].try_into().unwrap()) as usize;
            *off += 4;
            if data.len() < *off + len {
                return Err(DbError::LogCorrupt);
            }
            let v = data[*off..*off + len].to_vec();
            *off += len;
            Ok(Some(v))
        }
        fn get_u64(data: &[u8], off: &mut usize) -> DbResult<u64> {
            if data.len() < *off + 8 {
                return Err(DbError::LogCorrupt);
            }
            let v = u64::from_be_bytes(data[*off..*off + 8].try_into().unwrap());
            *off += 8;
            Ok(v)
        }
        let tag = *data.first().ok_or(DbError::LogCorrupt)?;
        let mut off = 1;
        let lsn = Tod(get_u64(data, &mut off)?);
        let txn = get_u64(data, &mut off)?;
        match tag {
            1 => {
                let page = get_u64(data, &mut off)?;
                let key = get_u64(data, &mut off)?;
                let before = get_opt(data, &mut off)?;
                let after = get_opt(data, &mut off)?;
                Ok(LogRecord::Update { lsn, txn, page, key, before, after })
            }
            2 => Ok(LogRecord::Commit { lsn, txn }),
            3 => Ok(LogRecord::Abort { lsn, txn }),
            _ => Err(DbError::LogCorrupt),
        }
    }
}

/// A per-system log.
///
/// Block 0 holds a header (`first_active`, `next_block`); records occupy
/// consecutive blocks from 1, one record per block (a simplification that
/// keeps torn writes impossible). Checkpointing advances `first_active`:
/// once a member has no in-flight transactions, nothing before the current
/// tail can ever be needed for backout, so the space is reclaimed — the
/// stand-in for MVS log archival.
pub struct LogManager {
    system: u8,
    farm: Arc<DasdFarm>,
    volume: String,
    inner: Mutex<LogInner>,
}

#[derive(Debug)]
struct LogInner {
    pending: Vec<LogRecord>,
    first_active: u64,
    next_block: u64,
}

const FIRST_RECORD_BLOCK: u64 = 1;

fn encode_header(first_active: u64, next_block: u64) -> Vec<u8> {
    let mut h = Vec::with_capacity(16);
    h.extend_from_slice(&first_active.to_be_bytes());
    h.extend_from_slice(&next_block.to_be_bytes());
    h
}

fn decode_header(data: &[u8]) -> (u64, u64) {
    if data.len() < 16 {
        return (FIRST_RECORD_BLOCK, FIRST_RECORD_BLOCK);
    }
    (u64::from_be_bytes(data[0..8].try_into().unwrap()), u64::from_be_bytes(data[8..16].try_into().unwrap()))
}

impl LogManager {
    /// Open the log of `system` on `volume`.
    pub fn new(system: u8, farm: Arc<DasdFarm>, volume: &str) -> Self {
        LogManager {
            system,
            farm,
            volume: volume.to_string(),
            inner: Mutex::new(LogInner {
                pending: Vec::new(),
                first_active: FIRST_RECORD_BLOCK,
                next_block: FIRST_RECORD_BLOCK,
            }),
        }
    }

    /// Buffer a record (not yet durable).
    pub fn append(&self, record: LogRecord) {
        self.inner.lock().pending.push(record);
    }

    /// Force all buffered records to DASD (WAL force point). Returns how
    /// many records were written.
    pub fn force(&self) -> DbResult<usize> {
        let mut inner = self.inner.lock();
        let n = inner.pending.len();
        if n == 0 {
            return Ok(0);
        }
        let records: Vec<LogRecord> = inner.pending.drain(..).collect();
        for rec in records {
            let block = inner.next_block;
            self.farm.write(self.system, &self.volume, block, &rec.encode())?;
            inner.next_block += 1;
        }
        let header = encode_header(inner.first_active, inner.next_block);
        self.farm.write(self.system, &self.volume, 0, &header)?;
        Ok(n)
    }

    /// Durable records currently active (not yet truncated).
    pub fn durable_count(&self) -> u64 {
        let inner = self.inner.lock();
        inner.next_block - inner.first_active
    }

    /// Checkpoint: discard the entire active log *iff* `idle` confirms (the
    /// caller promises no transaction of this member is in flight while the
    /// predicate runs — everything logged so far belongs to completed
    /// transactions and can never be needed for backout). Returns whether
    /// the log truncated.
    pub fn checkpoint_if(&self, idle: impl FnOnce() -> bool) -> DbResult<bool> {
        let mut inner = self.inner.lock();
        if !idle() || !inner.pending.is_empty() {
            return Ok(false);
        }
        if inner.first_active == inner.next_block {
            return Ok(false);
        }
        inner.first_active = inner.next_block;
        let header = encode_header(inner.first_active, inner.next_block);
        self.farm.write(self.system, &self.volume, 0, &header)?;
        Ok(true)
    }

    /// Read the active portion of a log from DASD — usable by *any* system
    /// (a survivor reads the failed member's log with its own identity).
    pub fn read_log(reader_system: u8, farm: &DasdFarm, volume: &str) -> DbResult<Vec<LogRecord>> {
        let (first_active, next_block) = decode_header(&farm.read(reader_system, volume, 0)?);
        let mut out = Vec::with_capacity((next_block - first_active) as usize);
        for block in first_active..next_block {
            let data = farm.read(reader_system, volume, block)?;
            if data.is_empty() {
                return Err(DbError::LogCorrupt);
            }
            out.push(LogRecord::decode(&data)?);
        }
        Ok(out)
    }

    /// Split a log into committed, aborted, and in-flight transaction sets.
    pub fn analyze(records: &[LogRecord]) -> (HashSet<u64>, HashSet<u64>, HashSet<u64>) {
        let mut committed = HashSet::new();
        let mut aborted = HashSet::new();
        let mut seen = HashSet::new();
        for r in records {
            seen.insert(r.txn());
            match r {
                LogRecord::Commit { txn, .. } => {
                    committed.insert(*txn);
                }
                LogRecord::Abort { txn, .. } => {
                    aborted.insert(*txn);
                }
                LogRecord::Update { .. } => {}
            }
        }
        let finished: HashSet<u64> = committed.union(&aborted).copied().collect();
        let inflight = seen.difference(&finished).copied().collect();
        (committed, aborted, inflight)
    }
}

impl std::fmt::Debug for LogManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogManager").field("system", &self.system).field("volume", &self.volume).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysplex_dasd::volume::IoModel;

    fn farm() -> Arc<DasdFarm> {
        let f = DasdFarm::new(IoModel::instant());
        f.add_volume("LOG00", 1024, 2).unwrap();
        f
    }

    fn upd(lsn: u64, txn: u64, key: u64, before: Option<&[u8]>, after: Option<&[u8]>) -> LogRecord {
        LogRecord::Update {
            lsn: Tod(lsn),
            txn,
            page: key % 10,
            key,
            before: before.map(|b| b.to_vec()),
            after: after.map(|a| a.to_vec()),
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        for rec in [
            upd(1, 7, 3, None, Some(b"new")),
            upd(2, 7, 3, Some(b"old"), Some(b"new")),
            upd(3, 7, 3, Some(b"old"), None),
            LogRecord::Commit { lsn: Tod(4), txn: 7 },
            LogRecord::Abort { lsn: Tod(5), txn: 8 },
        ] {
            assert_eq!(LogRecord::decode(&rec.encode()).unwrap(), rec);
        }
    }

    #[test]
    fn corrupt_records_rejected() {
        assert!(matches!(LogRecord::decode(&[]), Err(DbError::LogCorrupt)));
        assert!(matches!(LogRecord::decode(&[9, 0, 0]), Err(DbError::LogCorrupt)));
        let mut good = upd(1, 1, 1, Some(b"x"), None).encode();
        good.truncate(good.len() - 1);
        assert!(matches!(LogRecord::decode(&good), Err(DbError::LogCorrupt)));
    }

    #[test]
    fn force_makes_records_readable_by_any_system() {
        let f = farm();
        let log = LogManager::new(0, Arc::clone(&f), "LOG00");
        log.append(upd(1, 10, 5, None, Some(b"v")));
        log.append(LogRecord::Commit { lsn: Tod(2), txn: 10 });
        assert_eq!(log.durable_count(), 0, "append alone is not durable");
        assert_eq!(log.force().unwrap(), 2);
        assert_eq!(log.durable_count(), 2);
        // Another system reads the log.
        let records = LogManager::read_log(3, &f, "LOG00").unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].txn(), 10);
    }

    #[test]
    fn analyze_splits_transaction_fates() {
        let records = vec![
            upd(1, 100, 1, None, Some(b"a")),
            LogRecord::Commit { lsn: Tod(2), txn: 100 },
            upd(3, 200, 2, None, Some(b"b")),
            LogRecord::Abort { lsn: Tod(4), txn: 200 },
            upd(5, 300, 3, None, Some(b"c")), // in flight at crash
        ];
        let (committed, aborted, inflight) = LogManager::analyze(&records);
        assert!(committed.contains(&100));
        assert!(aborted.contains(&200));
        assert_eq!(inflight, HashSet::from([300]));
    }

    #[test]
    fn multiple_forces_extend_the_log() {
        let f = farm();
        let log = LogManager::new(0, Arc::clone(&f), "LOG00");
        log.append(upd(1, 1, 1, None, Some(b"1")));
        log.force().unwrap();
        log.append(upd(2, 2, 2, None, Some(b"2")));
        log.force().unwrap();
        let records = LogManager::read_log(0, &f, "LOG00").unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].txn(), 2);
    }

    #[test]
    fn checkpoint_truncates_only_when_idle() {
        let f = farm();
        let log = LogManager::new(0, Arc::clone(&f), "LOG00");
        log.append(upd(1, 1, 1, None, Some(b"1")));
        log.force().unwrap();
        assert_eq!(log.durable_count(), 1);
        // Predicate says busy: no truncation.
        assert!(!log.checkpoint_if(|| false).unwrap());
        assert_eq!(LogManager::read_log(0, &f, "LOG00").unwrap().len(), 1);
        // Idle: truncates.
        assert!(log.checkpoint_if(|| true).unwrap());
        assert_eq!(log.durable_count(), 0);
        assert!(LogManager::read_log(0, &f, "LOG00").unwrap().is_empty());
        // Second checkpoint is a no-op.
        assert!(!log.checkpoint_if(|| true).unwrap());
        // New records land after the truncation point and are readable.
        log.append(upd(2, 2, 2, None, Some(b"2")));
        log.force().unwrap();
        let records = LogManager::read_log(0, &f, "LOG00").unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].txn(), 2);
    }

    #[test]
    fn checkpoint_refuses_with_pending_records() {
        let f = farm();
        let log = LogManager::new(0, Arc::clone(&f), "LOG00");
        log.append(upd(1, 1, 1, None, Some(b"1")));
        assert!(!log.checkpoint_if(|| true).unwrap(), "buffered records are not yet durable");
    }

    #[test]
    fn empty_log_reads_empty() {
        let f = farm();
        assert!(LogManager::read_log(0, &f, "LOG00").unwrap().is_empty());
    }
}
