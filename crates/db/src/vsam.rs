//! VSAM record-level sharing (§5.2).
//!
//! "DFSMS support for multi-system data-sharing of VSAM files is currently
//! under development and will similarly exploit the Coupling Facility."
//! This module builds that promised exploiter: a KSDS-style keyed file —
//! string keys, variable-length records, ordered browse — layered on the
//! transactional record store, so it inherits record-level locking, group
//! buffer coherency, WAL recovery and peer backout from the same CF
//! structures DB2/IMS use.
//!
//! Layout inside a reserved region of the record key space:
//!
//! * `base`      — the index record: ordered (high-key → CI id) pairs, the
//!   last entry open-ended.
//! * `base+1+ci` — control intervals: sorted runs of (key, record) pairs.
//!
//! Inserts that overflow a CI split it — index and both CIs rewritten in
//! the same transaction, so a split is atomic sysplex-wide and recoverable
//! like any other update.

use crate::database::{Database, Txn};
use crate::error::{DbError, DbResult};

/// Records per control interval before a split.
pub const DEFAULT_CI_CAPACITY: usize = 16;

/// A shared KSDS (key-sequenced data set) handle for one system.
///
/// Every member opens its own handle over its own database member; the
/// file itself is one, shared, coherent.
#[derive(Debug)]
pub struct Ksds {
    db: std::sync::Arc<Database>,
    /// First record key of the file's region.
    base: u64,
    ci_capacity: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct IndexEntry {
    /// Highest key this CI may hold; `None` = unbounded (last CI).
    high_key: Option<String>,
    ci: u64,
}

fn encode_index(entries: &[IndexEntry], next_ci: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(&next_ci.to_be_bytes());
    out.extend_from_slice(&(entries.len() as u32).to_be_bytes());
    for e in entries {
        match &e.high_key {
            Some(k) => {
                out.push(1);
                out.extend_from_slice(&(k.len() as u16).to_be_bytes());
                out.extend_from_slice(k.as_bytes());
            }
            None => out.push(0),
        }
        out.extend_from_slice(&e.ci.to_be_bytes());
    }
    out
}

fn decode_index(data: &[u8]) -> Option<(Vec<IndexEntry>, u64)> {
    let next_ci = u64::from_be_bytes(data.get(0..8)?.try_into().ok()?);
    let n = u32::from_be_bytes(data.get(8..12)?.try_into().ok()?) as usize;
    let mut off = 12;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let has_key = *data.get(off)?;
        off += 1;
        let high_key = if has_key == 1 {
            let len = u16::from_be_bytes(data.get(off..off + 2)?.try_into().ok()?) as usize;
            off += 2;
            let k = std::str::from_utf8(data.get(off..off + len)?).ok()?.to_string();
            off += len;
            Some(k)
        } else {
            None
        };
        let ci = u64::from_be_bytes(data.get(off..off + 8)?.try_into().ok()?);
        off += 8;
        entries.push(IndexEntry { high_key, ci });
    }
    Some((entries, next_ci))
}

fn encode_ci(records: &[(String, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&(records.len() as u32).to_be_bytes());
    for (k, v) in records {
        out.extend_from_slice(&(k.len() as u16).to_be_bytes());
        out.extend_from_slice(k.as_bytes());
        out.extend_from_slice(&(v.len() as u32).to_be_bytes());
        out.extend_from_slice(v);
    }
    out
}

fn decode_ci(data: &[u8]) -> Option<Vec<(String, Vec<u8>)>> {
    let n = u32::from_be_bytes(data.get(0..4)?.try_into().ok()?) as usize;
    let mut off = 4;
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        let klen = u16::from_be_bytes(data.get(off..off + 2)?.try_into().ok()?) as usize;
        off += 2;
        let key = std::str::from_utf8(data.get(off..off + klen)?).ok()?.to_string();
        off += klen;
        let vlen = u32::from_be_bytes(data.get(off..off + 4)?.try_into().ok()?) as usize;
        off += 4;
        let val = data.get(off..off + vlen)?.to_vec();
        off += vlen;
        records.push((key, val));
    }
    Some(records)
}

impl Ksds {
    /// Define (format) a new KSDS whose records live at `base..`. The
    /// region must not be used by anything else.
    pub fn define(db: std::sync::Arc<Database>, base: u64, ci_capacity: usize) -> DbResult<Ksds> {
        assert!(ci_capacity >= 2, "a CI must hold at least two records to split");
        let file = Ksds { db, base, ci_capacity };
        file.db.run(20, |db, txn| {
            let index = vec![IndexEntry { high_key: None, ci: 0 }];
            db.write(txn, base, Some(&encode_index(&index, 1)))?;
            db.write(txn, base + 1, Some(&encode_ci(&[])))
        })?;
        Ok(file)
    }

    /// Open an existing KSDS (another member defined it).
    pub fn open(db: std::sync::Arc<Database>, base: u64, ci_capacity: usize) -> Ksds {
        Ksds { db, base, ci_capacity }
    }

    fn ci_key(&self, ci: u64) -> u64 {
        self.base + 1 + ci
    }

    fn load_index(&self, db: &Database, txn: &mut Txn) -> DbResult<(Vec<IndexEntry>, u64)> {
        let data = db.read(txn, self.base)?.ok_or(DbError::PageCorrupt(self.base))?;
        decode_index(&data).ok_or(DbError::PageCorrupt(self.base))
    }

    fn load_ci(&self, db: &Database, txn: &mut Txn, ci: u64) -> DbResult<Vec<(String, Vec<u8>)>> {
        let data = db.read(txn, self.ci_key(ci))?.ok_or(DbError::PageCorrupt(self.ci_key(ci)))?;
        decode_ci(&data).ok_or(DbError::PageCorrupt(self.ci_key(ci)))
    }

    fn ci_for<'a>(index: &'a [IndexEntry], key: &str) -> &'a IndexEntry {
        index
            .iter()
            .find(|e| e.high_key.as_deref().map(|h| key <= h).unwrap_or(true))
            .expect("last index entry is unbounded")
    }

    /// Insert or replace a record.
    pub fn put(&self, key: &str, value: &[u8]) -> DbResult<()> {
        let key = key.to_string();
        let value = value.to_vec();
        self.db.run(50, |db, txn| {
            let (mut index, mut next_ci) = self.load_index(db, txn)?;
            let entry = Self::ci_for(&index, &key).clone();
            let mut records = self.load_ci(db, txn, entry.ci)?;
            match records.binary_search_by(|(k, _)| k.as_str().cmp(&key)) {
                Ok(i) => records[i].1 = value.clone(),
                Err(i) => records.insert(i, (key.clone(), value.clone())),
            }
            if records.len() <= self.ci_capacity {
                return db.write(txn, self.ci_key(entry.ci), Some(&encode_ci(&records)));
            }
            // Split: lower half moves to a fresh CI inserted before this
            // one; all three writes commit atomically.
            let mid = records.len() / 2;
            let right: Vec<(String, Vec<u8>)> = records.split_off(mid);
            let left = records;
            let left_high = left.last().unwrap().0.clone();
            let left_ci = next_ci;
            next_ci += 1;
            let pos = index.iter().position(|e| e.ci == entry.ci).unwrap();
            index.insert(pos, IndexEntry { high_key: Some(left_high), ci: left_ci });
            db.write(txn, self.ci_key(left_ci), Some(&encode_ci(&left)))?;
            db.write(txn, self.ci_key(entry.ci), Some(&encode_ci(&right)))?;
            db.write(txn, self.base, Some(&encode_index(&index, next_ci)))
        })
    }

    /// Read a record.
    pub fn get(&self, key: &str) -> DbResult<Option<Vec<u8>>> {
        let key = key.to_string();
        self.db.run(50, |db, txn| {
            let (index, _) = self.load_index(db, txn)?;
            let entry = Self::ci_for(&index, &key);
            let records = self.load_ci(db, txn, entry.ci)?;
            Ok(records.binary_search_by(|(k, _)| k.as_str().cmp(&key)).ok().map(|i| records[i].1.clone()))
        })
    }

    /// Delete a record; returns whether it existed. (Empty CIs persist —
    /// VSAM reclaims them offline; lookups skip them naturally.)
    pub fn erase(&self, key: &str) -> DbResult<bool> {
        let key = key.to_string();
        self.db.run(50, |db, txn| {
            let (index, _) = self.load_index(db, txn)?;
            let entry = Self::ci_for(&index, &key).clone();
            let mut records = self.load_ci(db, txn, entry.ci)?;
            match records.binary_search_by(|(k, _)| k.as_str().cmp(&key)) {
                Ok(i) => {
                    records.remove(i);
                    db.write(txn, self.ci_key(entry.ci), Some(&encode_ci(&records)))?;
                    Ok(true)
                }
                Err(_) => Ok(false),
            }
        })
    }

    /// Browse: up to `limit` records with keys `>= from`, in key order —
    /// the KSDS sequential access VSAM applications rely on.
    pub fn browse(&self, from: &str, limit: usize) -> DbResult<Vec<(String, Vec<u8>)>> {
        let from = from.to_string();
        self.db.run(50, |db, txn| {
            let (index, _) = self.load_index(db, txn)?;
            let mut out = Vec::new();
            let start = index
                .iter()
                .position(|e| e.high_key.as_deref().map(|h| from.as_str() <= h).unwrap_or(true))
                .unwrap_or(index.len().saturating_sub(1));
            for entry in &index[start..] {
                if out.len() >= limit {
                    break;
                }
                for (k, v) in self.load_ci(db, txn, entry.ci)? {
                    if k.as_str() >= from.as_str() {
                        out.push((k, v));
                        if out.len() >= limit {
                            break;
                        }
                    }
                }
            }
            Ok(out)
        })
    }

    /// Total records (full scan; diagnostics).
    pub fn record_count(&self) -> DbResult<usize> {
        self.db.run(50, |db, txn| {
            let (index, _) = self.load_index(db, txn)?;
            let mut n = 0;
            for entry in &index {
                n += self.load_ci(db, txn, entry.ci)?.len();
            }
            Ok(n)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::{DataSharingGroup, GroupConfig};
    use std::sync::Arc;
    use sysplex_core::facility::{CfConfig, CouplingFacility};
    use sysplex_core::SystemId;
    use sysplex_dasd::farm::DasdFarm;
    use sysplex_dasd::volume::IoModel;
    use sysplex_services::timer::SysplexTimer;
    use sysplex_services::xcf::Xcf;

    fn group(members: u8) -> Arc<DataSharingGroup> {
        let cf = CouplingFacility::new(CfConfig::named("CF01"));
        let farm = DasdFarm::new(IoModel::instant());
        let timer = SysplexTimer::new();
        let xcf = Xcf::new(Arc::clone(&timer));
        let mut config = GroupConfig::default();
        config.db.lock_timeout = std::time::Duration::from_millis(150);
        let g = DataSharingGroup::new(config, &cf, farm, timer, xcf).unwrap();
        for i in 0..members {
            g.add_member(SystemId::new(i)).unwrap();
        }
        g
    }

    const BASE: u64 = 1 << 20;

    #[test]
    fn codec_roundtrips() {
        let idx =
            vec![IndexEntry { high_key: Some("M".into()), ci: 3 }, IndexEntry { high_key: None, ci: 0 }];
        assert_eq!(decode_index(&encode_index(&idx, 7)).unwrap(), (idx, 7));
        let ci = vec![("A".to_string(), b"1".to_vec()), ("B".to_string(), vec![])];
        assert_eq!(decode_ci(&encode_ci(&ci)).unwrap(), ci);
    }

    #[test]
    fn put_get_erase_roundtrip() {
        let g = group(1);
        let file = Ksds::define(g.member(SystemId::new(0)).unwrap(), BASE, 4).unwrap();
        file.put("CUST.0002", b"two").unwrap();
        file.put("CUST.0001", b"one").unwrap();
        assert_eq!(file.get("CUST.0001").unwrap().unwrap(), b"one");
        assert_eq!(file.get("CUST.0003").unwrap(), None);
        file.put("CUST.0001", b"one-v2").unwrap();
        assert_eq!(file.get("CUST.0001").unwrap().unwrap(), b"one-v2");
        assert!(file.erase("CUST.0001").unwrap());
        assert!(!file.erase("CUST.0001").unwrap());
        assert_eq!(file.get("CUST.0001").unwrap(), None);
        g.remove_member(SystemId::new(0));
    }

    #[test]
    fn splits_preserve_order_and_completeness() {
        let g = group(1);
        let file = Ksds::define(g.member(SystemId::new(0)).unwrap(), BASE, 4).unwrap();
        // Insert far more than one CI holds, in shuffled order.
        let mut keys: Vec<u32> = (0..60).collect();
        let mut state = 0x12345u32;
        for i in (1..keys.len()).rev() {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            keys.swap(i, (state as usize) % (i + 1));
        }
        for k in &keys {
            file.put(&format!("K{k:04}"), &k.to_be_bytes()).unwrap();
        }
        assert_eq!(file.record_count().unwrap(), 60);
        let all = file.browse("", 1000).unwrap();
        assert_eq!(all.len(), 60);
        let browsed: Vec<String> = all.iter().map(|(k, _)| k.clone()).collect();
        let mut sorted = browsed.clone();
        sorted.sort();
        assert_eq!(browsed, sorted, "browse returns key order across split CIs");
        for k in 0..60u32 {
            assert_eq!(
                file.get(&format!("K{k:04}")).unwrap().unwrap(),
                k.to_be_bytes(),
                "key K{k:04} survives splits"
            );
        }
        g.remove_member(SystemId::new(0));
    }

    #[test]
    fn browse_ranges_and_limits() {
        let g = group(1);
        let file = Ksds::define(g.member(SystemId::new(0)).unwrap(), BASE, 4).unwrap();
        for k in 0..20u32 {
            file.put(&format!("R{k:03}"), b"v").unwrap();
        }
        let page = file.browse("R005", 5).unwrap();
        assert_eq!(
            page.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            vec!["R005", "R006", "R007", "R008", "R009"]
        );
        assert!(file.browse("R019", 10).unwrap().len() == 1);
        assert!(file.browse("ZZZ", 10).unwrap().is_empty());
        g.remove_member(SystemId::new(0));
    }

    #[test]
    fn record_level_sharing_across_systems() {
        let g = group(2);
        let a = Ksds::define(g.member(SystemId::new(0)).unwrap(), BASE, 4).unwrap();
        let b = Ksds::open(g.member(SystemId::new(1)).unwrap(), BASE, 4);
        a.put("SHARED.KEY", b"from-a").unwrap();
        assert_eq!(b.get("SHARED.KEY").unwrap().unwrap(), b"from-a");
        b.put("SHARED.KEY", b"from-b").unwrap();
        assert_eq!(a.get("SHARED.KEY").unwrap().unwrap(), b"from-b");
        g.remove_member(SystemId::new(0));
        g.remove_member(SystemId::new(1));
    }

    #[test]
    fn concurrent_multi_system_inserts_with_splits_lose_nothing() {
        let g = group(2);
        let _ = Ksds::define(g.member(SystemId::new(0)).unwrap(), BASE, 4).unwrap();
        let mut handles = Vec::new();
        for m in 0..2u8 {
            let db = g.member(SystemId::new(m)).unwrap();
            handles.push(std::thread::spawn(move || {
                let file = Ksds::open(db, BASE, 4);
                for i in 0..40u32 {
                    file.put(&format!("T{m}-{i:04}"), &i.to_be_bytes()).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let auditor = Ksds::open(g.member(SystemId::new(0)).unwrap(), BASE, 4);
        assert_eq!(auditor.record_count().unwrap(), 80, "every insert survived concurrent splits");
        for m in 0..2u8 {
            for i in 0..40u32 {
                assert!(auditor.get(&format!("T{m}-{i:04}")).unwrap().is_some());
            }
        }
        g.remove_member(SystemId::new(0));
        g.remove_member(SystemId::new(1));
    }
}
