//! # sysplex-db — the data-sharing database stack
//!
//! The paper's §5.2 subsystems (DB2, IMS/DB and their IRLM lock manager)
//! exploit the Coupling Facility to provide "direct, concurrent read/write
//! access to shared data from all processing nodes ... without sacrificing
//! performance or data integrity". This crate is a working stand-in for
//! that stack, exercising exactly the CF protocols of §3.3:
//!
//! * [`irlm`] — a distributed lock manager on the CF **lock structure**:
//!   local grants when the system already holds covering interest,
//!   CPU-synchronous CF grants otherwise, XCF negotiation on contention
//!   (distinguishing real from *false* contention), persistent lock records
//!   for recovery.
//! * [`pagestore`] — the shared database on DASD: pages of keyed records,
//!   fully connected to all systems.
//! * [`bufmgr`] — a local buffer pool kept coherent through the CF **cache
//!   structure**: nanosecond local validity tests, cross-invalidation on
//!   update, refresh from the CF's global cache, castout to DASD.
//! * [`log`] — a per-system write-ahead log on DASD (undo/redo), merged
//!   across systems by sysplex-timer timestamps.
//! * [`database`] — the transactional record interface: 2PL with record
//!   L-locks and page P-locks, store-in group-buffer writes at commit.
//! * [`recovery`] — peer recovery (§2.5): a surviving system replays the
//!   failed member's log, backs out uncommitted work and frees its
//!   retained locks.
//! * [`group`] — helper assembling an N-system data-sharing group for
//!   tests, examples and benches.

pub mod bufmgr;
pub mod castout;
pub mod database;
pub mod error;
pub mod group;
pub mod irlm;
pub mod log;
pub mod pagestore;
pub mod recovery;
pub mod vsam;

pub use database::{Database, Txn};
pub use error::{DbError, DbResult};
pub use group::DataSharingGroup;
pub use irlm::{Irlm, LockOutcome};
pub use pagestore::{Page, PageStore};
