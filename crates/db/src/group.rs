//! A data-sharing group: N database instances over one CF + one DASD farm.
//!
//! This is the assembly the paper's Figure 2 draws — database managers on
//! every system, their lock and buffer managers wired to the same CF lock
//! and cache structures, shared DASD underneath. Tests, examples and
//! benches use it to stand up an OLTP data-sharing group in a few lines.

use crate::bufmgr::BufferManager;
use crate::database::{Database, DbConfig};
use crate::error::DbResult;
use crate::irlm::Irlm;
use crate::log::LogManager;
use crate::pagestore::PageStore;
use crate::recovery::{recover_peer, FailedMember, RecoveryReport};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use sysplex_core::cache::{CacheParams, CacheStructure};
use sysplex_core::connection::{CfSubchannel, LockConnection};
use sysplex_core::facility::CouplingFacility;
use sysplex_core::lock::{LockParams, LockStructure};
use sysplex_core::SystemId;
use sysplex_dasd::farm::DasdFarm;
use sysplex_services::timer::SysplexTimer;
use sysplex_services::xcf::Xcf;

/// Group-wide sizing.
#[derive(Debug, Clone)]
pub struct GroupConfig {
    /// Lock-table entries (E10 sweeps this).
    pub lock_entries: usize,
    /// Cache directory entries.
    pub cache_entries: usize,
    /// Database pages.
    pub pages: u64,
    /// Blocks per member log volume.
    pub log_blocks: u64,
    /// Per-instance database tuning.
    pub db: DbConfig,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            lock_entries: 4096,
            cache_entries: 4096,
            pages: 256,
            log_blocks: 65_536,
            db: DbConfig::default(),
        }
    }
}

/// The assembled data-sharing group.
///
/// ```
/// use sysplex_core::facility::{CfConfig, CouplingFacility};
/// use sysplex_core::SystemId;
/// use sysplex_dasd::{farm::DasdFarm, volume::IoModel};
/// use sysplex_db::group::{DataSharingGroup, GroupConfig};
/// use sysplex_services::{timer::SysplexTimer, xcf::Xcf};
///
/// let cf = CouplingFacility::new(CfConfig::named("CF01"));
/// let timer = SysplexTimer::new();
/// let xcf = Xcf::new(timer.clone());
/// let group = DataSharingGroup::new(
///     GroupConfig::default(), &cf, DasdFarm::new(IoModel::instant()), timer, xcf,
/// ).unwrap();
/// let a = group.add_member(SystemId::new(0)).unwrap();
/// let b = group.add_member(SystemId::new(1)).unwrap();
/// a.run(5, |db, txn| db.write(txn, 1, Some(b"shared"))).unwrap();
/// assert_eq!(b.run(5, |db, txn| db.read(txn, 1)).unwrap().unwrap(), b"shared");
/// group.remove_member(SystemId::new(0));
/// group.remove_member(SystemId::new(1));
/// ```
pub struct DataSharingGroup {
    config: GroupConfig,
    /// The shared DASD farm.
    pub farm: Arc<DasdFarm>,
    /// The sysplex timer.
    pub timer: Arc<SysplexTimer>,
    /// XCF (lock negotiation traffic).
    pub xcf: Arc<Xcf>,
    /// Current CF lock structure (swapped by [`DataSharingGroup::rebuild_into`]).
    lock_structure: parking_lot::RwLock<Arc<LockStructure>>,
    /// Current CF cache structure (group buffer pool).
    cache_structure: parking_lot::RwLock<Arc<CacheStructure>>,
    /// Command subchannel template for the CF currently hosting the
    /// structures; every member connection issues through a clone of it.
    subchannel: parking_lot::RwLock<CfSubchannel>,
    /// Subchannel for the duplexed secondary CF, promoted on failover.
    secondary_sub: Mutex<Option<CfSubchannel>>,
    /// The shared page store.
    pub store: Arc<PageStore>,
    /// Rebuild generation counter (names the replacement structures).
    generation: std::sync::atomic::AtomicU32,
    /// Current lock-table entry count. Starts at the configured size and
    /// grows with [`DataSharingGroup::resize_lock_table`]; rebuilds and
    /// duplex secondaries allocate at this size, not the original one.
    lock_entries: std::sync::atomic::AtomicUsize,
    /// Duplexed secondaries, when duplexing is enabled.
    secondary_lock: Mutex<Option<Arc<LockStructure>>>,
    secondary_cache: Mutex<Option<Arc<CacheStructure>>>,
    members: Mutex<HashMap<SystemId, Arc<Database>>>,
    conns: Mutex<HashMap<SystemId, FailedMember>>,
}

impl DataSharingGroup {
    /// Stand the group infrastructure up on a CF and a farm (no members
    /// yet).
    pub fn new(
        config: GroupConfig,
        cf: &CouplingFacility,
        farm: Arc<DasdFarm>,
        timer: Arc<SysplexTimer>,
        xcf: Arc<Xcf>,
    ) -> DbResult<Arc<Self>> {
        let lock_structure =
            cf.allocate_lock_structure("DSG_LOCK1", LockParams::with_entries(config.lock_entries))?;
        let cache_structure =
            cf.allocate_cache_structure("DSG_GBP0", CacheParams::store_in(config.cache_entries))?;
        farm.add_volume("DSGDB01", config.pages, 4)?;
        let store = PageStore::new(Arc::clone(&farm), "DSGDB01", 1, config.pages);
        let lock_entries = config.lock_entries;
        Ok(Arc::new(DataSharingGroup {
            config,
            farm,
            timer,
            xcf,
            lock_structure: parking_lot::RwLock::new(lock_structure),
            cache_structure: parking_lot::RwLock::new(cache_structure),
            subchannel: parking_lot::RwLock::new(cf.subchannel()),
            secondary_sub: Mutex::new(None),
            store,
            generation: std::sync::atomic::AtomicU32::new(0),
            lock_entries: std::sync::atomic::AtomicUsize::new(lock_entries),
            secondary_lock: Mutex::new(None),
            secondary_cache: Mutex::new(None),
            members: Mutex::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
        }))
    }

    /// The CF lock structure currently in use.
    pub fn lock_structure(&self) -> Arc<LockStructure> {
        Arc::clone(&self.lock_structure.read())
    }

    /// The CF cache structure (group buffer pool) currently in use.
    pub fn cache_structure(&self) -> Arc<CacheStructure> {
        Arc::clone(&self.cache_structure.read())
    }

    /// A fresh command subchannel to the CF currently hosting the group's
    /// structures.
    pub fn subchannel(&self) -> CfSubchannel {
        self.subchannel.read().clone()
    }

    fn log_volume(system: SystemId) -> String {
        format!("DSGLOG{:02}", system.0)
    }

    /// Join `system` to the group: IRLM + buffer pool + log + database.
    pub fn add_member(&self, system: SystemId) -> DbResult<Arc<Database>> {
        // Tag the member's subchannels so traced events carry the issuing
        // system's identity (the trace ring they land in).
        let lock_conn = LockConnection::attach(&self.lock_structure(), self.subchannel().with_system(system))
            .map_err(crate::error::DbError::Cf)?;
        let irlm = Irlm::start(system, lock_conn, &self.xcf)?;
        // Lock-wait timeouts follow the group's timer, so a virtual-timer
        // group breaks deadlocks on simulated time.
        irlm.set_clock(Arc::clone(&self.timer));
        let buf = BufferManager::new(
            system,
            &self.cache_structure(),
            self.subchannel().with_system(system),
            Arc::clone(&self.store),
            self.config.db.buffer_frames,
        )?;
        let volume = Self::log_volume(system);
        if self.farm.volume(&volume).is_err() {
            self.farm.add_volume(&volume, self.config.log_blocks, 2)?;
        }
        let log = LogManager::new(system.0, Arc::clone(&self.farm), &volume);
        let member = FailedMember { lock_conn: irlm.conn(), cache_conn: buf.conn_id(), log_volume: volume };
        let db = Arc::new(Database::new(
            system,
            irlm,
            buf,
            log,
            Arc::clone(&self.store),
            Arc::clone(&self.timer),
            self.config.db,
        ));
        self.members.lock().insert(system, Arc::clone(&db));
        self.conns.lock().insert(system, member);
        Ok(db)
    }

    /// Look up a member.
    pub fn member(&self, system: SystemId) -> Option<Arc<Database>> {
        self.members.lock().get(&system).cloned()
    }

    /// Active members, sorted by system.
    pub fn members(&self) -> Vec<Arc<Database>> {
        let mut v: Vec<Arc<Database>> = self.members.lock().values().cloned().collect();
        v.sort_by_key(|d| d.system());
        v
    }

    /// Orderly departure of a member (planned removal).
    pub fn remove_member(&self, system: SystemId) {
        if let Some(db) = self.members.lock().remove(&system) {
            db.shutdown();
        }
        self.conns.lock().remove(&system);
    }

    /// Crash a member: its IRLM service stops dead; **no CF cleanup
    /// happens** — exactly the state a system failure leaves behind.
    /// Returns the identity peer recovery will need.
    pub fn crash_member(&self, system: SystemId) -> Option<FailedMember> {
        let db = self.members.lock().remove(&system)?;
        db.irlm().crash();
        self.conns.lock().remove(&system)
    }

    /// Run peer recovery for a crashed member on `survivor`.
    pub fn recover_on(&self, survivor: SystemId, failed: &FailedMember) -> DbResult<RecoveryReport> {
        let db = self.member(survivor).expect("survivor is a member");
        recover_peer(&db, &self.farm, &self.cache_structure(), failed)
    }

    /// Rebuild both CF structures into `cf` (planned CF maintenance or CF
    /// failure, §3.3: "Multiple CF's can be connected for availability").
    ///
    /// All members are quiesced, the lock space is re-created from their
    /// in-storage lock tables, changed group-buffer data is destaged to
    /// DASD, and every member reconnects to the replacement structures.
    /// Transactions in flight simply stall for the (sub-millisecond here)
    /// rebuild window. Any failed-persistent member must be peer-recovered
    /// *before* rebuilding — its retained state lives only in the old
    /// structure.
    /// Enable system-managed structure duplexing onto a second CF: every
    /// lock grant/release/record and every changed-data write is mirrored
    /// from now on. The strongest form of "Multiple CF's can be connected
    /// for availability" — a CF loss then needs no rebuild and no destage,
    /// just [`DataSharingGroup::cf_failover`].
    pub fn enable_duplexing(&self, cf: &CouplingFacility) -> DbResult<()> {
        let generation = self.generation.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
        let members = self.members();
        let sec_lock = cf.allocate_lock_structure(
            &format!("DSG_LOCK1_DX{generation}"),
            LockParams::with_entries(self.lock_entries.load(std::sync::atomic::Ordering::Relaxed)),
        )?;
        let sec_cache = cf.allocate_cache_structure(
            &format!("DSG_GBP0_DX{generation}"),
            CacheParams::store_in(self.config.cache_entries),
        )?;
        let sec_sub = cf.subchannel();
        let irlms: Vec<_> = members.iter().map(|d| Arc::clone(d.irlm())).collect();
        Irlm::enable_duplexing(&irlms, Arc::clone(&sec_lock), &sec_sub)?;
        let bufs: Vec<&crate::bufmgr::BufferManager> = members.iter().map(|d| d.buffers()).collect();
        crate::bufmgr::BufferManager::enable_duplexing(&bufs, Arc::clone(&sec_cache), &sec_sub)?;
        *self.secondary_lock.lock() = Some(sec_lock);
        *self.secondary_cache.lock() = Some(sec_cache);
        *self.secondary_sub.lock() = Some(sec_sub);
        Ok(())
    }

    /// The primary CF failed (or is being retired): promote the duplexed
    /// secondaries on every member. Held locks stay held; changed data
    /// stays in the (new) group buffer; no recovery runs.
    pub fn cf_failover(&self) -> DbResult<()> {
        let members = self.members();
        let irlms: Vec<_> = members.iter().map(|d| Arc::clone(d.irlm())).collect();
        Irlm::failover_all(&irlms)?;
        let bufs: Vec<&crate::bufmgr::BufferManager> = members.iter().map(|d| d.buffers()).collect();
        crate::bufmgr::BufferManager::failover_all(&bufs)?;
        if let Some(l) = self.secondary_lock.lock().take() {
            *self.lock_structure.write() = l;
        }
        if let Some(c) = self.secondary_cache.lock().take() {
            *self.cache_structure.write() = c;
        }
        if let Some(sub) = self.secondary_sub.lock().take() {
            *self.subchannel.write() = sub;
        }
        let mut conns = self.conns.lock();
        for d in &members {
            if let Some(fm) = conns.get_mut(&d.system()) {
                fm.lock_conn = d.irlm().conn();
                fm.cache_conn = d.buffers().conn_id();
            }
        }
        Ok(())
    }

    /// Whether structure duplexing is currently active.
    pub fn is_duplexed(&self) -> bool {
        self.secondary_lock.lock().is_some()
    }

    pub fn rebuild_into(&self, cf: &CouplingFacility) -> DbResult<()> {
        let generation = self.generation.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
        let members = self.members();
        let new_lock = cf.allocate_lock_structure(
            &format!("DSG_LOCK1_G{generation}"),
            LockParams::with_entries(self.lock_entries.load(std::sync::atomic::Ordering::Relaxed)),
        )?;
        let new_cache = cf.allocate_cache_structure(
            &format!("DSG_GBP0_G{generation}"),
            CacheParams::store_in(self.config.cache_entries),
        )?;
        let new_sub = cf.subchannel();
        let irlms: Vec<_> = members.iter().map(|d| Arc::clone(d.irlm())).collect();
        Irlm::rebuild_all(&irlms, Arc::clone(&new_lock), &new_sub)?;
        let bufs: Vec<&crate::bufmgr::BufferManager> = members.iter().map(|d| d.buffers()).collect();
        crate::bufmgr::BufferManager::rebuild_all(&bufs, Arc::clone(&new_cache), &new_sub)?;
        *self.lock_structure.write() = new_lock;
        *self.cache_structure.write() = new_cache;
        *self.subchannel.write() = new_sub;
        let mut conns = self.conns.lock();
        for d in &members {
            if let Some(fm) = conns.get_mut(&d.system()) {
                fm.lock_conn = d.irlm().conn();
                fm.cache_conn = d.buffers().conn_id();
            }
        }
        Ok(())
    }

    /// Lock-table entry count of the structure currently in use.
    pub fn lock_entries(&self) -> usize {
        self.lock_entries.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Grow the CF lock table online (adaptive sizing against false
    /// contention, §3.3.1): a quiesced group-wide rebuild into a fresh
    /// structure with `new_entries` entries on `cf` — the hosting CF; a
    /// resize does not migrate CFs — reusing the §3.3 rebuild machinery,
    /// so every live lock and persistent record is rehashed against the
    /// new geometry and nothing is lost or duplicated. Parked (lazily
    /// released) interest is not re-created. Lock-structure duplexing is
    /// dropped by the rebuild; re-enable it afterwards if desired.
    pub fn resize_lock_table(&self, cf: &CouplingFacility, new_entries: usize) -> DbResult<()> {
        let generation = self.generation.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
        let members = self.members();
        let new_lock = cf.allocate_lock_structure(
            &format!("DSG_LOCK1_G{generation}"),
            LockParams::with_entries(new_entries),
        )?;
        let new_sub = cf.subchannel();
        let irlms: Vec<_> = members.iter().map(|d| Arc::clone(d.irlm())).collect();
        Irlm::resize_all(&irlms, Arc::clone(&new_lock), &new_sub)?;
        *self.lock_structure.write() = new_lock;
        self.lock_entries.store(new_entries, std::sync::atomic::Ordering::Relaxed);
        *self.secondary_lock.lock() = None;
        let mut conns = self.conns.lock();
        for d in &members {
            if let Some(fm) = conns.get_mut(&d.system()) {
                fm.lock_conn = d.irlm().conn();
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for DataSharingGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataSharingGroup").field("members", &self.members.lock().len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DbError;
    use sysplex_core::facility::CfConfig;
    use sysplex_dasd::volume::IoModel;

    fn group() -> Arc<DataSharingGroup> {
        let cf = CouplingFacility::new(CfConfig::named("CF01"));
        let farm = DasdFarm::new(IoModel::instant());
        let timer = SysplexTimer::new();
        let xcf = Xcf::new(Arc::clone(&timer));
        // Tests break deadlocks fast; production keeps the longer default.
        let mut config = GroupConfig::default();
        config.db.lock_timeout = std::time::Duration::from_millis(150);
        DataSharingGroup::new(config, &cf, farm, timer, xcf).unwrap()
    }

    #[test]
    fn two_members_share_reads_and_writes() {
        let g = group();
        let a = g.add_member(SystemId::new(0)).unwrap();
        let b = g.add_member(SystemId::new(1)).unwrap();

        // a writes, b reads — directly, concurrently, with integrity.
        a.run(0, |db, txn| {
            db.write(txn, 100, Some(b"balance=500"))?;
            db.write(txn, 200, Some(b"balance=700"))
        })
        .unwrap();
        let v = b.run(0, |db, txn| db.read(txn, 100)).unwrap();
        assert_eq!(v.unwrap(), b"balance=500");

        // b updates the same record; a sees the new value (coherency).
        b.run(0, |db, txn| db.write(txn, 100, Some(b"balance=450"))).unwrap();
        let v = a.run(0, |db, txn| db.read(txn, 100)).unwrap();
        assert_eq!(v.unwrap(), b"balance=450");
        g.remove_member(SystemId::new(0));
        g.remove_member(SystemId::new(1));
    }

    #[test]
    fn conflicting_writers_serialize_or_time_out() {
        let g = group();
        let a = g.add_member(SystemId::new(0)).unwrap();
        let b = g.add_member(SystemId::new(1)).unwrap();
        let mut ta = a.begin();
        a.write(&mut ta, 5, Some(b"from-a")).unwrap();
        // b cannot write the same record while a holds the X lock.
        let mut tb = b.begin();
        let err = b.write(&mut tb, 5, Some(b"from-b"));
        assert!(matches!(err, Err(DbError::LockTimeout { .. })));
        b.abort(&mut tb).unwrap();
        a.commit(&mut ta).unwrap();
        // Now b can.
        b.run(0, |db, txn| db.write(txn, 5, Some(b"from-b"))).unwrap();
        let v = a.run(0, |db, txn| db.read(txn, 5)).unwrap();
        assert_eq!(v.unwrap(), b"from-b");
        g.remove_member(SystemId::new(0));
        g.remove_member(SystemId::new(1));
    }

    #[test]
    fn crash_mid_transaction_backs_out_and_frees_locks() {
        let g = group();
        let a = g.add_member(SystemId::new(0)).unwrap();
        let b = g.add_member(SystemId::new(1)).unwrap();

        // Committed baseline.
        a.run(0, |db, txn| db.write(txn, 10, Some(b"committed"))).unwrap();
        g.members().iter().for_each(|m| {
            m.buffers().castout(100).unwrap();
        });

        // a dies mid-transaction, after staging + partially committing:
        // emulate the worst case by running the commit steps manually up
        // to page externalisation but not the commit record.
        let mut ta = a.begin();
        a.write(&mut ta, 10, Some(b"uncommitted")).unwrap();
        // Force the WAL and externalise the page like commit would…
        a.log().append(crate::log::LogRecord::Update {
            lsn: g.timer.tod(),
            txn: ta.id(),
            page: g.store.page_of(10),
            key: 10,
            before: Some(b"committed".to_vec()),
            after: Some(b"uncommitted".to_vec()),
        });
        a.log().force().unwrap();
        let page_no = g.store.page_of(10);
        let mut page = a.buffers().get_page(page_no).unwrap();
        page.set(10, b"uncommitted");
        a.buffers().put_page(page_no, &page).unwrap();
        // …and crash before the commit record.
        let failed = g.crash_member(SystemId::new(0)).unwrap();

        // The record is protected by the retained lock.
        let mut tb = b.begin();
        assert!(matches!(b.write(&mut tb, 10, Some(b"x")), Err(DbError::LockTimeout { .. })));
        b.abort(&mut tb).unwrap();

        // Peer recovery backs it out.
        let report = g.recover_on(SystemId::new(1), &failed).unwrap();
        assert_eq!(report.backed_out_txns, 1);
        assert_eq!(report.undone_updates, 1);
        assert!(report.retained_released >= 1);

        // The committed value is visible and writable again.
        let v = b.run(0, |db, txn| db.read(txn, 10)).unwrap();
        assert_eq!(v.unwrap(), b"committed");
        b.run(0, |db, txn| db.write(txn, 10, Some(b"post-recovery"))).unwrap();
        g.remove_member(SystemId::new(1));
    }

    #[test]
    fn lock_table_resize_preserves_held_and_retained_locks() {
        use crate::irlm::LockOutcome;
        use sysplex_core::lock::LockMode;
        let cf = CouplingFacility::new(CfConfig::named("CF01"));
        let farm = DasdFarm::new(IoModel::instant());
        let timer = SysplexTimer::new();
        let xcf = Xcf::new(Arc::clone(&timer));
        let mut config = GroupConfig::default();
        config.lock_entries = 64; // heavy collisions before the grow
        config.db.lock_timeout = std::time::Duration::from_millis(100);
        let g = DataSharingGroup::new(config, &cf, farm, timer, xcf).unwrap();
        let a = g.add_member(SystemId::new(0)).unwrap();
        let b = g.add_member(SystemId::new(1)).unwrap();
        let (ia, ib) = (a.irlm(), b.irlm());
        let resources: Vec<Vec<u8>> = (0..20).map(|k| format!("RES.{k:02}").into_bytes()).collect();
        for (k, r) in resources.iter().enumerate() {
            assert_eq!(ia.lock(1, r, LockMode::Exclusive, k % 2 == 0).unwrap(), LockOutcome::Granted);
        }
        // Parked interest (held-no-waiter) on top, to prove the quiesce
        // rule: parked interest is surrendered by the resize, not carried.
        ia.lock(2, b"PARKED.1", LockMode::Exclusive, false).unwrap();
        ia.unlock(2, b"PARKED.1").unwrap();

        g.resize_lock_table(&cf, 1024).unwrap();
        assert_eq!(g.lock_entries(), 1024);
        let s = g.lock_structure();
        assert_eq!(s.entries(), 1024);

        // No lost locks: every held resource still repels a foreign writer.
        for r in &resources {
            assert_eq!(ib.lock(9, r, LockMode::Exclusive, false).unwrap(), LockOutcome::Busy, "{r:?}");
        }
        // No duplicated or orphaned interest: a's entry set is exactly the
        // rehash of its held resources (the parked entry is gone).
        let mut expected: Vec<usize> = resources.iter().map(|r| s.hash_resource(r)).collect();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(s.interest_entries(ia.conn()), expected);
        // Persistent records carried over exactly (the 10 even-indexed).
        assert_eq!(s.records_snapshot().len(), 10);
        // Parked resource is free for the taking now.
        assert_eq!(ib.lock(9, b"PARKED.1", LockMode::Exclusive, false).unwrap(), LockOutcome::Granted);

        // And everything unwinds cleanly through the new structure.
        ia.unlock_all(1).unwrap();
        assert_eq!(s.records_snapshot().len(), 0);
        for r in &resources {
            assert_eq!(ib.lock(9, r, LockMode::Exclusive, false).unwrap(), LockOutcome::Granted, "{r:?}");
        }
        g.remove_member(SystemId::new(0));
        g.remove_member(SystemId::new(1));
    }

    #[test]
    fn concurrent_transfers_conserve_total() {
        // Short deadlock-breaker timeout + generous retries: transfers
        // deadlock legitimately (S-read then X-upgrade on both sides) and
        // must resolve by abort-and-rerun even on a loaded host.
        let cf = CouplingFacility::new(CfConfig::named("CF01"));
        let farm = DasdFarm::new(IoModel::instant());
        let timer = SysplexTimer::new();
        let xcf = Xcf::new(Arc::clone(&timer));
        let mut config = GroupConfig::default();
        config.db.lock_timeout = std::time::Duration::from_millis(100);
        let g = DataSharingGroup::new(config, &cf, farm, timer, xcf).unwrap();
        let members: Vec<Arc<Database>> = (0..3).map(|i| g.add_member(SystemId::new(i)).unwrap()).collect();
        // 10 accounts with 100 units each.
        members[0]
            .run(0, |db, txn| {
                for acct in 0..10u64 {
                    db.write(txn, acct, Some(&100i64.to_be_bytes()))?;
                }
                Ok(())
            })
            .unwrap();
        let mut handles = Vec::new();
        for (i, m) in members.iter().enumerate() {
            let m = Arc::clone(m);
            handles.push(std::thread::spawn(move || {
                let mut rng: u64 = 0x9E3779B97F4A7C15u64.wrapping_mul(i as u64 + 1) | 1;
                let mut next = move || {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    rng
                };
                for _ in 0..30 {
                    let from = next() % 10;
                    let to = next() % 10;
                    if from == to {
                        continue;
                    }
                    m.run(1000, |db, txn| {
                        // Lock in key order to avoid deadlocks.
                        let (lo, hi) = if from < to { (from, to) } else { (to, from) };
                        let lo_v = i64::from_be_bytes(db.read(txn, lo)?.unwrap().try_into().unwrap());
                        let hi_v = i64::from_be_bytes(db.read(txn, hi)?.unwrap().try_into().unwrap());
                        let (mut f_v, mut t_v) = if lo == from { (lo_v, hi_v) } else { (hi_v, lo_v) };
                        f_v -= 7;
                        t_v += 7;
                        let (lo_n, hi_n) = if lo == from { (f_v, t_v) } else { (t_v, f_v) };
                        db.write(txn, lo, Some(&lo_n.to_be_bytes()))?;
                        db.write(txn, hi, Some(&hi_n.to_be_bytes()))
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: i64 = members[0]
            .run(0, |db, txn| {
                let mut sum = 0i64;
                for acct in 0..10u64 {
                    sum += i64::from_be_bytes(db.read(txn, acct)?.unwrap().try_into().unwrap());
                }
                Ok(sum)
            })
            .unwrap();
        assert_eq!(total, 1000, "money conserved under cross-system concurrency");
        for i in 0..3 {
            g.remove_member(SystemId::new(i));
        }
    }
}
