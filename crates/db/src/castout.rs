//! The castout daemon — background destaging of changed group-buffer data.
//!
//! §3.3.2's store-in model leaves committed pages as *changed data* in the
//! CF until somebody writes them to DASD. In DB2 this is the castout
//! engine; here a small per-member daemon sweeps periodically, and — once
//! its member is idle — checkpoints the member's log, bounding both the
//! group buffer's changed-data footprint and the log length recovery would
//! have to scan.

use crate::database::Database;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Daemon tuning.
#[derive(Debug, Clone, Copy)]
pub struct CastoutConfig {
    /// Sweep interval.
    pub interval: Duration,
    /// Max pages destaged per sweep.
    pub batch: usize,
    /// Also checkpoint the log when the member is idle.
    pub checkpoint: bool,
}

impl Default for CastoutConfig {
    fn default() -> Self {
        CastoutConfig { interval: Duration::from_millis(20), batch: 256, checkpoint: true }
    }
}

/// A running castout daemon for one database member.
pub struct CastoutDaemon {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    /// Pages destaged since start.
    pub pages_cast_out: Arc<AtomicU64>,
    /// Log checkpoints taken since start.
    pub checkpoints: Arc<AtomicU64>,
}

impl CastoutDaemon {
    /// Start sweeping on behalf of `db`.
    pub fn start(db: Arc<Database>, config: CastoutConfig) -> CastoutDaemon {
        let stop = Arc::new(AtomicBool::new(false));
        let pages = Arc::new(AtomicU64::new(0));
        let checkpoints = Arc::new(AtomicU64::new(0));
        let handle = {
            let stop = Arc::clone(&stop);
            let pages = Arc::clone(&pages);
            let checkpoints = Arc::clone(&checkpoints);
            std::thread::Builder::new()
                .name(format!("castout-{}", db.system()))
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        if let Ok(n) = db.buffers().castout(config.batch) {
                            pages.fetch_add(n as u64, Ordering::Relaxed);
                        }
                        if config.checkpoint {
                            if let Ok(true) = db.checkpoint_if_idle() {
                                checkpoints.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        std::thread::sleep(config.interval);
                    }
                })
                .expect("spawn castout daemon")
        };
        CastoutDaemon { stop, handle: Some(handle), pages_cast_out: pages, checkpoints }
    }

    /// Stop the daemon (joins the sweep thread).
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for CastoutDaemon {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for CastoutDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CastoutDaemon")
            .field("pages_cast_out", &self.pages_cast_out.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::{DataSharingGroup, GroupConfig};
    use sysplex_core::facility::{CfConfig, CouplingFacility};
    use sysplex_core::SystemId;
    use sysplex_dasd::farm::DasdFarm;
    use sysplex_dasd::volume::IoModel;
    use sysplex_services::timer::SysplexTimer;
    use sysplex_services::xcf::Xcf;

    fn group() -> Arc<DataSharingGroup> {
        let cf = CouplingFacility::new(CfConfig::named("CF01"));
        let farm = DasdFarm::new(IoModel::instant());
        let timer = SysplexTimer::new();
        let xcf = Xcf::new(Arc::clone(&timer));
        DataSharingGroup::new(GroupConfig::default(), &cf, farm, timer, xcf).unwrap()
    }

    #[test]
    fn daemon_drains_changed_pages_and_checkpoints() {
        let g = group();
        let db = g.add_member(SystemId::new(0)).unwrap();
        let daemon = CastoutDaemon::start(
            Arc::clone(&db),
            CastoutConfig { interval: Duration::from_millis(5), batch: 64, checkpoint: true },
        );
        db.run(10, |db, txn| {
            for k in 0..30u64 {
                db.write(txn, k, Some(b"dirty"))?;
            }
            Ok(())
        })
        .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while (g.cache_structure().changed_count() > 0 || db.log().durable_count() > 0)
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(g.cache_structure().changed_count(), 0, "changed data destaged");
        assert_eq!(db.log().durable_count(), 0, "log checkpointed once idle");
        assert!(daemon.pages_cast_out.load(Ordering::Relaxed) > 0);
        assert!(daemon.checkpoints.load(Ordering::Relaxed) > 0);
        // DASD caught up.
        let page = g.store.page_of(7);
        assert_eq!(g.store.read_page(0, page).unwrap().get(7).unwrap(), b"dirty");
        daemon.stop();
        g.remove_member(SystemId::new(0));
    }

    #[test]
    fn checkpoint_waits_for_open_transactions() {
        let g = group();
        let db = g.add_member(SystemId::new(0)).unwrap();
        db.run(10, |db, txn| db.write(txn, 1, Some(b"x"))).unwrap();
        assert!(db.log().durable_count() > 0);
        // Hold a transaction open: checkpoint must refuse.
        let mut open = db.begin();
        db.write(&mut open, 2, Some(b"y")).unwrap();
        assert!(!db.checkpoint_if_idle().unwrap());
        db.commit(&mut open).unwrap();
        assert!(db.checkpoint_if_idle().unwrap());
        assert_eq!(db.log().durable_count(), 0);
        g.remove_member(SystemId::new(0));
    }
}
