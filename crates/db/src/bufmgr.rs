//! The coherent local buffer pool — §3.3.2's protocol, end to end.
//!
//! Each system's [`BufferManager`] owns a pool of page frames; frame *i* is
//! permanently associated with bit *i* of the system's local bit vector.
//! The read path is exactly the paper's:
//!
//! 1. Hit + valid bit → return the local copy. **No CF access** — this is
//!    the nanosecond path that makes local caching of shared data viable.
//! 2. Hit + invalid bit → a peer updated the page; re-register with the CF
//!    and refresh from the CF's global copy (µs) or, failing that, DASD
//!    (ms).
//! 3. Miss → register and read from CF or DASD into a (possibly stolen)
//!    frame.
//!
//! Writes go to the CF as **changed data** (store-in): one command updates
//! the global copy and cross-invalidates every registered peer. A castout
//! sweep later destages changed pages to DASD.

use crate::error::{DbError, DbResult};
use crate::pagestore::{Page, PageStore};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use sysplex_core::cache::{BlockName, CacheStructure, WriteKind};
use sysplex_core::connection::{CacheConnection, CfSubchannel};
use sysplex_core::stats::Counter;
use sysplex_core::trace::TraceEvent;
use sysplex_core::{CfError, SystemId};

/// Counters published by a buffer manager.
#[derive(Debug, Default)]
pub struct BufStats {
    /// Reads satisfied by a valid local frame (no CF access).
    pub local_hits: Counter,
    /// Reads that found the local frame cross-invalidated.
    pub coherency_misses: Counter,
    /// Refreshes served by the CF global cache (no DASD I/O).
    pub cf_refreshes: Counter,
    /// Refreshes that had to read DASD.
    pub dasd_reads: Counter,
    /// Page writes (CF write + cross-invalidate).
    pub writes: Counter,
    /// Changed pages cast out to DASD.
    pub castouts: Counter,
}

#[derive(Debug, Default, Clone)]
struct Frame {
    name: Option<BlockName>,
    data: Vec<u8>,
    /// Bumped on every steal. A refresh that began against an earlier
    /// tenant must not install its bytes into the new tenant's frame.
    generation: u64,
    /// CF directory version the current bytes correspond to (monotone
    /// guard against an older refresh overwriting a newer fill).
    version: u64,
    /// The bytes match `name`. False from steal until a fill completes, so
    /// the fast path can never serve a prior tenant's bytes: the local
    /// validity bit alone cannot distinguish "bit set for this page" from
    /// "bit left over / re-set while the frame still holds old data".
    ready: bool,
}

impl Frame {
    /// Evict the tenant but keep the generation counter moving forward.
    fn reset(&mut self) {
        self.name = None;
        self.data.clear();
        self.generation += 1;
        self.version = 0;
        self.ready = false;
    }
}

#[derive(Debug)]
struct PoolInner {
    frames: Vec<Frame>,
    map: HashMap<BlockName, usize>,
    rotor: usize,
}

/// The buffer manager's current CF attachment. Swapped under the rebuild
/// gate when the group buffer is rebuilt into another CF. With duplexing
/// enabled, `secondary` receives a copy of every changed-data write, so a
/// CF loss fails over with the changed data intact (no destage needed).
#[derive(Debug, Clone)]
struct CacheTarget {
    conn: CacheConnection,
    secondary: Option<CacheConnection>,
}

/// A per-system buffer pool coherent across the data-sharing group.
pub struct BufferManager {
    system: SystemId,
    /// Current structure + connection; reads hold the read guard, group
    /// buffer rebuild holds the write guard (quiescing CF traffic).
    cf: RwLock<CacheTarget>,
    store: Arc<PageStore>,
    frame_count: usize,
    // One latch for the pool: the protected work is pointer-sized and the
    // expensive operations (CF commands, DASD reads) happen with the CF's
    // own synchronisation, re-validated against the bit vector afterwards.
    inner: Mutex<PoolInner>,
    /// Published counters.
    pub stats: BufStats,
}

impl BufferManager {
    /// Connect a pool of `frames` frames to the cache structure through
    /// `sub` (the unified CF command path).
    pub fn new(
        system: SystemId,
        cache: &Arc<CacheStructure>,
        sub: CfSubchannel,
        store: Arc<PageStore>,
        frames: usize,
    ) -> DbResult<Self> {
        assert!(frames > 0);
        let conn = CacheConnection::attach(cache, sub, frames)?;
        Ok(BufferManager {
            system,
            cf: RwLock::new(CacheTarget { conn, secondary: None }),
            store,
            frame_count: frames,
            inner: Mutex::new(PoolInner {
                frames: vec![Frame::default(); frames],
                map: HashMap::new(),
                rotor: 0,
            }),
            stats: BufStats::default(),
        })
    }

    /// The cache-structure connector slot (recovery bookkeeping).
    pub fn conn_id(&self) -> sysplex_core::ConnId {
        self.cf.read().conn.conn_id()
    }

    /// Read a page image, coherently.
    pub fn get_image(&self, page: u64) -> DbResult<Vec<u8>> {
        let name = self.store.block_name(page);
        let cf = self.cf.read();
        loop {
            // Fast path: valid local frame. The validity test is a local
            // bit-vector load — never a CF command. `ready` guards the
            // steal window: a set bit over a frame whose fill has not
            // completed must not serve the prior tenant's bytes.
            {
                let inner = self.inner.lock();
                if let Some(&idx) = inner.map.get(&name) {
                    if inner.frames[idx].ready && cf.conn.is_valid_block(idx as u32, name) {
                        self.stats.local_hits.incr();
                        cf.conn.subchannel().emit(TraceEvent::BufRead { page, local_hit: true });
                        return Ok(inner.frames[idx].data.clone());
                    }
                }
            }
            // Slow path: (re-)register and refresh.
            if let Some(image) = self.refresh(&cf, page, name)? {
                return Ok(image);
            }
            // A racing peer write invalidated us mid-refresh; go again.
        }
    }

    /// Read and decode a page, coherently.
    pub fn get_page(&self, page: u64) -> DbResult<Page> {
        Page::decode(&self.get_image(page)?, page)
    }

    fn frame_for(&self, cf: &CacheTarget, name: BlockName) -> (usize, u64) {
        let mut inner = self.inner.lock();
        if let Some(&idx) = inner.map.get(&name) {
            return (idx, inner.frames[idx].generation);
        }
        // Steal the next frame round-robin.
        let idx = inner.rotor % inner.frames.len();
        inner.rotor += 1;
        let (old, generation) = {
            let f = &mut inner.frames[idx];
            let old = f.name.take();
            f.reset();
            f.name = Some(name);
            (old, f.generation)
        };
        if let Some(old) = old {
            inner.map.remove(&old);
            // Scrub the frame's validity bit BEFORE the new tenant
            // registers: the bit may still be set for the old tenant, and a
            // set bit over not-yet-filled bytes is exactly the read-skew
            // window (a reader would serve the old tenant's bytes as the
            // new page).
            cf.conn.invalidate_local(idx as u32);
            let _ = cf.conn.unregister(old);
            if let Some(page) = self.store.page_of_block(&old) {
                cf.conn.subchannel().emit(TraceEvent::BufSteal { frame: idx as u64, page });
            }
        }
        inner.map.insert(name, idx);
        (idx, generation)
    }

    /// Register interest and refill the frame. Returns `None` when a
    /// concurrent peer write invalidated the frame again before we
    /// finished (caller retries).
    fn refresh(&self, cf: &CacheTarget, page: u64, name: BlockName) -> DbResult<Option<Vec<u8>>> {
        let (idx, generation) = self.frame_for(cf, name);
        let reg = cf.conn.register_read(name, idx as u32)?;
        let image = match reg.data {
            Some(d) => {
                self.stats.cf_refreshes.incr();
                cf.conn.subchannel().emit(TraceEvent::BufRefresh { page, from_cf: true });
                (*d).clone()
            }
            None => {
                self.stats.dasd_reads.incr();
                let img = self.store.read_image(self.system.0, page)?;
                cf.conn.subchannel().emit(TraceEvent::BufRefresh { page, from_cf: false });
                // If a peer wrote while we were at the disk, our bit is
                // already clear and this (possibly stale) image must not be
                // served.
                if !cf.conn.is_valid(idx as u32) {
                    self.stats.coherency_misses.incr();
                    return Ok(None);
                }
                img
            }
        };
        {
            let mut inner = self.inner.lock();
            match inner.frames.get_mut(idx) {
                // Install only into the same tenancy this refresh began
                // against, and never over a newer version: a slower refresh
                // must not roll the frame back below what a concurrent
                // (re-)fill already installed.
                Some(f) if f.generation == generation && f.name == Some(name) && reg.version >= f.version => {
                    f.data = image.clone();
                    f.version = reg.version;
                    f.ready = true;
                }
                // Same tenant but a newer fill won: serve the newer bytes.
                Some(f) if f.generation == generation && f.name == Some(name) && f.ready => {
                    let newer = f.data.clone();
                    drop(inner);
                    if !cf.conn.is_valid(idx as u32) {
                        self.stats.coherency_misses.incr();
                        return Ok(None);
                    }
                    return Ok(Some(newer));
                }
                // Frame re-stolen mid-refresh: retry from the top.
                _ => {
                    self.stats.coherency_misses.incr();
                    return Ok(None);
                }
            }
        }
        if !cf.conn.is_valid(idx as u32) {
            self.stats.coherency_misses.incr();
            return Ok(None);
        }
        Ok(Some(image))
    }

    /// Write a page image: local frame + CF changed-data write with
    /// cross-invalidation of all registered peers. The caller must hold
    /// page serialization (the P-lock).
    pub fn put_image(&self, page: u64, image: &[u8]) -> DbResult<()> {
        let name = self.store.block_name(page);
        let cf = self.cf.read();
        let (idx, generation) = self.frame_for(&cf, name);
        // Register so the CF tracks us as a current holder.
        cf.conn.register_read(name, idx as u32)?;
        // CF write first: the returned directory version orders this image
        // against concurrent refreshes of the same frame.
        let w = cf.conn.write_invalidate(name, image, WriteKind::ChangedData)?;
        {
            let mut inner = self.inner.lock();
            if let Some(f) = inner.frames.get_mut(idx) {
                if f.generation == generation && f.name == Some(name) && w.version >= f.version {
                    f.data = image.to_vec();
                    f.version = w.version;
                    f.ready = true;
                }
            }
        }
        if let Some(sec) = &cf.secondary {
            // Duplexed write: the secondary holds no registrations (it is
            // a data vault, not a coherency point), so this is a pure
            // changed-data store.
            sec.write_invalidate(name, image, WriteKind::ChangedData)?;
        }
        self.stats.writes.incr();
        Ok(())
    }

    /// Encode and write a page.
    pub fn put_page(&self, page: u64, p: &Page) -> DbResult<()> {
        self.put_image(page, &p.encode())
    }

    /// Destage up to `max` changed pages to DASD. Returns how many were
    /// cast out. Any member of the group can run this — including for
    /// pages a failed member left behind.
    pub fn castout(&self, max: usize) -> DbResult<usize> {
        let cf = self.cf.read();
        self.castout_inner(&cf, max)
    }

    fn castout_inner(&self, cf: &CacheTarget, max: usize) -> DbResult<usize> {
        let mut done = 0;
        for name in cf.conn.castout_candidates(max)? {
            let Some(page) = self.store.page_of_block(&name) else { continue };
            let (data, version) = match cf.conn.castout_read(name) {
                Ok(x) => x,
                Err(CfError::NoSuchEntry) => continue, // raced with another castout
                Err(e) => return Err(e.into()),
            };
            self.store.write_image(self.system.0, page, &data)?;
            match cf.conn.castout_complete(name, version) {
                Ok(()) | Err(CfError::VersionMismatch { .. }) => {}
                Err(e) => return Err(e.into()),
            }
            if let Some(sec) = &cf.secondary {
                // Clear the duplexed copy's changed state too.
                if let Ok((_, v)) = sec.castout_read(name) {
                    let _ = sec.castout_complete(name, v);
                }
            }
            done += 1;
            self.stats.castouts.incr();
            cf.conn.subchannel().emit(TraceEvent::BufCastout { page });
        }
        Ok(done)
    }

    /// Whether group-buffer duplexing is active.
    pub fn is_duplexed(&self) -> bool {
        self.cf.read().secondary.is_some()
    }

    /// Enable group-buffer duplexing: attach every member to `secondary`
    /// and copy the primary's current changed data into it, after which
    /// every changed-data write is mirrored.
    pub fn enable_duplexing(
        managers: &[&BufferManager],
        secondary: Arc<CacheStructure>,
        sub: &CfSubchannel,
    ) -> DbResult<()> {
        let mut guards: Vec<_> = managers.iter().map(|m| m.cf.write()).collect();
        // Attach all members first.
        let sec_conns: Vec<CacheConnection> = managers
            .iter()
            // Bind each mirror connection to its member's system so the
            // secondary's trace traffic is attributed to the writer, not
            // to the facility ring.
            .map(|m| CacheConnection::attach(&secondary, sub.clone().with_system(m.system), m.frame_count))
            .collect::<Result<_, _>>()?;
        // One member copies the existing changed data across (a bulk
        // rebuild copy: asynchronous on both subchannels).
        if let (Some(guard), Some(sec_conn)) = (guards.first(), sec_conns.first()) {
            for name in guard.conn.castout_candidates(usize::MAX >> 1)? {
                if let Ok((data, _)) = guard.conn.castout_read(name) {
                    sec_conn.write_invalidate(name, &data, WriteKind::ChangedData)?;
                }
            }
        }
        for (guard, sec_conn) in guards.iter_mut().zip(sec_conns) {
            guard.secondary = Some(sec_conn);
        }
        Ok(())
    }

    /// The primary CF is gone: promote the secondary on every member.
    /// Changed data is already there; local pools are invalidated (their
    /// registrations died with the primary directory).
    pub fn failover_all(managers: &[&BufferManager]) -> DbResult<()> {
        let mut guards: Vec<_> = managers.iter().map(|m| m.cf.write()).collect();
        for (manager, guard) in managers.iter().zip(guards.iter_mut()) {
            let Some(old_sec) = guard.secondary.take() else {
                return Err(DbError::Cf(CfError::WrongModel));
            };
            // Reconnect for a fresh registration vector on the promoted
            // structure (the duplex-time connection carried no
            // registrations).
            let promoted = Arc::clone(old_sec.structure());
            let _ = old_sec.detach();
            let conn = old_sec.reattach(&promoted, manager.frame_count)?;
            {
                let mut inner = manager.inner.lock();
                inner.map.clear();
                for f in inner.frames.iter_mut() {
                    f.reset();
                }
            }
            guard.conn = conn;
        }
        Ok(())
    }

    /// Rebuild the group buffer of a whole data-sharing group into a fresh
    /// cache structure (planned CF maintenance / CF failure).
    ///
    /// Protocol: quiesce every member's CF cache traffic, destage all
    /// changed data from the old structure to DASD (so the new structure
    /// starts clean and DASD is the source of truth), then reconnect every
    /// member and invalidate its local pool.
    pub fn rebuild_all(
        managers: &[&BufferManager],
        new: Arc<CacheStructure>,
        sub: &CfSubchannel,
    ) -> DbResult<()> {
        let mut guards: Vec<_> = managers.iter().map(|m| m.cf.write()).collect();
        // Drain changed data through the first member's old attachment.
        if let (Some(first), Some(guard)) = (managers.first(), guards.first()) {
            while guard.conn.structure().changed_count() > 0 {
                if first.castout_inner(guard, 1024)? == 0 {
                    break;
                }
            }
        }
        for (manager, guard) in managers.iter().zip(guards.iter_mut()) {
            let _ = guard.conn.detach();
            let conn = CacheConnection::attach(&new, sub.clone(), manager.frame_count)?;
            {
                let mut inner = manager.inner.lock();
                inner.map.clear();
                for f in inner.frames.iter_mut() {
                    f.reset();
                }
            }
            guard.conn = conn;
            guard.secondary = None;
        }
        Ok(())
    }

    /// Orderly detach.
    pub fn detach(&self) {
        let cf = self.cf.read();
        let _ = cf.conn.detach();
    }
}

impl std::fmt::Debug for BufferManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferManager").field("system", &self.system).field("conn", &self.conn_id()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use sysplex_core::cache::CacheParams;
    use sysplex_core::connection::LinkFault;
    use sysplex_core::facility::{CfConfig, CouplingFacility};
    use sysplex_dasd::farm::DasdFarm;
    use sysplex_dasd::volume::IoModel;

    struct Rig {
        cf: Arc<CouplingFacility>,
        cache: Arc<CacheStructure>,
        store: Arc<PageStore>,
    }

    fn rig() -> Rig {
        let farm = DasdFarm::new(IoModel::instant());
        farm.add_volume("DB0001", 128, 4).unwrap();
        let store = PageStore::new(farm, "DB0001", 1, 128);
        let cf = CouplingFacility::new(CfConfig::named("CF01"));
        let cache = cf.allocate_cache_structure("GBP0", CacheParams::store_in(256)).unwrap();
        Rig { cf, cache, store }
    }

    fn bm(r: &Rig, sys: u8) -> BufferManager {
        BufferManager::new(SystemId::new(sys), &r.cache, r.cf.subchannel(), Arc::clone(&r.store), 32).unwrap()
    }

    #[test]
    fn cold_read_hits_dasd_then_local() {
        let r = rig();
        let mut page = Page::new();
        page.set(5, b"five");
        r.store.write_image(0, 5, &page.encode()).unwrap();
        let a = bm(&r, 0);
        assert_eq!(a.get_page(5).unwrap().get(5).unwrap(), b"five");
        assert_eq!(a.stats.dasd_reads.get(), 1);
        // Second read: pure local hit.
        a.get_page(5).unwrap();
        assert_eq!(a.stats.local_hits.get(), 1);
        assert_eq!(a.stats.dasd_reads.get(), 1);
    }

    #[test]
    fn peer_write_invalidates_and_refreshes_from_cf_not_dasd() {
        let r = rig();
        let a = bm(&r, 0);
        let b = bm(&r, 1);
        a.get_page(7).unwrap(); // registers a
        let mut p = Page::new();
        p.set(7, b"from-b");
        b.put_page(7, &p).unwrap();
        // a's next read must see b's version, served from the CF.
        let before_dasd = a.stats.dasd_reads.get();
        assert_eq!(a.get_page(7).unwrap().get(7).unwrap(), b"from-b");
        assert_eq!(a.stats.dasd_reads.get(), before_dasd, "refresh came from the CF global cache");
        assert!(a.stats.cf_refreshes.get() >= 1);
    }

    #[test]
    fn castout_destages_to_dasd() {
        let r = rig();
        let a = bm(&r, 0);
        let mut p = Page::new();
        p.set(3, b"dirty");
        a.put_page(3, &p).unwrap();
        assert_eq!(r.cache.changed_count(), 1);
        assert_eq!(a.castout(16).unwrap(), 1);
        assert_eq!(r.cache.changed_count(), 0);
        // DASD now has the current image.
        assert_eq!(r.store.read_page(0, 3).unwrap().get(3).unwrap(), b"dirty");
    }

    #[test]
    fn survivor_casts_out_failed_members_pages() {
        let r = rig();
        let a = bm(&r, 0);
        let b = bm(&r, 1);
        let mut p = Page::new();
        p.set(9, b"orphaned");
        a.put_page(9, &p).unwrap();
        // a "fails": disconnect by id, as recovery would.
        r.cache.disconnect_by_id(a.conn_id()).unwrap();
        assert_eq!(b.castout(16).unwrap(), 1, "survivor destages the orphaned page");
        assert_eq!(r.store.read_page(1, 9).unwrap().get(9).unwrap(), b"orphaned");
    }

    #[test]
    fn frame_steal_recycles_pool() {
        let r = rig();
        let a = BufferManager::new(SystemId::new(0), &r.cache, r.cf.subchannel(), Arc::clone(&r.store), 4)
            .unwrap();
        for page in 0..16 {
            a.get_page(page).unwrap();
        }
        // All 16 pages were readable through only 4 frames.
        assert!(a.stats.dasd_reads.get() >= 16);
        // Re-reading the most recent page is still a hit.
        a.get_page(15).unwrap();
        assert_eq!(a.stats.local_hits.get(), 1);
    }

    /// Deterministic reproduction of the decision_support read skew: with a
    /// 1-frame pool, a steal reassigns the frame to page 2 while the fill is
    /// stalled on the coupling link. A concurrent reader of page 2 must not
    /// be served page 1's bytes out of the half-reassigned frame (the old
    /// code's fast path trusted the stale local validity bit; the frame's
    /// `ready` flag plus the steal-time `invalidate_local` close the window).
    #[test]
    fn stolen_frame_never_serves_prior_tenants_bytes() {
        let r = rig();
        let mut p1 = Page::new();
        p1.set(1, b"one");
        r.store.write_image(0, 1, &p1.encode()).unwrap();
        let mut p2 = Page::new();
        p2.set(2, b"two");
        r.store.write_image(0, 2, &p2.encode()).unwrap();
        let a = Arc::new(
            BufferManager::new(SystemId::new(0), &r.cache, r.cf.subchannel(), Arc::clone(&r.store), 1)
                .unwrap(),
        );
        // Fill the single frame with page 1 (sets its validity bit).
        assert_eq!(a.get_page(1).unwrap().get(1).unwrap(), b"one");
        // Stall the stealing reader's two commands: the old tenant's
        // unregister briefly, then its register of page 2 for long enough
        // that the main thread reads mid-fill.
        r.cf.inject_fault(LinkFault::Delay(Duration::from_millis(1)));
        r.cf.inject_fault(LinkFault::Delay(Duration::from_millis(150)));
        let t = {
            let a = Arc::clone(&a);
            std::thread::spawn(move || a.get_page(2).unwrap())
        };
        // Land inside the register delay: the map already says page 2 →
        // frame 0, but the frame still holds page 1's bytes.
        std::thread::sleep(Duration::from_millis(40));
        let main_read = a.get_page(2).unwrap();
        assert_eq!(main_read.get(2).unwrap(), b"two", "read-skew: served prior tenant's bytes");
        assert_eq!(t.join().unwrap().get(2).unwrap(), b"two");
    }

    #[test]
    fn concurrent_reader_never_sees_stale_data() {
        let r = rig();
        let writer = Arc::new(bm(&r, 0));
        let reader = Arc::new(bm(&r, 1));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let w = {
            let writer = Arc::clone(&writer);
            std::thread::spawn(move || {
                for i in 0..300u64 {
                    let mut p = Page::new();
                    p.set(1, &i.to_be_bytes());
                    writer.put_page(1, &p).unwrap();
                }
            })
        };
        let rd = {
            let reader = Arc::clone(&reader);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    let p = reader.get_page(1).unwrap();
                    if let Some(v) = p.get(1) {
                        let v = u64::from_be_bytes(v.try_into().unwrap());
                        assert!(v >= last, "monotone: saw {v} after {last}");
                        last = v;
                    }
                }
                last
            })
        };
        w.join().unwrap();
        stop.store(true, std::sync::atomic::Ordering::Release);
        let last = rd.join().unwrap();
        assert!(last <= 299);
        // Final read agrees with the last write.
        let p = reader.get_page(1).unwrap();
        assert_eq!(u64::from_be_bytes(p.get(1).unwrap().try_into().unwrap()), 299);
    }
}
