//! Error type for the database stack.

use std::fmt;
use std::time::Duration;
use sysplex_core::CfError;
use sysplex_dasd::IoError;

/// Result alias for database operations.
pub type DbResult<T> = Result<T, DbError>;

/// Errors surfaced by the data-sharing database stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A Coupling Facility command failed.
    Cf(CfError),
    /// A DASD I/O failed.
    Io(IoError),
    /// A lock could not be obtained within the deadlock timeout.
    LockTimeout {
        /// The contested resource.
        resource: Vec<u8>,
        /// How long we waited.
        waited: Duration,
    },
    /// The transaction was already completed (commit/abort called twice).
    TxnComplete,
    /// Page image failed to decode (corruption or torn write).
    PageCorrupt(u64),
    /// Log record failed to decode.
    LogCorrupt,
    /// The lock-manager peer negotiation failed (peer gone mid-protocol).
    NegotiationFailed,
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Cf(e) => write!(f, "coupling facility: {e}"),
            DbError::Io(e) => write!(f, "dasd: {e}"),
            DbError::LockTimeout { resource, waited } => {
                write!(f, "lock timeout after {waited:?} on {}", String::from_utf8_lossy(resource))
            }
            DbError::TxnComplete => write!(f, "transaction already complete"),
            DbError::PageCorrupt(p) => write!(f, "page {p} corrupt"),
            DbError::LogCorrupt => write!(f, "log record corrupt"),
            DbError::NegotiationFailed => write!(f, "lock negotiation failed"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<CfError> for DbError {
    fn from(e: CfError) -> Self {
        DbError::Cf(e)
    }
}

impl From<IoError> for DbError {
    fn from(e: IoError) -> Self {
        DbError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let e: DbError = CfError::StructureFull.into();
        assert_eq!(e.to_string(), "coupling facility: structure storage exhausted");
        let e: DbError = IoError::NoPaths.into();
        assert_eq!(e.to_string(), "dasd: no operational channel paths");
        let e = DbError::LockTimeout { resource: b"ROW.7".to_vec(), waited: Duration::from_millis(100) };
        assert!(e.to_string().contains("ROW.7"));
    }
}
