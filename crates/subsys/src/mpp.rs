//! Message-driven processing — IMS-style MPPs over the shared queue.
//!
//! §3.3.3's list structures serve "workload distribution \[and\]
//! inter-system message passing": transactions arrive as messages on a
//! shared queue, and message-processing regions on *any* system claim and
//! execute them. Because a claim is an atomic move onto the consumer's
//! in-flight list, a region (or its whole system) can die mid-message and
//! a peer requeues the orphan — at-least-once execution with no lost work.

use crate::tm::CicsRegion;
use crate::workq::{SharedQueue, WorkItem};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use sysplex_core::connection::CfSubchannel;
use sysplex_core::error::CfResult;
use sysplex_core::list::ListStructure;

/// Encode a queued transaction request.
pub fn encode_message(tran: &str, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + tran.len() + payload.len());
    out.extend_from_slice(&(tran.len() as u16).to_be_bytes());
    out.extend_from_slice(tran.as_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decode a queued transaction request.
pub fn decode_message(data: &[u8]) -> Option<(String, &[u8])> {
    let len = u16::from_be_bytes(data.get(0..2)?.try_into().ok()?) as usize;
    let tran = std::str::from_utf8(data.get(2..2 + len)?).ok()?;
    Some((tran.to_string(), &data[2 + len..]))
}

/// A message-processing region: one consumer loop feeding a transaction
/// manager region.
pub struct MppRegion {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    slot: sysplex_core::ConnId,
    /// Messages processed successfully.
    pub processed: Arc<AtomicU64>,
    /// Messages whose transaction failed (completed and counted — poison
    /// messages must not wedge the queue).
    pub failed: Arc<AtomicU64>,
}

impl MppRegion {
    /// Start consuming `list` into `region`. The consumer claims one
    /// message at a time, executes it on the region's system, and
    /// completes it only after execution — a crash in between leaves the
    /// message on the in-flight list for peers to recover.
    pub fn start(
        list: &Arc<ListStructure>,
        sub: CfSubchannel,
        region: Arc<CicsRegion>,
    ) -> CfResult<MppRegion> {
        let queue = SharedQueue::open(list, sub)?;
        let slot = queue.slot();
        let stop = Arc::new(AtomicBool::new(false));
        let processed = Arc::new(AtomicU64::new(0));
        let failed = Arc::new(AtomicU64::new(0));
        let handle = {
            let stop = Arc::clone(&stop);
            let processed = Arc::clone(&processed);
            let failed = Arc::clone(&failed);
            std::thread::Builder::new()
                .name(format!("mpp-{}", region.system().id()))
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        match queue.take_wait(Duration::from_millis(50)) {
                            Ok(Some(item)) => {
                                Self::process(&queue, &region, &item, &processed, &failed);
                            }
                            Ok(None) => {}
                            Err(_) => break, // structure gone (CF failure handled elsewhere)
                        }
                    }
                })
                .expect("spawn mpp consumer")
        };
        Ok(MppRegion { stop, handle: Some(handle), slot, processed, failed })
    }

    fn process(
        queue: &SharedQueue,
        region: &CicsRegion,
        item: &WorkItem,
        processed: &AtomicU64,
        failed: &AtomicU64,
    ) {
        match decode_message(&item.payload) {
            Some((tran, _payload)) => match region.execute_local(&tran) {
                Ok(_) => {
                    processed.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    failed.fetch_add(1, Ordering::Relaxed);
                }
            },
            None => {
                failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        let _ = queue.complete(item);
    }

    /// The consumer's connector slot (peers recover orphans by slot).
    pub fn slot(&self) -> sysplex_core::ConnId {
        self.slot
    }

    /// Stop consuming (drains the in-flight message first).
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MppRegion {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for MppRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MppRegion")
            .field("slot", &self.slot)
            .field("processed", &self.processed.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tm::TranDef;
    use crate::workq::queue_params;
    use sysplex_core::facility::{CfConfig, CouplingFacility};
    use sysplex_core::SystemId;
    use sysplex_dasd::farm::DasdFarm;
    use sysplex_dasd::volume::IoModel;
    use sysplex_db::group::{DataSharingGroup, GroupConfig};
    use sysplex_services::system::{System, SystemConfig};
    use sysplex_services::timer::SysplexTimer;
    use sysplex_services::wlm::Wlm;
    use sysplex_services::xcf::Xcf;

    fn region(group: &DataSharingGroup, i: u8) -> Arc<CicsRegion> {
        let id = SystemId::new(i);
        let db = group.add_member(id).unwrap();
        let sys = System::ipl(SystemConfig::cmos(id, 2));
        let region = CicsRegion::new(sys, db, Arc::new(Wlm::new()));
        region.define(TranDef {
            name: "TALLY".into(),
            service_class: "OLTP".into(),
            handler: Arc::new(|db, txn| {
                let cur =
                    db.read(txn, 0)?.map(|v| u64::from_be_bytes(v[..8].try_into().unwrap())).unwrap_or(0);
                db.write(txn, 0, Some(&(cur + 1).to_be_bytes()))
            }),
        });
        region
    }

    fn group() -> Arc<DataSharingGroup> {
        let cf = CouplingFacility::new(CfConfig::named("CF01"));
        let farm = DasdFarm::new(IoModel::instant());
        let timer = SysplexTimer::new();
        let xcf = Xcf::new(Arc::clone(&timer));
        let mut config = GroupConfig::default();
        config.db.lock_timeout = Duration::from_millis(200);
        DataSharingGroup::new(config, &cf, farm, timer, xcf).unwrap()
    }

    #[test]
    fn message_codec_roundtrip() {
        let m = encode_message("PAYT", b"acct=7");
        let (tran, payload) = decode_message(&m).unwrap();
        assert_eq!(tran, "PAYT");
        assert_eq!(payload, b"acct=7");
        assert!(decode_message(&[0, 9]).is_none());
    }

    #[test]
    fn messages_processed_exactly_once_across_regions() {
        let g = group();
        let cf = CouplingFacility::new(CfConfig::named("CFQ"));
        let list = cf.allocate_list_structure("IMSMSGQ", queue_params()).unwrap();
        let r0 = region(&g, 0);
        let r1 = region(&g, 1);
        let producer = SharedQueue::open(&list, cf.subchannel()).unwrap();
        let mpp0 = MppRegion::start(&list, cf.subchannel(), Arc::clone(&r0)).unwrap();
        let mpp1 = MppRegion::start(&list, cf.subchannel(), Arc::clone(&r1)).unwrap();
        let total = 40u64;
        for i in 0..total {
            producer.put(i % 4, &encode_message("TALLY", &i.to_be_bytes())).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while mpp0.processed.load(Ordering::Relaxed) + mpp1.processed.load(Ordering::Relaxed) < total
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        mpp0.stop();
        mpp1.stop();
        // The shared tally equals the message count: each processed once.
        let v = r0.database().run(10, |db, txn| db.read(txn, 0)).unwrap().unwrap();
        assert_eq!(u64::from_be_bytes(v[..8].try_into().unwrap()), total);
        assert_eq!(list.entry_count(), 0, "queue fully drained");
        r0.system().quiesce();
        r1.system().quiesce();
    }

    #[test]
    fn unknown_transactions_are_poison_but_do_not_wedge() {
        let g = group();
        let cf = CouplingFacility::new(CfConfig::named("CFQ"));
        let list = cf.allocate_list_structure("IMSMSGQ", queue_params()).unwrap();
        let r0 = region(&g, 0);
        let producer = SharedQueue::open(&list, cf.subchannel()).unwrap();
        let mpp = MppRegion::start(&list, cf.subchannel(), Arc::clone(&r0)).unwrap();
        producer.put(0, &encode_message("NOPE", b"")).unwrap();
        producer.put(1, &encode_message("TALLY", b"")).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while mpp.processed.load(Ordering::Relaxed) < 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(mpp.failed.load(Ordering::Relaxed), 1);
        assert_eq!(mpp.processed.load(Ordering::Relaxed), 1);
        mpp.stop();
        r0.system().quiesce();
    }
}
