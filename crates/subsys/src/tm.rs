//! A CICS-style transaction manager region.
//!
//! One [`CicsRegion`] runs per system (§5.2). It owns a dictionary of
//! transaction definitions — name, WLM service class, and the business
//! logic as a closure over the data-sharing [`Database`] — and executes
//! them with the standard OLTP retry loop (lock timeouts abort and rerun).
//! Completions are reported to WLM against the service class's
//! response-time goal; §2.3's point is that transactions "remain
//! unchanged" while the infrastructure spreads them across systems.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use sysplex_core::stats::Counter;
use sysplex_db::error::{DbError, DbResult};
use sysplex_db::{Database, Txn};
use sysplex_services::system::System;
use sysplex_services::wlm::Wlm;
use sysplex_workload::metrics::Histogram;

/// The business logic of a transaction.
pub type TranHandler = Arc<dyn Fn(&Database, &mut Txn) -> DbResult<()> + Send + Sync>;

/// A transaction definition (the CICS PCT entry).
#[derive(Clone)]
pub struct TranDef {
    /// Transaction name (e.g. "PAYT").
    pub name: String,
    /// WLM service class the transaction reports to.
    pub service_class: String,
    /// The application program.
    pub handler: TranHandler,
}

impl std::fmt::Debug for TranDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TranDef").field("name", &self.name).field("class", &self.service_class).finish()
    }
}

/// Counters published by a region.
#[derive(Debug, Default)]
pub struct RegionStats {
    /// Transactions started.
    pub started: Counter,
    /// Transactions completed successfully.
    pub completed: Counter,
    /// Transactions that failed after retries.
    pub failed: Counter,
    /// Response-time distribution of completed transactions.
    pub latency: Histogram,
}

/// Errors from region execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TmError {
    /// The transaction name is not defined.
    UnknownTransaction(String),
    /// The database rejected the transaction after retries.
    Db(DbError),
}

impl std::fmt::Display for TmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TmError::UnknownTransaction(t) => write!(f, "unknown transaction: {t}"),
            TmError::Db(e) => write!(f, "transaction failed: {e}"),
        }
    }
}

impl std::error::Error for TmError {}

/// A transaction-manager region on one system.
pub struct CicsRegion {
    system: Arc<System>,
    db: Arc<Database>,
    wlm: Arc<Wlm>,
    defs: RwLock<HashMap<String, TranDef>>,
    retries: usize,
    /// Published counters.
    pub stats: RegionStats,
}

impl CicsRegion {
    /// Bring up a region on `system` against `db`.
    pub fn new(system: Arc<System>, db: Arc<Database>, wlm: Arc<Wlm>) -> Arc<Self> {
        Arc::new(CicsRegion {
            system,
            db,
            wlm,
            defs: RwLock::new(HashMap::new()),
            retries: 10,
            stats: RegionStats::default(),
        })
    }

    /// The system this region runs on.
    pub fn system(&self) -> &Arc<System> {
        &self.system
    }

    /// The region's database instance.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Install a transaction definition.
    pub fn define(&self, def: TranDef) {
        self.defs.write().insert(def.name.clone(), def);
    }

    /// Installed transaction names, sorted.
    pub fn transactions(&self) -> Vec<String> {
        let mut v: Vec<String> = self.defs.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Execute a transaction on the calling thread (the router dispatches
    /// this onto the region's CPU pool). Reports the completion to WLM.
    pub fn execute_local(&self, name: &str) -> Result<Duration, TmError> {
        let def = self
            .defs
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| TmError::UnknownTransaction(name.to_string()))?;
        self.stats.started.incr();
        let t0 = Instant::now();
        let handler = Arc::clone(&def.handler);
        match self.db.run(self.retries, move |db, txn| handler(db, txn)) {
            Ok(()) => {
                let elapsed = t0.elapsed();
                self.wlm.record_completion(&def.service_class, elapsed);
                self.stats.completed.incr();
                self.stats.latency.record(elapsed);
                Ok(elapsed)
            }
            Err(e) => {
                self.stats.failed.incr();
                Err(TmError::Db(e))
            }
        }
    }
}

impl std::fmt::Debug for CicsRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CicsRegion").field("system", &self.system.id()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysplex_core::facility::{CfConfig, CouplingFacility};
    use sysplex_core::SystemId;
    use sysplex_dasd::farm::DasdFarm;
    use sysplex_dasd::volume::IoModel;
    use sysplex_db::group::{DataSharingGroup, GroupConfig};
    use sysplex_services::system::SystemConfig;
    use sysplex_services::timer::SysplexTimer;
    use sysplex_services::wlm::ServiceClass;
    use sysplex_services::xcf::Xcf;

    fn region() -> (Arc<CicsRegion>, Arc<DataSharingGroup>) {
        let cf = CouplingFacility::new(CfConfig::named("CF01"));
        let farm = DasdFarm::new(IoModel::instant());
        let timer = SysplexTimer::new();
        let xcf = Xcf::new(Arc::clone(&timer));
        let group = DataSharingGroup::new(GroupConfig::default(), &cf, farm, timer, xcf).unwrap();
        let db = group.add_member(SystemId::new(0)).unwrap();
        let sys = System::ipl(SystemConfig::cmos(SystemId::new(0), 2));
        let wlm = Arc::new(Wlm::new());
        wlm.define_class(ServiceClass {
            name: "OLTP".into(),
            goal: Duration::from_millis(100),
            importance: 1,
        });
        (CicsRegion::new(sys, db, wlm), group)
    }

    #[test]
    fn defined_transaction_runs_and_reports_to_wlm() {
        let (r, group) = region();
        r.define(TranDef {
            name: "DEPO".into(),
            service_class: "OLTP".into(),
            handler: Arc::new(|db, txn| db.write(txn, 1, Some(b"deposited"))),
        });
        r.execute_local("DEPO").unwrap();
        assert_eq!(r.stats.completed.get(), 1);
        assert_eq!(r.stats.latency.count(), 1);
        assert!(r.stats.latency.max() > Duration::ZERO);
        assert!(r.wlm.performance_index("OLTP").is_some());
        let v = r.database().run(0, |db, txn| db.read(txn, 1)).unwrap();
        assert_eq!(v.unwrap(), b"deposited");
        let _ = group;
    }

    #[test]
    fn unknown_transaction_rejected() {
        let (r, _group) = region();
        assert_eq!(r.execute_local("NOPE").unwrap_err(), TmError::UnknownTransaction("NOPE".into()));
    }

    #[test]
    fn transaction_dictionary_lists_definitions() {
        let (r, _group) = region();
        for name in ["B", "A"] {
            r.define(TranDef {
                name: name.into(),
                service_class: "OLTP".into(),
                handler: Arc::new(|_, _| Ok(())),
            });
        }
        assert_eq!(r.transactions(), vec!["A", "B"]);
    }
}
