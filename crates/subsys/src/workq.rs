//! Shared work queues — §3.3.3's workload-distribution list exploitation.
//!
//! An IMS-style shared message queue: producers on any system enqueue work
//! items in priority (key) order; consumers on any system claim items.
//! The claim is [`sysplex_core::connection::ListConnection::claim_first`]
//! — an atomic move from the READY header onto the consumer's private
//! in-flight header, so a consumer crash never loses an item: peers
//! [`SharedQueue::requeue_orphans`] from the dead consumer's in-flight
//! list. Consumers park on the list-transition wakeup instead of polling
//! an empty queue. All CF commands issue through the connection's
//! subchannel, so queue traffic shows up in the facility's per-class
//! accounting.

use std::sync::Arc;
use std::time::Duration;
use sysplex_core::connection::{CfSubchannel, ListConnection};
use sysplex_core::error::CfResult;
use sysplex_core::list::{
    DequeueEnd, EntryId, EntryView, ListParams, ListStructure, LockCondition, WritePosition,
};

/// Header 0 holds ready work; header 1+slot holds connector `slot`'s
/// claimed-but-incomplete items.
const READY: usize = 0;

/// List geometry for a shared queue (1 ready + 32 in-flight headers).
pub fn queue_params() -> ListParams {
    ListParams { headers: 1 + sysplex_core::MAX_CONNECTORS, lock_entries: 1, max_entries: 1 << 20 }
}

/// A claimed work item; complete it or it will be requeued on recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkItem {
    /// Entry identity (used by [`SharedQueue::complete`]).
    pub id: EntryId,
    /// Priority key (lower first).
    pub priority: u64,
    /// Payload.
    pub payload: Vec<u8>,
}

impl From<EntryView> for WorkItem {
    fn from(e: EntryView) -> Self {
        WorkItem { id: e.id, priority: e.key, payload: e.data }
    }
}

/// One system's handle on a shared work queue.
pub struct SharedQueue {
    conn: ListConnection,
}

impl SharedQueue {
    /// Attach to the queue's list structure through a command subchannel.
    pub fn open(list: &Arc<ListStructure>, sub: CfSubchannel) -> CfResult<Self> {
        let conn = ListConnection::attach(list, sub, 1)?;
        // Monitor the READY header with vector bit 0.
        conn.register_monitor(READY, 0)?;
        Ok(SharedQueue { conn })
    }

    fn inflight_header(&self) -> usize {
        1 + self.conn.conn_id().index()
    }

    /// This handle's connector slot (peers need it for orphan recovery).
    pub fn slot(&self) -> sysplex_core::ConnId {
        self.conn.conn_id()
    }

    /// Enqueue a work item at `priority` (lower runs first; FIFO within a
    /// priority).
    pub fn put(&self, priority: u64, payload: &[u8]) -> CfResult<EntryId> {
        let id = self.conn.enqueue(READY, priority, payload, WritePosition::Keyed, LockCondition::None)?;
        self.conn.subchannel().emit(sysplex_core::trace::TraceEvent::WorkEnqueue { queue: READY as u64 });
        Ok(id)
    }

    /// Claim the highest-priority ready item onto our in-flight list.
    pub fn take(&self) -> CfResult<Option<WorkItem>> {
        let claimed = self.conn.claim_first(
            READY,
            self.inflight_header(),
            DequeueEnd::Head,
            WritePosition::Tail,
            LockCondition::None,
        )?;
        if claimed.is_some() {
            self.conn
                .subchannel()
                .emit(sysplex_core::trace::TraceEvent::WorkDispatch { queue: READY as u64 });
        }
        Ok(claimed.map(WorkItem::from))
    }

    /// Claim, blocking on the transition signal up to `timeout`.
    pub fn take_wait(&self, timeout: Duration) -> CfResult<Option<WorkItem>> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(item) = self.take()? {
                return Ok(Some(item));
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            // Park until the READY list signals empty→non-empty (or time
            // runs out); the vector bit is the paper's polling indication,
            // the event its blocking companion.
            let seen = self.conn.event().generation();
            if self.conn.is_signaled(0) {
                continue; // non-empty already; race with another consumer
            }
            self.conn.event().wait_newer(seen, deadline - now);
        }
    }

    /// Work item finished: remove it from our in-flight list.
    pub fn complete(&self, item: &WorkItem) -> CfResult<()> {
        self.conn.delete(item.id, LockCondition::None)
    }

    /// Items this handle has claimed but not completed.
    pub fn inflight(&self) -> CfResult<Vec<WorkItem>> {
        Ok(self.conn.scan(self.inflight_header())?.into_iter().map(WorkItem::from).collect())
    }

    /// Ready items (diagnostics).
    pub fn ready_len(&self) -> CfResult<usize> {
        self.conn.header_len(READY)
    }

    /// Requeue a dead consumer's in-flight items back to READY, in
    /// priority order. Returns how many were recovered.
    pub fn requeue_orphans(&self, dead: sysplex_core::ConnId) -> CfResult<usize> {
        let dead_header = 1 + dead.index();
        let mut n = 0;
        while self
            .conn
            .claim_first(dead_header, READY, DequeueEnd::Head, WritePosition::Keyed, LockCondition::None)?
            .is_some()
        {
            n += 1;
        }
        Ok(n)
    }

    /// Detach (planned). In-flight items of this handle remain for peers
    /// to recover.
    pub fn close(self) -> CfResult<()> {
        self.conn.detach()
    }
}

impl std::fmt::Debug for SharedQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedQueue").field("slot", &self.conn.conn_id()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use sysplex_core::facility::{CfConfig, CouplingFacility};

    fn facility() -> Arc<CouplingFacility> {
        let cf = CouplingFacility::new(CfConfig::named("CF01"));
        cf.allocate_list_structure("MSGQ", queue_params()).unwrap();
        cf
    }

    fn open(cf: &Arc<CouplingFacility>) -> SharedQueue {
        SharedQueue::open(&cf.list_structure("MSGQ").unwrap(), cf.subchannel()).unwrap()
    }

    #[test]
    fn priority_ordering_across_producers() {
        let cf = facility();
        let p1 = open(&cf);
        let p2 = open(&cf);
        p1.put(5, b"medium").unwrap();
        p2.put(1, b"urgent").unwrap();
        p1.put(9, b"low").unwrap();
        let c = open(&cf);
        let order: Vec<Vec<u8>> = (0..3).map(|_| c.take().unwrap().unwrap().payload).collect();
        assert_eq!(order, vec![b"urgent".to_vec(), b"medium".to_vec(), b"low".to_vec()]);
    }

    #[test]
    fn claimed_items_move_to_inflight_until_completed() {
        let cf = facility();
        let q = open(&cf);
        q.put(1, b"job").unwrap();
        let item = q.take().unwrap().unwrap();
        assert_eq!(q.ready_len().unwrap(), 0);
        assert_eq!(q.inflight().unwrap(), vec![item.clone()]);
        q.complete(&item).unwrap();
        assert!(q.inflight().unwrap().is_empty());
    }

    #[test]
    fn dead_consumer_work_is_requeued_by_peer() {
        let cf = facility();
        let producer = open(&cf);
        let victim = open(&cf);
        producer.put(1, b"poison").unwrap();
        producer.put(2, b"fine").unwrap();
        let _claimed = victim.take().unwrap().unwrap();
        let victim_slot = victim.slot();
        drop(victim); // crashes without completing
        let survivor = open(&cf);
        assert_eq!(survivor.requeue_orphans(victim_slot).unwrap(), 1);
        // The orphan is back at the head (priority 1).
        let item = survivor.take().unwrap().unwrap();
        assert_eq!(item.payload, b"poison");
    }

    #[test]
    fn take_wait_parks_and_wakes_on_put() {
        let cf = facility();
        let consumer = open(&cf);
        let producer = open(&cf);
        let h = std::thread::spawn(move || consumer.take_wait(Duration::from_secs(5)).unwrap());
        std::thread::sleep(Duration::from_millis(30));
        producer.put(1, b"wake-up").unwrap();
        let item = h.join().unwrap().unwrap();
        assert_eq!(item.payload, b"wake-up");
    }

    #[test]
    fn take_wait_times_out_on_empty_queue() {
        let cf = facility();
        let c = open(&cf);
        let t0 = std::time::Instant::now();
        assert_eq!(c.take_wait(Duration::from_millis(50)).unwrap(), None);
        assert!(t0.elapsed() >= Duration::from_millis(45));
    }

    #[test]
    fn multi_consumer_drain_is_exactly_once() {
        let cf = facility();
        let producer = open(&cf);
        let total = 600u64;
        for i in 0..total {
            producer.put(i % 7, &i.to_be_bytes()).unwrap();
        }
        let processed = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let cf = Arc::clone(&cf);
                let processed = Arc::clone(&processed);
                std::thread::spawn(move || {
                    let q = open(&cf);
                    while let Some(item) = q.take().unwrap() {
                        processed.fetch_add(1, Ordering::Relaxed);
                        q.complete(&item).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(processed.load(Ordering::Relaxed), total);
        assert_eq!(cf.list_structure("MSGQ").unwrap().entry_count(), 0);
    }
}
