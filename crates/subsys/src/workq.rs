//! Shared work queues — §3.3.3's workload-distribution list exploitation.
//!
//! An IMS-style shared message queue: producers on any system enqueue work
//! items in priority (key) order; consumers on any system claim items.
//! The claim is [`sysplex_core::list::ListStructure::move_first`] — an
//! atomic move from the READY header onto the consumer's private in-flight
//! header, so a consumer crash never loses an item: peers
//! [`SharedQueue::requeue_orphans`] from the dead consumer's in-flight
//! list. Consumers park on the list-transition wakeup instead of polling
//! an empty queue.

use std::sync::Arc;
use std::time::Duration;
use sysplex_core::error::CfResult;
use sysplex_core::list::{
    DequeueEnd, EntryId, EntryView, ListConnection, ListParams, ListStructure, LockCondition, WritePosition,
};

/// Header 0 holds ready work; header 1+slot holds connector `slot`'s
/// claimed-but-incomplete items.
const READY: usize = 0;

/// List geometry for a shared queue (1 ready + 32 in-flight headers).
pub fn queue_params() -> ListParams {
    ListParams { headers: 1 + sysplex_core::MAX_CONNECTORS, lock_entries: 1, max_entries: 1 << 20 }
}

/// A claimed work item; complete it or it will be requeued on recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkItem {
    /// Entry identity (used by [`SharedQueue::complete`]).
    pub id: EntryId,
    /// Priority key (lower first).
    pub priority: u64,
    /// Payload.
    pub payload: Vec<u8>,
}

impl From<EntryView> for WorkItem {
    fn from(e: EntryView) -> Self {
        WorkItem { id: e.id, priority: e.key, payload: e.data }
    }
}

/// One system's handle on a shared work queue.
pub struct SharedQueue {
    list: Arc<ListStructure>,
    conn: ListConnection,
}

impl SharedQueue {
    /// Attach to the queue's list structure.
    pub fn open(list: Arc<ListStructure>) -> CfResult<Self> {
        let conn = list.connect(1)?;
        // Monitor the READY header with vector bit 0.
        list.register_monitor(&conn, READY, 0)?;
        Ok(SharedQueue { list, conn })
    }

    fn inflight_header(&self) -> usize {
        1 + self.conn.id.index()
    }

    /// This handle's connector slot (peers need it for orphan recovery).
    pub fn slot(&self) -> sysplex_core::ConnId {
        self.conn.id
    }

    /// Enqueue a work item at `priority` (lower runs first; FIFO within a
    /// priority).
    pub fn put(&self, priority: u64, payload: &[u8]) -> CfResult<EntryId> {
        self.list.write_entry(&self.conn, READY, priority, payload, WritePosition::Keyed, LockCondition::None)
    }

    /// Claim the highest-priority ready item onto our in-flight list.
    pub fn take(&self) -> CfResult<Option<WorkItem>> {
        Ok(self
            .list
            .move_first(
                &self.conn,
                READY,
                self.inflight_header(),
                DequeueEnd::Head,
                WritePosition::Tail,
                LockCondition::None,
            )?
            .map(WorkItem::from))
    }

    /// Claim, blocking on the transition signal up to `timeout`.
    pub fn take_wait(&self, timeout: Duration) -> CfResult<Option<WorkItem>> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(item) = self.take()? {
                return Ok(Some(item));
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            // Park until the READY list signals empty→non-empty (or time
            // runs out); the vector bit is the paper's polling indication,
            // the event its blocking companion.
            let seen = self.conn.event.generation();
            if self.conn.vector.test(0) {
                continue; // non-empty already; race with another consumer
            }
            self.conn.event.wait_newer(seen, deadline - now);
        }
    }

    /// Work item finished: remove it from our in-flight list.
    pub fn complete(&self, item: &WorkItem) -> CfResult<()> {
        self.list.delete_entry(&self.conn, item.id, LockCondition::None)
    }

    /// Items this handle has claimed but not completed.
    pub fn inflight(&self) -> CfResult<Vec<WorkItem>> {
        Ok(self
            .list
            .read_list(&self.conn, self.inflight_header())?
            .into_iter()
            .map(WorkItem::from)
            .collect())
    }

    /// Ready items (diagnostics).
    pub fn ready_len(&self) -> CfResult<usize> {
        self.list.header_len(READY)
    }

    /// Requeue a dead consumer's in-flight items back to READY, in
    /// priority order. Returns how many were recovered.
    pub fn requeue_orphans(&self, dead: sysplex_core::ConnId) -> CfResult<usize> {
        let dead_header = 1 + dead.index();
        let mut n = 0;
        while self
            .list
            .move_first(
                &self.conn,
                dead_header,
                READY,
                DequeueEnd::Head,
                WritePosition::Keyed,
                LockCondition::None,
            )?
            .is_some()
        {
            n += 1;
        }
        Ok(n)
    }

    /// Detach (planned). In-flight items of this handle remain for peers
    /// to recover.
    pub fn close(self) -> CfResult<()> {
        self.list.disconnect(&self.conn)
    }
}

impl std::fmt::Debug for SharedQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedQueue").field("slot", &self.conn.id).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn list() -> Arc<ListStructure> {
        Arc::new(ListStructure::new("MSGQ", &queue_params()).unwrap())
    }

    #[test]
    fn priority_ordering_across_producers() {
        let l = list();
        let p1 = SharedQueue::open(Arc::clone(&l)).unwrap();
        let p2 = SharedQueue::open(Arc::clone(&l)).unwrap();
        p1.put(5, b"medium").unwrap();
        p2.put(1, b"urgent").unwrap();
        p1.put(9, b"low").unwrap();
        let c = SharedQueue::open(Arc::clone(&l)).unwrap();
        let order: Vec<Vec<u8>> = (0..3).map(|_| c.take().unwrap().unwrap().payload).collect();
        assert_eq!(order, vec![b"urgent".to_vec(), b"medium".to_vec(), b"low".to_vec()]);
    }

    #[test]
    fn claimed_items_move_to_inflight_until_completed() {
        let l = list();
        let q = SharedQueue::open(Arc::clone(&l)).unwrap();
        q.put(1, b"job").unwrap();
        let item = q.take().unwrap().unwrap();
        assert_eq!(q.ready_len().unwrap(), 0);
        assert_eq!(q.inflight().unwrap(), vec![item.clone()]);
        q.complete(&item).unwrap();
        assert!(q.inflight().unwrap().is_empty());
    }

    #[test]
    fn dead_consumer_work_is_requeued_by_peer() {
        let l = list();
        let producer = SharedQueue::open(Arc::clone(&l)).unwrap();
        let victim = SharedQueue::open(Arc::clone(&l)).unwrap();
        producer.put(1, b"poison").unwrap();
        producer.put(2, b"fine").unwrap();
        let _claimed = victim.take().unwrap().unwrap();
        let victim_slot = victim.slot();
        drop(victim); // crashes without completing
        let survivor = SharedQueue::open(Arc::clone(&l)).unwrap();
        assert_eq!(survivor.requeue_orphans(victim_slot).unwrap(), 1);
        // The orphan is back at the head (priority 1).
        let item = survivor.take().unwrap().unwrap();
        assert_eq!(item.payload, b"poison");
    }

    #[test]
    fn take_wait_parks_and_wakes_on_put() {
        let l = list();
        let consumer = SharedQueue::open(Arc::clone(&l)).unwrap();
        let producer = SharedQueue::open(Arc::clone(&l)).unwrap();
        let h = std::thread::spawn(move || consumer.take_wait(Duration::from_secs(5)).unwrap());
        std::thread::sleep(Duration::from_millis(30));
        producer.put(1, b"wake-up").unwrap();
        let item = h.join().unwrap().unwrap();
        assert_eq!(item.payload, b"wake-up");
    }

    #[test]
    fn take_wait_times_out_on_empty_queue() {
        let l = list();
        let c = SharedQueue::open(Arc::clone(&l)).unwrap();
        let t0 = std::time::Instant::now();
        assert_eq!(c.take_wait(Duration::from_millis(50)).unwrap(), None);
        assert!(t0.elapsed() >= Duration::from_millis(45));
    }

    #[test]
    fn multi_consumer_drain_is_exactly_once() {
        let l = list();
        let producer = SharedQueue::open(Arc::clone(&l)).unwrap();
        let total = 600u64;
        for i in 0..total {
            producer.put(i % 7, &i.to_be_bytes()).unwrap();
        }
        let processed = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let l = Arc::clone(&l);
                let processed = Arc::clone(&processed);
                std::thread::spawn(move || {
                    let q = SharedQueue::open(l).unwrap();
                    while let Some(item) = q.take().unwrap() {
                        processed.fetch_add(1, Ordering::Relaxed);
                        q.complete(&item).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(processed.load(Ordering::Relaxed), total);
        assert_eq!(l.entry_count(), 0);
    }
}
