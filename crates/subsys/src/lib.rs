//! # sysplex-subsys — the exploiting subsystems
//!
//! §5 of the paper: "Through exploitation and support of the Parallel
//! Sysplex data-sharing technology, MVS and its major subsystems have
//! combined to provide an industry-leading fully-integrated commercial
//! parallel processing system." This crate provides working stand-ins for
//! the subsystems in Figure 4:
//!
//! * [`tm`] — a CICS-style transaction manager: named transaction
//!   definitions with service classes, executed against the data-sharing
//!   database on a system's CPU pool.
//! * [`routing`] — CICSPlex/SM-style *dynamic transaction routing*:
//!   incoming transactions flow to the region WLM recommends, fail over to
//!   survivors when a region stops accepting work, and report completions
//!   back to WLM's service-class goals (§2.3's OLTP balancing).
//! * [`workq`] — IMS-style shared work queues on a CF list structure:
//!   keyed priority queueing, atomic claim onto per-consumer in-flight
//!   lists, transition-signal wakeups, and orphan requeue when a consumer
//!   dies (§3.3.3's "workload distribution" use).
//! * [`vtam`] — VTAM *generic resources* on a CF list structure: users log
//!   on to one generic name ("CICS") and are bound to an instance chosen
//!   by WLM recommendation and session counts — "single system image to
//!   the SNA network" (§5.3).

//! * [`query`] — the §2.3 decision-support coordinator: split a scan into
//!   sub-queries, fan them out over systems, merge the partial answers.
//! * [`mpp`] — IMS-style message-processing regions consuming the shared
//!   queue with at-least-once recovery semantics.

//! * [`jes`] — a JES2-style shared job queue with classes, priorities,
//!   per-member execution lists, warm-start recovery and serialized
//!   checkpoints (§5.1).
//! * [`racf`] — a RACF-style shared security manager on the
//!   *directory-only* cache model: coherent permission caching with
//!   sysplex-wide revocation (§5.1).

//! * [`distributor`] — the §6 future-work item built: a TCP/IP sysplex
//!   distributor with WLM placement, connection affinity, and CF-resident
//!   state so the distributor role itself fails over statelessly.

pub mod distributor;
pub mod jes;
pub mod mpp;
pub mod query;
pub mod racf;
pub mod routing;
pub mod tm;
pub mod vtam;
pub mod workq;

pub use distributor::SysplexDistributor;
pub use jes::JobQueue;
pub use mpp::MppRegion;
pub use query::{ParallelQuery, QueryTarget};
pub use racf::RacfNode;
pub use routing::TransactionRouter;
pub use tm::{CicsRegion, TranDef};
pub use vtam::{GenericResources, SessionBind};
pub use workq::SharedQueue;
