//! VTAM generic resources — §5.3's single system image to the network.
//!
//! "VTAM provides single system image to the SNA network for the Parallel
//! Sysplex through its 'Generic Resource' support, enabling session binds
//! for user logons to be dynamically distributed for workload balancing
//! across the systems in the sysplex. VTAM provides the Generic Resource
//! facilities through exploitation of the CF list structure. ... CICS
//! users, for example, can simply logon to 'CICS' without having to
//! specify or be cognizant of which system their session will be
//! dynamically bound."
//!
//! Instances of an application register under a *generic name* in a CF
//! list structure; a logon to the generic name picks an instance by WLM
//! recommendation (available capacity), breaking ties toward the fewest
//! bound sessions, and bumps the instance's session count with an
//! optimistic version check so concurrent logons from different systems
//! never lose an update.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use sysplex_core::connection::{CfSubchannel, ListConnection};
use sysplex_core::error::{CfError, CfResult};
use sysplex_core::hashing::{fnv1a64, mix64};
use sysplex_core::list::{EntryId, ListParams, ListStructure, LockCondition, WritePosition};
use sysplex_core::SystemId;
use sysplex_services::wlm::Wlm;

/// List geometry for a generic-resource structure.
pub fn generic_resource_params() -> ListParams {
    ListParams { headers: 64, lock_entries: 0, max_entries: 1 << 16 }
}

/// A bound session, returned by logon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionBind {
    /// The generic name logged on to.
    pub generic: String,
    /// The concrete application instance chosen.
    pub instance: String,
    /// The system the instance runs on.
    pub system: SystemId,
}

/// One registered instance of a generic resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceInfo {
    /// Instance name (e.g. "CICS01").
    pub instance: String,
    /// Hosting system.
    pub system: SystemId,
    /// Currently bound sessions.
    pub sessions: u32,
}

fn encode(generic: &str, info: &InstanceInfo) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + generic.len() + info.instance.len());
    out.extend_from_slice(&(generic.len() as u16).to_be_bytes());
    out.extend_from_slice(generic.as_bytes());
    out.extend_from_slice(&(info.instance.len() as u16).to_be_bytes());
    out.extend_from_slice(info.instance.as_bytes());
    out.push(info.system.0);
    out.extend_from_slice(&info.sessions.to_be_bytes());
    out
}

fn decode(data: &[u8]) -> Option<(String, InstanceInfo)> {
    let glen = u16::from_be_bytes(data.get(0..2)?.try_into().ok()?) as usize;
    let generic = String::from_utf8(data.get(2..2 + glen)?.to_vec()).ok()?;
    let off = 2 + glen;
    let ilen = u16::from_be_bytes(data.get(off..off + 2)?.try_into().ok()?) as usize;
    let instance = String::from_utf8(data.get(off + 2..off + 2 + ilen)?.to_vec()).ok()?;
    let off = off + 2 + ilen;
    let system = SystemId::new(*data.get(off)?);
    let sessions = u32::from_be_bytes(data.get(off + 1..off + 5)?.try_into().ok()?);
    Some((generic, InstanceInfo { instance, system, sessions }))
}

/// The generic-resource service (one handle per VTAM node; all handles
/// share the list structure).
pub struct GenericResources {
    conn: ListConnection,
    wlm: Arc<Wlm>,
    /// instance -> entry id cache (correctness does not depend on it).
    ids: Mutex<HashMap<(String, String), EntryId>>,
}

impl GenericResources {
    /// Attach to the generic-resource structure through a command
    /// subchannel.
    pub fn open(list: &Arc<ListStructure>, sub: CfSubchannel, wlm: Arc<Wlm>) -> CfResult<Self> {
        let conn = ListConnection::attach(list, sub, 1)?;
        Ok(GenericResources { conn, wlm, ids: Mutex::new(HashMap::new()) })
    }

    fn header_of(&self, generic: &str) -> usize {
        (mix64(fnv1a64(generic.as_bytes())) % self.conn.structure().header_count() as u64) as usize
    }

    /// Register an application instance under a generic name.
    pub fn register_instance(&self, generic: &str, instance: &str, system: SystemId) -> CfResult<()> {
        let info = InstanceInfo { instance: instance.to_string(), system, sessions: 0 };
        let id = self.conn.enqueue(
            self.header_of(generic),
            system.0 as u64,
            &encode(generic, &info),
            WritePosition::Tail,
            LockCondition::None,
        )?;
        self.ids.lock().insert((generic.to_string(), instance.to_string()), id);
        Ok(())
    }

    /// Remove an instance (planned shutdown or system failure).
    pub fn deregister_instance(&self, generic: &str, instance: &str) -> CfResult<()> {
        let entries = self.entries_of(generic)?;
        for (id, _, info) in entries {
            if info.instance == instance {
                self.conn.delete(id, LockCondition::None)?;
                self.ids.lock().remove(&(generic.to_string(), instance.to_string()));
                return Ok(());
            }
        }
        Err(CfError::NoSuchEntry)
    }

    /// Remove every instance hosted on a failed system; their sessions are
    /// implicitly gone and users re-logon to surviving instances.
    pub fn fail_system(&self, system: SystemId) -> CfResult<usize> {
        let mut removed = 0;
        for header in 0..self.conn.structure().header_count() {
            for e in self.conn.scan(header)? {
                if let Some((_, info)) = decode(&e.data) {
                    if info.system == system && self.conn.delete(e.id, LockCondition::None).is_ok() {
                        removed += 1;
                    }
                }
            }
        }
        Ok(removed)
    }

    fn entries_of(&self, generic: &str) -> CfResult<Vec<(EntryId, u64, InstanceInfo)>> {
        Ok(self
            .conn
            .scan(self.header_of(generic))?
            .into_iter()
            .filter_map(|e| {
                decode(&e.data).and_then(|(g, info)| (g == generic).then_some((e.id, e.version, info)))
            })
            .collect())
    }

    /// Instances of a generic name with live session counts, sorted.
    pub fn instances(&self, generic: &str) -> CfResult<Vec<InstanceInfo>> {
        let mut v: Vec<InstanceInfo> = self.entries_of(generic)?.into_iter().map(|(_, _, i)| i).collect();
        v.sort_by(|a, b| a.instance.cmp(&b.instance));
        Ok(v)
    }

    /// Log a user on to `generic`: choose an instance and bump its session
    /// count atomically. The user never names a system (§5.3).
    pub fn logon(&self, generic: &str) -> CfResult<SessionBind> {
        loop {
            let entries = self.entries_of(generic)?;
            if entries.is_empty() {
                return Err(CfError::NoSuchEntry);
            }
            // WLM recommendation; tie-break toward fewest sessions.
            let recommended = self.wlm.select_target();
            let pick = entries
                .iter()
                .filter(|(_, _, i)| Some(i.system) == recommended)
                .min_by_key(|(_, _, i)| i.sessions)
                .or_else(|| entries.iter().min_by_key(|(_, _, i)| (i.sessions, i.system)))
                .unwrap();
            let (id, version, info) = pick;
            let mut updated = info.clone();
            updated.sessions += 1;
            match self.conn.update(
                *id,
                info.system.0 as u64,
                &encode(generic, &updated),
                Some(*version),
                LockCondition::None,
            ) {
                Ok(_) => {
                    self.conn
                        .subchannel()
                        .emit(sysplex_core::trace::TraceEvent::SessionPlace { target: updated.system.0 });
                    return Ok(SessionBind {
                        generic: generic.to_string(),
                        instance: updated.instance,
                        system: updated.system,
                    });
                }
                Err(CfError::VersionMismatch { .. }) | Err(CfError::NoSuchEntry) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// End a session.
    pub fn logoff(&self, bind: &SessionBind) -> CfResult<()> {
        loop {
            let entries = self.entries_of(&bind.generic)?;
            let Some((id, version, info)) = entries.into_iter().find(|(_, _, i)| i.instance == bind.instance)
            else {
                return Ok(()); // instance gone (failed system); nothing to do
            };
            let mut updated = info.clone();
            updated.sessions = updated.sessions.saturating_sub(1);
            match self.conn.update(
                id,
                info.system.0 as u64,
                &encode(&bind.generic, &updated),
                Some(version),
                LockCondition::None,
            ) {
                Ok(_) => return Ok(()),
                Err(CfError::VersionMismatch { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl std::fmt::Debug for GenericResources {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GenericResources").field("conn", &self.conn.conn_id()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use sysplex_core::facility::{CfConfig, CouplingFacility};

    struct Rig {
        gr: GenericResources,
        wlm: Arc<Wlm>,
        cf: Arc<CouplingFacility>,
    }

    fn rig(systems: u8) -> Rig {
        let cf = CouplingFacility::new(CfConfig::named("CF01"));
        let list = cf.allocate_list_structure("ISTGR", generic_resource_params()).unwrap();
        let wlm = Arc::new(Wlm::new());
        for i in 0..systems {
            wlm.set_capacity(SystemId::new(i), 100.0);
        }
        let gr = GenericResources::open(&list, cf.subchannel(), Arc::clone(&wlm)).unwrap();
        Rig { gr, wlm, cf }
    }

    #[test]
    fn logon_binds_without_naming_a_system() {
        let r = rig(2);
        r.gr.register_instance("CICS", "CICS01", SystemId::new(0)).unwrap();
        r.gr.register_instance("CICS", "CICS02", SystemId::new(1)).unwrap();
        let bind = r.gr.logon("CICS").unwrap();
        assert_eq!(bind.generic, "CICS");
        assert!(["CICS01", "CICS02"].contains(&bind.instance.as_str()));
        let total: u32 = r.gr.instances("CICS").unwrap().iter().map(|i| i.sessions).sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn equal_capacity_spreads_sessions_evenly() {
        let r = rig(4);
        for i in 0..4 {
            r.gr.register_instance("CICS", &format!("CICS0{i}"), SystemId::new(i)).unwrap();
        }
        for _ in 0..100 {
            r.gr.logon("CICS").unwrap();
        }
        let counts: Vec<u32> = r.gr.instances("CICS").unwrap().iter().map(|i| i.sessions).collect();
        assert_eq!(counts, vec![25, 25, 25, 25], "even spread: {counts:?}");
    }

    #[test]
    fn weighted_capacity_skews_binds() {
        let r = rig(2);
        r.gr.register_instance("CICS", "BIG", SystemId::new(0)).unwrap();
        r.gr.register_instance("CICS", "SMALL", SystemId::new(1)).unwrap();
        r.wlm.set_capacity(SystemId::new(0), 300.0);
        r.wlm.set_capacity(SystemId::new(1), 100.0);
        for _ in 0..80 {
            r.gr.logon("CICS").unwrap();
        }
        let inst = r.gr.instances("CICS").unwrap();
        let big = inst.iter().find(|i| i.instance == "BIG").unwrap().sessions;
        let small = inst.iter().find(|i| i.instance == "SMALL").unwrap().sessions;
        assert_eq!(big, 60);
        assert_eq!(small, 20);
    }

    #[test]
    fn failed_system_instances_vanish_and_logons_rebind() {
        let r = rig(2);
        r.gr.register_instance("CICS", "CICS01", SystemId::new(0)).unwrap();
        r.gr.register_instance("CICS", "CICS02", SystemId::new(1)).unwrap();
        assert_eq!(r.gr.fail_system(SystemId::new(0)).unwrap(), 1);
        r.wlm.set_online(SystemId::new(0), false);
        for _ in 0..10 {
            let bind = r.gr.logon("CICS").unwrap();
            assert_eq!(bind.instance, "CICS02");
        }
    }

    #[test]
    fn logoff_decrements_sessions() {
        let r = rig(1);
        r.gr.register_instance("TSO", "TSO01", SystemId::new(0)).unwrap();
        let bind = r.gr.logon("TSO").unwrap();
        assert_eq!(r.gr.instances("TSO").unwrap()[0].sessions, 1);
        r.gr.logoff(&bind).unwrap();
        assert_eq!(r.gr.instances("TSO").unwrap()[0].sessions, 0);
    }

    #[test]
    fn multiple_generics_coexist() {
        let r = rig(1);
        r.gr.register_instance("CICS", "CICS01", SystemId::new(0)).unwrap();
        r.gr.register_instance("IMS", "IMS01", SystemId::new(0)).unwrap();
        assert_eq!(r.gr.logon("CICS").unwrap().instance, "CICS01");
        assert_eq!(r.gr.logon("IMS").unwrap().instance, "IMS01");
        assert!(r.gr.logon("DB2").is_err(), "unregistered generic");
        let _ = r.cf;
    }

    #[test]
    fn concurrent_logons_from_many_nodes_never_lose_counts() {
        let r = rig(2);
        r.gr.register_instance("CICS", "CICS01", SystemId::new(0)).unwrap();
        r.gr.register_instance("CICS", "CICS02", SystemId::new(1)).unwrap();
        let cf = Arc::clone(&r.cf);
        let wlm = Arc::clone(&r.wlm);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cf = Arc::clone(&cf);
                let wlm = Arc::clone(&wlm);
                std::thread::spawn(move || {
                    let list = cf.list_structure("ISTGR").unwrap();
                    let gr = GenericResources::open(&list, cf.subchannel(), wlm).unwrap();
                    for _ in 0..50 {
                        gr.logon("CICS").unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u32 = r.gr.instances("CICS").unwrap().iter().map(|i| i.sessions).sum();
        assert_eq!(total, 200, "optimistic session updates never lost");
    }

    #[test]
    fn deregister_removes_instance() {
        let r = rig(1);
        r.gr.register_instance("CICS", "CICS01", SystemId::new(0)).unwrap();
        r.gr.deregister_instance("CICS", "CICS01").unwrap();
        assert!(r.gr.instances("CICS").unwrap().is_empty());
        assert_eq!(r.gr.deregister_instance("CICS", "CICS01").unwrap_err(), CfError::NoSuchEntry);
    }
}
