//! A RACF-style shared security manager on the directory-only cache (§5.1).
//!
//! Access-control profiles live in a shared security database on DASD;
//! every system caches the profiles it checks against. The cache must be
//! coherent sysplex-wide — a revoked permission must take effect on every
//! system at once — but the profiles are small and DASD-resident, so this
//! exploiter uses the **directory-only** cache model: the CF tracks who
//! caches what and delivers cross-invalidates, while the data itself is
//! re-read from DASD after an invalidation. (Contrast with the database's
//! store-in group buffer pool — this is the other §3.3.2 deployment.)

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use sysplex_core::cache::{BlockName, CacheParams, CacheStructure, WriteKind};
use sysplex_core::connection::{CacheConnection, CfSubchannel};
use sysplex_core::error::CfResult;
use sysplex_core::hashing::fnv1a64;
use sysplex_core::stats::Counter;
use sysplex_core::SystemId;
use sysplex_dasd::error::IoResult;
use sysplex_dasd::farm::DasdFarm;

/// Access levels, ordered by privilege.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Access {
    /// No access.
    None,
    /// Read only.
    Read,
    /// Read and update.
    Update,
    /// Full control.
    Alter,
}

impl Access {
    fn to_byte(self) -> u8 {
        match self {
            Access::None => 0,
            Access::Read => 1,
            Access::Update => 2,
            Access::Alter => 3,
        }
    }

    fn from_byte(b: u8) -> Access {
        match b {
            1 => Access::Read,
            2 => Access::Update,
            3 => Access::Alter,
            _ => Access::None,
        }
    }
}

/// A resource profile: who may do what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Protected resource name (e.g. "PROD.PAYROLL.MASTER").
    pub resource: String,
    /// Access granted to users not on the ACL.
    pub universal_access: Access,
    /// Per-user grants.
    pub acl: Vec<(String, Access)>,
}

impl Profile {
    /// The access `user` holds under this profile.
    pub fn access_for(&self, user: &str) -> Access {
        self.acl.iter().find(|(u, _)| u == user).map(|(_, a)| *a).unwrap_or(self.universal_access)
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.extend_from_slice(&(self.resource.len() as u16).to_be_bytes());
        out.extend_from_slice(self.resource.as_bytes());
        out.push(self.universal_access.to_byte());
        out.extend_from_slice(&(self.acl.len() as u16).to_be_bytes());
        for (user, access) in &self.acl {
            out.extend_from_slice(&(user.len() as u16).to_be_bytes());
            out.extend_from_slice(user.as_bytes());
            out.push(access.to_byte());
        }
        out
    }

    fn decode(data: &[u8]) -> Option<Profile> {
        let mut off = 0;
        let take = |data: &[u8], off: &mut usize| -> Option<String> {
            let len = u16::from_be_bytes(data.get(*off..*off + 2)?.try_into().ok()?) as usize;
            *off += 2;
            let s = std::str::from_utf8(data.get(*off..*off + len)?).ok()?;
            *off += len;
            Some(s.to_string())
        };
        let resource = take(data, &mut off)?;
        let universal_access = Access::from_byte(*data.get(off)?);
        off += 1;
        let n = u16::from_be_bytes(data.get(off..off + 2)?.try_into().ok()?) as usize;
        off += 2;
        let mut acl = Vec::with_capacity(n);
        for _ in 0..n {
            let user = take(data, &mut off)?;
            let access = Access::from_byte(*data.get(off)?);
            off += 1;
            acl.push((user, access));
        }
        Some(Profile { resource, universal_access, acl })
    }
}

/// The shared security database on DASD (open-addressed by resource hash).
pub struct SecurityDatabase {
    farm: Arc<DasdFarm>,
    volume: String,
    capacity: u64,
}

impl SecurityDatabase {
    /// Create over a fresh farm volume.
    pub fn create(farm: Arc<DasdFarm>, volume: &str, capacity: u64) -> IoResult<Arc<Self>> {
        farm.add_volume(volume, capacity, 4)?;
        Ok(Arc::new(SecurityDatabase { farm, volume: volume.to_string(), capacity }))
    }

    fn probe(&self, resource: &str) -> impl Iterator<Item = u64> + '_ {
        let start = fnv1a64(resource.as_bytes()) % self.capacity;
        let cap = self.capacity;
        (0..cap).map(move |i| (start + i) % cap)
    }

    /// Write (or replace) a profile.
    pub fn write_profile(&self, system: u8, profile: &Profile) -> IoResult<bool> {
        let encoded = profile.encode();
        for block in self.probe(&profile.resource) {
            let claimed =
                self.farm.update(system, &self.volume, block, |slot| match Profile::decode(slot) {
                    Some(p) if p.resource == profile.resource => {
                        slot.clear();
                        slot.extend_from_slice(&encoded);
                        true
                    }
                    Some(_) => false,
                    None => {
                        slot.clear();
                        slot.extend_from_slice(&encoded);
                        true
                    }
                })?;
            if claimed {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Read a profile.
    pub fn read_profile(&self, system: u8, resource: &str) -> IoResult<Option<Profile>> {
        for block in self.probe(resource) {
            let data = self.farm.read(system, &self.volume, block)?;
            match Profile::decode(&data) {
                Some(p) if p.resource == resource => return Ok(Some(p)),
                Some(_) => continue,
                None => return Ok(None),
            }
        }
        Ok(None)
    }
}

/// Cache geometry for the security manager's CF structure.
pub fn security_cache_params(entries: usize) -> CacheParams {
    CacheParams::directory_only(entries)
}

/// Counters published by a security node.
#[derive(Debug, Default)]
pub struct RacfStats {
    /// Authorization checks performed.
    pub checks: Counter,
    /// Checks served from the coherent local cache (no CF, no DASD).
    pub local_hits: Counter,
    /// Profile reads from DASD (cold or after invalidation).
    pub dasd_reads: Counter,
}

struct LocalCache {
    map: HashMap<String, (Option<Profile>, u32)>,
    index_of: HashMap<u32, String>,
    rotor: u32,
    size: u32,
}

/// A per-system security manager node.
pub struct RacfNode {
    system: SystemId,
    db: Arc<SecurityDatabase>,
    conn: CacheConnection,
    local: Mutex<LocalCache>,
    /// Published counters.
    pub stats: RacfStats,
}

fn block_of(resource: &str) -> BlockName {
    // 'RACF' discriminator + 64-bit hash of the resource name.
    BlockName::from_parts(0x5241_4346, fnv1a64(resource.as_bytes()))
}

impl RacfNode {
    /// Attach a node with a local cache of `slots` profiles, issuing CF
    /// commands through `sub`.
    pub fn start(
        system: SystemId,
        db: Arc<SecurityDatabase>,
        cache: &Arc<CacheStructure>,
        sub: CfSubchannel,
        slots: u32,
    ) -> CfResult<Self> {
        let conn = CacheConnection::attach(cache, sub, slots as usize)?;
        Ok(RacfNode {
            system,
            db,
            conn,
            local: Mutex::new(LocalCache {
                map: HashMap::new(),
                index_of: HashMap::new(),
                rotor: 0,
                size: slots,
            }),
            stats: RacfStats::default(),
        })
    }

    /// Authorization check: may `user` access `resource` at `requested`?
    /// Unprotected resources (no profile) are denied — protect-by-default.
    pub fn check(&self, user: &str, resource: &str, requested: Access) -> CfResult<bool> {
        self.stats.checks.incr();
        let profile = self.profile_for(resource)?;
        Ok(profile.map(|p| p.access_for(user) >= requested).unwrap_or(false))
    }

    fn profile_for(&self, resource: &str) -> CfResult<Option<Profile>> {
        {
            let local = self.local.lock();
            if let Some((profile, idx)) = local.map.get(resource) {
                if self.conn.is_valid(*idx) {
                    self.stats.local_hits.incr();
                    return Ok(profile.clone());
                }
            }
        }
        // Cold or invalidated: register, then read DASD (directory-only —
        // the CF never holds the data).
        let mut local = self.local.lock();
        let idx = match local.map.get(resource) {
            Some((_, idx)) => *idx,
            None => {
                let idx = local.rotor % local.size;
                local.rotor += 1;
                if let Some(old) = local.index_of.remove(&idx) {
                    local.map.remove(&old);
                    let _ = self.conn.unregister(block_of(&old));
                }
                local.index_of.insert(idx, resource.to_string());
                idx
            }
        };
        self.conn.register_read(block_of(resource), idx)?;
        self.stats.dasd_reads.incr();
        let profile = self.db.read_profile(self.system.0, resource).unwrap_or(None);
        if !self.conn.is_valid(idx) {
            // Raced with an admin update; next check refetches.
            local.map.remove(resource);
            return Ok(profile);
        }
        local.map.insert(resource.to_string(), (profile.clone(), idx));
        Ok(profile)
    }

    /// Administrative update: write the profile to the shared database and
    /// cross-invalidate every node's cached copy — the revocation is
    /// sysplex-wide before this returns.
    pub fn admin_update(&self, profile: &Profile) -> CfResult<usize> {
        self.db
            .write_profile(self.system.0, profile)
            .map_err(|_| sysplex_core::CfError::StructureFull)
            .and_then(|ok| {
                if !ok {
                    return Err(sysplex_core::CfError::StructureFull);
                }
                let w = self.conn.write_invalidate(
                    block_of(&profile.resource),
                    &[],
                    WriteKind::InvalidateOnly,
                )?;
                // Drop our own stale copy too.
                self.local.lock().map.remove(&profile.resource);
                Ok(w.invalidated)
            })
    }
}

impl std::fmt::Debug for RacfNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RacfNode").field("system", &self.system).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysplex_core::facility::{CfConfig, CouplingFacility};
    use sysplex_dasd::volume::IoModel;

    fn rig() -> (Arc<SecurityDatabase>, Arc<CouplingFacility>) {
        let farm = DasdFarm::new(IoModel::instant());
        let db = SecurityDatabase::create(farm, "RACFDB", 256).unwrap();
        let cf = CouplingFacility::new(CfConfig::named("CF01"));
        cf.allocate_cache_structure("IRRXCF00", security_cache_params(256)).unwrap();
        (db, cf)
    }

    fn node(db: &Arc<SecurityDatabase>, cf: &Arc<CouplingFacility>, sys: u8, slots: u32) -> RacfNode {
        let cache = cf.cache_structure("IRRXCF00").unwrap();
        RacfNode::start(SystemId::new(sys), Arc::clone(db), &cache, cf.subchannel(), slots).unwrap()
    }

    fn profile(resource: &str, uacc: Access, acl: &[(&str, Access)]) -> Profile {
        Profile {
            resource: resource.into(),
            universal_access: uacc,
            acl: acl.iter().map(|(u, a)| (u.to_string(), *a)).collect(),
        }
    }

    #[test]
    fn profile_codec_roundtrip() {
        let p = profile("PROD.PAYROLL", Access::None, &[("ALICE", Access::Update), ("BOB", Access::Read)]);
        assert_eq!(Profile::decode(&p.encode()).unwrap(), p);
        assert_eq!(p.access_for("ALICE"), Access::Update);
        assert_eq!(p.access_for("EVE"), Access::None);
    }

    #[test]
    fn checks_enforce_acl_and_protect_by_default() {
        let (db, cf) = rig();
        let node = node(&db, &cf, 0, 32);
        node.admin_update(&profile("PROD.DATA", Access::Read, &[("ADMIN", Access::Alter)])).unwrap();
        assert!(node.check("ANYONE", "PROD.DATA", Access::Read).unwrap());
        assert!(!node.check("ANYONE", "PROD.DATA", Access::Update).unwrap());
        assert!(node.check("ADMIN", "PROD.DATA", Access::Alter).unwrap());
        assert!(!node.check("ANYONE", "UNPROTECTED", Access::Read).unwrap(), "protect by default");
    }

    #[test]
    fn repeated_checks_hit_the_local_cache() {
        let (db, cf) = rig();
        let node = node(&db, &cf, 0, 32);
        node.admin_update(&profile("APP.RES", Access::Read, &[])).unwrap();
        for _ in 0..10 {
            assert!(node.check("U", "APP.RES", Access::Read).unwrap());
        }
        assert_eq!(node.stats.dasd_reads.get(), 1, "one cold read, then cached");
        assert_eq!(node.stats.local_hits.get(), 9);
    }

    #[test]
    fn revocation_is_sysplex_wide_immediately() {
        let (db, cf) = rig();
        let a = node(&db, &cf, 0, 32);
        let b = node(&db, &cf, 1, 32);
        a.admin_update(&profile("SECRET", Access::None, &[("CONTRACTOR", Access::Read)])).unwrap();
        assert!(b.check("CONTRACTOR", "SECRET", Access::Read).unwrap());
        assert!(b.check("CONTRACTOR", "SECRET", Access::Read).unwrap(), "cached on B");
        // Admin on A revokes; B's cached copy is cross-invalidated.
        let invalidated = a.admin_update(&profile("SECRET", Access::None, &[])).unwrap();
        assert_eq!(invalidated, 1, "B's registration was signalled");
        assert!(!b.check("CONTRACTOR", "SECRET", Access::Read).unwrap(), "revoked everywhere at once");
        assert!(b.stats.dasd_reads.get() >= 2, "B re-read after invalidation");
    }

    #[test]
    fn cache_slot_recycling_keeps_correctness() {
        let (db, cf) = rig();
        let node = node(&db, &cf, 0, 4);
        for i in 0..20 {
            node.admin_update(&profile(&format!("RES.{i}"), Access::Read, &[])).unwrap();
        }
        for round in 0..2 {
            for i in 0..20 {
                assert!(node.check("U", &format!("RES.{i}"), Access::Read).unwrap(), "round {round} res {i}");
            }
        }
    }
}
