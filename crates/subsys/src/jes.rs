//! A JES2-style shared job queue on the CF (§5.1).
//!
//! "Several MVS base system components including JES2, RACF, and XCF are
//! exploiting the Coupling Facility to facilitate or enhance their
//! respective functions in a parallel sysplex configuration."
//!
//! JES2's multi-access spool becomes a CF list structure: every member
//! sees one job queue; jobs carry a class and a priority; any member
//! selects work for the classes its initiators serve; a member failure
//! leaves its executing jobs on a per-member header that peers requeue.
//! The JES2 *checkpoint* — the serialized snapshot of the whole queue —
//! uses the §3.3.3 serialized-list protocol: mainline operations run
//! conditioned on the checkpoint lock being free, so taking a checkpoint
//! momentarily quiesces the queue without per-request locking.

use std::sync::Arc;
use sysplex_core::connection::{CfSubchannel, ListConnection};
use sysplex_core::error::{CfError, CfResult};
use sysplex_core::list::{EntryId, ListParams, ListStructure, LockCondition, WritePosition};
use sysplex_core::{ConnId, MAX_CONNECTORS};

/// Header layout: INPUT, OUTPUT, then one EXECUTION header per member slot.
const INPUT: usize = 0;
const OUTPUT: usize = 1;
const CKPT_LOCK: usize = 0;

/// List geometry for a job queue.
pub fn job_queue_params() -> ListParams {
    ListParams { headers: 2 + MAX_CONNECTORS, lock_entries: 1, max_entries: 1 << 16 }
}

/// Where a job currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Awaiting selection.
    Input,
    /// Executing on a member.
    Executing(ConnId),
    /// Finished, awaiting purge.
    Output,
}

/// One job on the shared queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job {
    /// Queue entry identity.
    pub id: EntryId,
    /// Job name.
    pub name: String,
    /// Execution class (initiators select by class).
    pub class: char,
    /// Priority 0 (highest) ..= 15.
    pub priority: u8,
}

fn encode_job(name: &str, class: char, priority: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + name.len());
    out.push(class as u8);
    out.push(priority);
    out.extend_from_slice(name.as_bytes());
    out
}

fn decode_job(id: EntryId, data: &[u8]) -> Option<Job> {
    let class = *data.first()? as char;
    let priority = *data.get(1)?;
    let name = std::str::from_utf8(&data[2..]).ok()?.to_string();
    Some(Job { id, name, class, priority })
}

/// One member's attachment to the shared job queue.
pub struct JobQueue {
    conn: ListConnection,
}

impl JobQueue {
    /// Attach a member through a command subchannel.
    pub fn open(list: &Arc<ListStructure>, sub: CfSubchannel) -> CfResult<Self> {
        if list.header_count() < 2 + MAX_CONNECTORS || list.lock_entry_count() < 1 {
            return Err(CfError::BadParameter("job queue geometry"));
        }
        let conn = ListConnection::attach(list, sub, 1)?;
        conn.register_monitor(INPUT, 0)?;
        Ok(JobQueue { conn })
    }

    fn exec_header(slot: ConnId) -> usize {
        2 + slot.index()
    }

    /// This member's connector slot.
    pub fn slot(&self) -> ConnId {
        self.conn.conn_id()
    }

    /// Submit a job. Queued in priority order (FIFO within a priority).
    pub fn submit(&self, name: &str, class: char, priority: u8) -> CfResult<EntryId> {
        self.conn.enqueue(
            INPUT,
            priority as u64,
            &encode_job(name, class, priority),
            WritePosition::Keyed,
            LockCondition::LockFree(CKPT_LOCK),
        )
    }

    /// Select the best job whose class is in `classes`, claiming it onto
    /// this member's execution header. Priority order; skips classes the
    /// member does not serve.
    pub fn select(&self, classes: &[char]) -> CfResult<Option<Job>> {
        loop {
            let candidates = self.conn.scan(INPUT)?;
            let Some(pick) = candidates
                .iter()
                .find_map(|e| decode_job(e.id, &e.data).filter(|j| classes.contains(&j.class)))
            else {
                return Ok(None);
            };
            // Conditional claim: lose the race and rescan.
            if self.conn.transfer(
                pick.id,
                INPUT,
                Self::exec_header(self.conn.conn_id()),
                WritePosition::Keyed,
                LockCondition::LockFree(CKPT_LOCK),
            )? {
                return Ok(Some(pick));
            }
        }
    }

    /// Job finished: move it to OUTPUT.
    pub fn complete(&self, job: &Job) -> CfResult<()> {
        let moved = self.conn.transfer(
            job.id,
            Self::exec_header(self.conn.conn_id()),
            OUTPUT,
            WritePosition::Tail,
            LockCondition::None,
        )?;
        if moved {
            Ok(())
        } else {
            Err(CfError::NoSuchEntry)
        }
    }

    /// Purge an OUTPUT job.
    pub fn purge(&self, job: &Job) -> CfResult<()> {
        self.conn.delete(job.id, LockCondition::None)
    }

    /// Jobs awaiting selection, in selection order.
    pub fn input_jobs(&self) -> CfResult<Vec<Job>> {
        Ok(self.conn.scan(INPUT)?.into_iter().filter_map(|e| decode_job(e.id, &e.data)).collect())
    }

    /// Jobs executing on a member.
    pub fn executing_on(&self, slot: ConnId) -> CfResult<Vec<Job>> {
        Ok(self
            .conn
            .scan(Self::exec_header(slot))?
            .into_iter()
            .filter_map(|e| decode_job(e.id, &e.data))
            .collect())
    }

    /// Jobs in OUTPUT.
    pub fn output_jobs(&self) -> CfResult<Vec<Job>> {
        Ok(self.conn.scan(OUTPUT)?.into_iter().filter_map(|e| decode_job(e.id, &e.data)).collect())
    }

    /// Requeue a dead member's executing jobs back to INPUT (peer warm
    /// start). Returns how many were recovered.
    pub fn recover_member(&self, dead: ConnId) -> CfResult<usize> {
        let jobs = self.executing_on(dead)?;
        let mut n = 0;
        for job in jobs {
            if self.conn.transfer(
                job.id,
                Self::exec_header(dead),
                INPUT,
                WritePosition::Keyed,
                LockCondition::None,
            )? {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Take a checkpoint: quiesce mainline traffic via the serializing
    /// lock, snapshot queue counts, release. Returns (input, executing,
    /// output) counts.
    pub fn checkpoint(&self) -> CfResult<(usize, usize, usize)> {
        while !self.conn.acquire_list_lock(CKPT_LOCK)? {
            std::thread::yield_now();
        }
        let input = self.conn.header_len(INPUT)?;
        let output = self.conn.header_len(OUTPUT)?;
        let mut executing = 0;
        for slot in 0..MAX_CONNECTORS {
            executing += self.conn.header_len(2 + slot)?;
        }
        self.conn.release_list_lock(CKPT_LOCK)?;
        Ok((input, executing, output))
    }

    /// Detach (planned). Executing jobs of this member stay on its header
    /// for peers to recover if it never returns.
    pub fn close(self) -> CfResult<()> {
        self.conn.detach()
    }
}

impl std::fmt::Debug for JobQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobQueue").field("slot", &self.conn.conn_id()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysplex_core::facility::{CfConfig, CouplingFacility};

    fn facility() -> Arc<CouplingFacility> {
        let cf = CouplingFacility::new(CfConfig::named("CF01"));
        cf.allocate_list_structure("JES2CKPT", job_queue_params()).unwrap();
        cf
    }

    fn open(cf: &Arc<CouplingFacility>) -> JobQueue {
        JobQueue::open(&cf.list_structure("JES2CKPT").unwrap(), cf.subchannel()).unwrap()
    }

    fn queue_pair() -> (Arc<CouplingFacility>, JobQueue, JobQueue) {
        let cf = facility();
        let a = open(&cf);
        let b = open(&cf);
        (cf, a, b)
    }

    #[test]
    fn jobs_select_in_priority_order_by_class() {
        let (_cf, a, b) = queue_pair();
        a.submit("LOWPRI", 'A', 9).unwrap();
        a.submit("BATCH", 'B', 5).unwrap();
        a.submit("URGENT", 'A', 1).unwrap();
        // b serves class A only: picks URGENT first, never BATCH.
        let j1 = b.select(&['A']).unwrap().unwrap();
        assert_eq!(j1.name, "URGENT");
        let j2 = b.select(&['A']).unwrap().unwrap();
        assert_eq!(j2.name, "LOWPRI");
        assert!(b.select(&['A']).unwrap().is_none(), "class B job not selectable");
        assert_eq!(a.input_jobs().unwrap()[0].name, "BATCH");
        // Lifecycle: complete + purge.
        b.complete(&j1).unwrap();
        assert_eq!(b.output_jobs().unwrap()[0].name, "URGENT");
        b.purge(&b.output_jobs().unwrap()[0].clone()).unwrap();
        assert!(b.output_jobs().unwrap().is_empty());
    }

    #[test]
    fn racing_members_never_double_select() {
        let cf = facility();
        let submitter = open(&cf);
        for i in 0..300 {
            submitter.submit(&format!("JOB{i:05}"), 'A', (i % 16) as u8).unwrap();
        }
        let mut handles = Vec::new();
        for _ in 0..2 {
            let cf = Arc::clone(&cf);
            handles.push(std::thread::spawn(move || {
                let q = open(&cf);
                let mut mine = Vec::new();
                while let Some(job) = q.select(&['A']).unwrap() {
                    mine.push(job.name.clone());
                    q.complete(&job).unwrap();
                }
                mine
            }));
        }
        let all: Vec<String> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        assert_eq!(all.len(), 300);
        let unique: std::collections::HashSet<&String> = all.iter().collect();
        assert_eq!(unique.len(), 300, "no job executed twice");
        assert_eq!(submitter.output_jobs().unwrap().len(), 300);
    }

    #[test]
    fn dead_member_jobs_requeue_and_rerun() {
        let (_cf, a, b) = queue_pair();
        a.submit("DOOMED", 'A', 3).unwrap();
        let job = a.select(&['A']).unwrap().unwrap();
        assert_eq!(a.executing_on(a.slot()).unwrap().len(), 1);
        let dead_slot = a.slot();
        drop(job);
        // a dies (handle dropped without complete); peer warm-starts it.
        assert_eq!(b.recover_member(dead_slot).unwrap(), 1);
        let rerun = b.select(&['A']).unwrap().unwrap();
        assert_eq!(rerun.name, "DOOMED");
    }

    #[test]
    fn checkpoint_quiesces_mainline_and_counts() {
        let (_cf, a, b) = queue_pair();
        a.submit("ONE", 'A', 1).unwrap();
        let job = a.select(&['A']).unwrap().unwrap();
        a.submit("TWO", 'A', 2).unwrap();
        a.complete(&job).unwrap();
        let (input, executing, output) = b.checkpoint().unwrap();
        assert_eq!((input, executing, output), (1, 0, 1));
        // Mainline resumes after the checkpoint lock releases.
        a.submit("THREE", 'A', 3).unwrap();
    }

    #[test]
    fn submit_rejected_during_checkpoint_hold() {
        let cf = facility();
        let a = open(&cf);
        let holder = cf.connect_list("JES2CKPT", 1).unwrap();
        assert!(holder.acquire_list_lock(CKPT_LOCK).unwrap());
        assert!(matches!(a.submit("BLOCKED", 'A', 1), Err(CfError::LockHeld { .. })));
        holder.release_list_lock(CKPT_LOCK).unwrap();
        a.submit("OK", 'A', 1).unwrap();
    }
}
