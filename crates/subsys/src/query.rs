//! Parallel decision-support queries (§2.3).
//!
//! "Parallelism can be attained by breaking up complex queries into
//! smaller sub-queries, and distributing the component queries across
//! multiple processors (cpu) within a single system or across multiple
//! systems in a parallel sysplex. Once all sub-queries have completed, the
//! original query response can be constructed from the aggregate of the
//! sub-query answers and returned to the requester."
//!
//! [`ParallelQuery`] owns the split/dispatch/merge choreography over the
//! live data-sharing stack: sub-queries run as repeatable-read scans on
//! whichever systems host database members, a target that stops accepting
//! work simply loses its shards to the survivors, and the merged answer is
//! bit-identical to a sequential scan.

use crossbeam::channel::bounded;
use std::sync::Arc;
use std::time::Duration;
use sysplex_db::error::{DbError, DbResult};
use sysplex_db::Database;
use sysplex_services::system::System;
use sysplex_workload::decision::{merge, PartialAggregate, ScanQuery, SubQuery};

/// One executor: a system (CPUs) plus its database member.
#[derive(Clone)]
pub struct QueryTarget {
    /// CPUs to run sub-queries on.
    pub system: Arc<System>,
    /// Database member on that system.
    pub db: Arc<Database>,
}

/// The split/dispatch/merge coordinator.
pub struct ParallelQuery {
    targets: Vec<QueryTarget>,
    retries: usize,
}

/// Scan a key range as one repeatable-read transaction, folding the
/// aggregate. Records are interpreted as big-endian i64 in their first 8
/// bytes; shorter records are skipped.
pub fn scan_aggregate(db: &Database, from: u64, to: u64, retries: usize) -> DbResult<PartialAggregate> {
    db.run(retries, |db, txn| {
        let mut agg = PartialAggregate::empty();
        for k in from..to {
            if let Some(v) = db.read(txn, k)? {
                if v.len() >= 8 {
                    agg.add_row(i64::from_be_bytes(v[..8].try_into().unwrap()));
                }
            }
        }
        Ok(agg)
    })
}

impl ParallelQuery {
    /// Build a coordinator over the given executors.
    pub fn new(targets: Vec<QueryTarget>) -> Self {
        assert!(!targets.is_empty(), "need at least one query target");
        ParallelQuery { targets, retries: 20 }
    }

    /// Execute `query` as `shards` sub-queries distributed round-robin
    /// over the targets, merging the partial answers.
    pub fn execute(&self, query: ScanQuery, shards: usize) -> DbResult<PartialAggregate> {
        let subqueries = query.split(shards);
        if subqueries.is_empty() {
            return Ok(PartialAggregate::empty());
        }
        let (tx, rx) = bounded(subqueries.len());
        let mut dispatched = 0;
        for sub in &subqueries {
            self.dispatch(*sub, &tx, 0)?;
            dispatched += 1;
        }
        drop(tx);
        let mut parts = Vec::with_capacity(dispatched);
        for _ in 0..dispatched {
            let part =
                rx.recv_timeout(Duration::from_secs(300)).map_err(|_| DbError::NegotiationFailed)??;
            parts.push(part);
        }
        Ok(merge(parts))
    }

    /// Submit one shard, failing over across targets when a system refuses
    /// work (§2.5: new work redirected to survivors).
    fn dispatch(
        &self,
        sub: SubQuery,
        tx: &crossbeam::channel::Sender<DbResult<PartialAggregate>>,
        attempt: usize,
    ) -> DbResult<()> {
        if attempt >= self.targets.len() {
            return Err(DbError::NegotiationFailed);
        }
        let target = &self.targets[(sub.index + attempt) % self.targets.len()];
        let db = Arc::clone(&target.db);
        let job_tx = tx.clone();
        let retries = self.retries;
        match target.system.submit(move || {
            let _ = job_tx.send(scan_aggregate(&db, sub.from, sub.to, retries));
        }) {
            Ok(()) => Ok(()),
            Err(_) => self.dispatch(sub, tx, attempt + 1),
        }
    }
}

impl std::fmt::Debug for ParallelQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelQuery").field("targets", &self.targets.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysplex_core::facility::{CfConfig, CouplingFacility};
    use sysplex_core::SystemId;
    use sysplex_dasd::farm::DasdFarm;
    use sysplex_dasd::volume::IoModel;
    use sysplex_db::group::{DataSharingGroup, GroupConfig};
    use sysplex_services::system::SystemConfig;
    use sysplex_services::timer::SysplexTimer;
    use sysplex_services::xcf::Xcf;

    fn rig(n: u8, rows: u64) -> (Arc<DataSharingGroup>, Vec<QueryTarget>) {
        let cf = CouplingFacility::new(CfConfig::named("CF01"));
        let farm = DasdFarm::new(IoModel::instant());
        let timer = SysplexTimer::new();
        let xcf = Xcf::new(Arc::clone(&timer));
        let group = DataSharingGroup::new(GroupConfig::default(), &cf, farm, timer, xcf).unwrap();
        let targets: Vec<QueryTarget> = (0..n)
            .map(|i| QueryTarget {
                system: sysplex_services::system::System::ipl(SystemConfig::cmos(SystemId::new(i), 2)),
                db: group.add_member(SystemId::new(i)).unwrap(),
            })
            .collect();
        // Load rows: value = 3k - 100.
        targets[0]
            .db
            .run(10, |db, txn| {
                for k in 0..rows {
                    db.write(txn, k, Some(&((3 * k as i64) - 100).to_be_bytes()))?;
                }
                Ok(())
            })
            .unwrap();
        (group, targets)
    }

    fn teardown(targets: &[QueryTarget]) {
        for t in targets {
            if t.system.state() == sysplex_services::system::SystemState::Active {
                t.system.quiesce();
            }
        }
    }

    #[test]
    fn parallel_answer_matches_sequential() {
        let (_group, targets) = rig(3, 300);
        let q = ScanQuery { from: 0, to: 300 };
        let sequential = scan_aggregate(&targets[0].db, 0, 300, 10).unwrap();
        let pq = ParallelQuery::new(targets.clone());
        let parallel = pq.execute(q, 6).unwrap();
        assert_eq!(parallel, sequential);
        assert_eq!(parallel.rows, 300);
        assert_eq!(parallel.min, -100);
        teardown(&targets);
    }

    #[test]
    fn failed_target_loses_its_shards_to_survivors() {
        let (_group, targets) = rig(3, 120);
        targets[1].system.fail();
        let pq = ParallelQuery::new(targets.clone());
        let result = pq.execute(ScanQuery { from: 0, to: 120 }, 6).unwrap();
        assert_eq!(result.rows, 120, "all shards completed despite a dead target");
        teardown(&targets);
    }

    #[test]
    fn empty_query_is_empty() {
        let (_group, targets) = rig(1, 10);
        let pq = ParallelQuery::new(targets.clone());
        assert_eq!(pq.execute(ScanQuery { from: 5, to: 5 }, 4).unwrap(), PartialAggregate::empty());
        teardown(&targets);
    }
}
