//! Dynamic transaction routing — §2.3's OLTP workload balancing.
//!
//! "Work requests submitted by a given user can be executed on any system
//! in the configuration based on available processing capacity, instead of
//! being bound to a specific system due to data-to-processor affinity."
//!
//! The [`TransactionRouter`] is the CICSPlex/SM piece: it holds the set of
//! regions, asks WLM for the next target (smooth weighted round-robin over
//! available capacity), dispatches the transaction onto that region's CPU
//! pool, and — the §2.5 availability half — *re-routes* to a survivor when
//! the chosen region's system stops accepting work.

use crate::tm::{CicsRegion, TmError};
use crossbeam::channel::{bounded, Receiver};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use sysplex_core::stats::Counter;
use sysplex_core::SystemId;
use sysplex_services::system::SystemError;
use sysplex_services::wlm::Wlm;

/// Errors from routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// No region is accepting work.
    NoTargets,
    /// The transaction itself failed on the target region.
    Tm(TmError),
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::NoTargets => write!(f, "no region accepting work"),
            RouteError::Tm(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RouteError {}

/// Counters published by the router.
#[derive(Debug, Default)]
pub struct RouterStats {
    /// Transactions routed.
    pub routed: Counter,
    /// Transactions re-routed after a target refused work.
    pub rerouted: Counter,
}

/// A pending routed transaction.
#[derive(Debug)]
pub struct PendingTran {
    rx: Receiver<Result<Duration, TmError>>,
    /// The system the transaction landed on.
    pub system: SystemId,
}

impl PendingTran {
    /// Wait for the transaction to complete.
    pub fn wait(self, timeout: Duration) -> Result<Duration, RouteError> {
        match self.rx.recv_timeout(timeout) {
            Ok(Ok(d)) => Ok(d),
            Ok(Err(e)) => Err(RouteError::Tm(e)),
            Err(_) => Err(RouteError::NoTargets),
        }
    }
}

/// The sysplex-wide transaction router.
pub struct TransactionRouter {
    wlm: Arc<Wlm>,
    regions: RwLock<HashMap<SystemId, Arc<CicsRegion>>>,
    /// Transactions landed per system (balance reporting).
    pub per_system: Mutex<HashMap<SystemId, u64>>,
    /// Published counters.
    pub stats: RouterStats,
}

impl TransactionRouter {
    /// Build the router over WLM.
    pub fn new(wlm: Arc<Wlm>) -> Arc<Self> {
        Arc::new(TransactionRouter {
            wlm,
            regions: RwLock::new(HashMap::new()),
            per_system: Mutex::new(HashMap::new()),
            stats: RouterStats::default(),
        })
    }

    /// A region becomes a routing target.
    pub fn register_region(&self, region: Arc<CicsRegion>) {
        self.regions.write().insert(region.system().id(), region);
    }

    /// Remove a region from routing (planned removal or failure).
    pub fn deregister_region(&self, system: SystemId) {
        self.regions.write().remove(&system);
    }

    /// Current routing targets, sorted.
    pub fn targets(&self) -> Vec<SystemId> {
        let mut v: Vec<SystemId> = self.regions.read().keys().copied().collect();
        v.sort();
        v
    }

    fn pick(&self, exclude: &[SystemId]) -> Option<Arc<CicsRegion>> {
        let regions = self.regions.read();
        // WLM recommendation first.
        for _ in 0..regions.len().max(1) {
            if let Some(target) = self.wlm.select_target() {
                if exclude.contains(&target) {
                    continue;
                }
                if let Some(r) = regions.get(&target) {
                    return Some(Arc::clone(r));
                }
            }
        }
        // Fallback: any registered region not excluded.
        regions
            .iter()
            .filter(|(id, _)| !exclude.contains(id))
            .min_by_key(|(id, _)| **id)
            .map(|(_, r)| Arc::clone(r))
    }

    /// Route one transaction: dispatch onto the recommended region's CPU
    /// pool, failing over to other regions if the target refuses work.
    pub fn submit(&self, tran: &str) -> Result<PendingTran, RouteError> {
        let mut excluded: Vec<SystemId> = Vec::new();
        loop {
            let Some(region) = self.pick(&excluded) else {
                return Err(RouteError::NoTargets);
            };
            let system = region.system().id();
            let (tx, rx) = bounded(1);
            let tran = tran.to_string();
            let region_for_job = Arc::clone(&region);
            match region.system().submit(move || {
                let _ = tx.send(region_for_job.execute_local(&tran));
            }) {
                Ok(()) => {
                    self.stats.routed.incr();
                    *self.per_system.lock().entry(system).or_insert(0) += 1;
                    return Ok(PendingTran { rx, system });
                }
                Err(SystemError::NotAccepting(_)) => {
                    // §2.5: redirect new work to the surviving systems.
                    self.stats.rerouted.incr();
                    excluded.push(system);
                    self.deregister_region(system);
                }
            }
        }
    }

    /// Route and wait (convenience).
    pub fn submit_and_wait(&self, tran: &str, timeout: Duration) -> Result<Duration, RouteError> {
        self.submit(tran)?.wait(timeout)
    }

    /// Distribution of routed transactions per system, sorted.
    pub fn distribution(&self) -> Vec<(SystemId, u64)> {
        let mut v: Vec<(SystemId, u64)> = self.per_system.lock().iter().map(|(k, v)| (*k, *v)).collect();
        v.sort();
        v
    }
}

impl std::fmt::Debug for TransactionRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransactionRouter").field("targets", &self.targets()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tm::TranDef;
    use sysplex_core::facility::{CfConfig, CouplingFacility};
    use sysplex_dasd::farm::DasdFarm;
    use sysplex_dasd::volume::IoModel;
    use sysplex_db::group::{DataSharingGroup, GroupConfig};
    use sysplex_services::system::{System, SystemConfig};
    use sysplex_services::timer::SysplexTimer;
    use sysplex_services::wlm::ServiceClass;
    use sysplex_services::xcf::Xcf;

    struct Rig {
        router: Arc<TransactionRouter>,
        regions: Vec<Arc<CicsRegion>>,
        wlm: Arc<Wlm>,
        #[allow(dead_code)]
        group: Arc<DataSharingGroup>,
    }

    fn rig(n: u8) -> Rig {
        let cf = CouplingFacility::new(CfConfig::named("CF01"));
        let farm = DasdFarm::new(IoModel::instant());
        let timer = SysplexTimer::new();
        let xcf = Xcf::new(Arc::clone(&timer));
        let group = DataSharingGroup::new(GroupConfig::default(), &cf, farm, timer, xcf).unwrap();
        let wlm = Arc::new(Wlm::new());
        wlm.define_class(ServiceClass {
            name: "OLTP".into(),
            goal: Duration::from_millis(100),
            importance: 1,
        });
        let router = TransactionRouter::new(Arc::clone(&wlm));
        let mut regions = Vec::new();
        for i in 0..n {
            let id = SystemId::new(i);
            let db = group.add_member(id).unwrap();
            let sys = System::ipl(SystemConfig::cmos(id, 2));
            wlm.set_capacity(id, sys.config().total_mips());
            let region = CicsRegion::new(sys, db, Arc::clone(&wlm));
            region.define(TranDef {
                name: "PING".into(),
                service_class: "OLTP".into(),
                handler: Arc::new(|_, _| Ok(())),
            });
            router.register_region(Arc::clone(&region));
            regions.push(region);
        }
        Rig { router, regions, wlm, group }
    }

    #[test]
    fn transactions_spread_across_equal_systems() {
        let r = rig(3);
        let pending: Vec<_> = (0..90).map(|_| r.router.submit("PING").unwrap()).collect();
        for p in pending {
            p.wait(Duration::from_secs(10)).unwrap();
        }
        let dist = r.router.distribution();
        assert_eq!(dist.len(), 3);
        for (_, n) in &dist {
            assert_eq!(*n, 30, "equal capacity → equal share: {dist:?}");
        }
        for region in &r.regions {
            region.system().quiesce();
        }
    }

    #[test]
    fn utilization_skews_routing_toward_idle_systems() {
        let r = rig(2);
        r.wlm.report_utilization(SystemId::new(0), 0.9);
        r.wlm.report_utilization(SystemId::new(1), 0.1);
        for _ in 0..100 {
            r.router.submit_and_wait("PING", Duration::from_secs(10)).unwrap();
        }
        let dist = r.router.distribution();
        let busy = dist.iter().find(|(id, _)| *id == SystemId::new(0)).map(|(_, n)| *n).unwrap_or(0);
        let idle = dist.iter().find(|(id, _)| *id == SystemId::new(1)).map(|(_, n)| *n).unwrap_or(0);
        assert!(idle > busy * 5, "idle system gets the bulk: busy={busy} idle={idle}");
        for region in &r.regions {
            region.system().quiesce();
        }
    }

    #[test]
    fn failed_region_is_bypassed_transparently() {
        let r = rig(2);
        // System 0 fails abruptly.
        r.regions[0].system().fail();
        r.wlm.set_online(SystemId::new(0), false);
        for _ in 0..20 {
            r.router.submit_and_wait("PING", Duration::from_secs(10)).unwrap();
        }
        let dist = r.router.distribution();
        assert_eq!(dist, vec![(SystemId::new(1), 20)], "all work flowed to the survivor");
        r.regions[1].system().quiesce();
    }

    #[test]
    fn no_targets_is_reported() {
        let r = rig(1);
        r.regions[0].system().fail();
        r.wlm.set_online(SystemId::new(0), false);
        assert_eq!(r.router.submit("PING").unwrap_err(), RouteError::NoTargets);
    }
}
