//! A TCP/IP sysplex distributor — the paper's §6 future work, built.
//!
//! "Future enhancements are focused on leveraging the Parallel Sysplex
//! data-sharing technology to support new application environments,
//! including ... single system image for native TCP/IP networks."
//!
//! One virtual endpoint (a generic IP/port) fronts listener instances on
//! many systems. New connections are placed by WLM capacity
//! recommendation; established connections keep *affinity* to their
//! system. Both the listener registry and the connection table live in a
//! CF list structure — so the distributor role itself is stateless: if
//! the system performing distribution dies, any peer opens a handle and
//! carries on with every established connection intact (the takeover
//! pattern the real Sysplex Distributor used).

use std::sync::Arc;
use sysplex_core::connection::{CfSubchannel, ListConnection};
use sysplex_core::error::{CfError, CfResult};
use sysplex_core::list::{ListParams, ListStructure, LockCondition, WritePosition};
use sysplex_core::SystemId;
use sysplex_services::wlm::Wlm;

const LISTENERS: usize = 0;
const CONNECTIONS: usize = 1;

/// List geometry for a distributor structure.
pub fn distributor_params() -> ListParams {
    ListParams { headers: 2, lock_entries: 0, max_entries: 1 << 16 }
}

/// A routed connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Client identity (stands in for the 4-tuple).
    pub client: u64,
    /// The system serving the connection.
    pub system: SystemId,
}

/// A handle on the distributed endpoint. Cheap to open anywhere; all the
/// state is in the CF.
pub struct SysplexDistributor {
    conn: ListConnection,
    wlm: Arc<Wlm>,
}

impl SysplexDistributor {
    /// Open a handle (the distributor role) through a command subchannel.
    pub fn open(list: &Arc<ListStructure>, sub: CfSubchannel, wlm: Arc<Wlm>) -> CfResult<Self> {
        if list.header_count() < 2 {
            return Err(CfError::BadParameter("distributor geometry"));
        }
        let conn = ListConnection::attach(list, sub, 1)?;
        Ok(SysplexDistributor { conn, wlm })
    }

    /// A stack on `system` starts listening on the virtual endpoint.
    pub fn register_listener(&self, system: SystemId) -> CfResult<()> {
        // Idempotent: one entry per system.
        if self.listeners()?.contains(&system) {
            return Ok(());
        }
        self.conn
            .enqueue(LISTENERS, system.0 as u64, &[system.0], WritePosition::Keyed, LockCondition::None)
            .map(|_| ())
    }

    /// A stack stops listening (planned). Established connections keep
    /// flowing to it until they close or it fails.
    pub fn deregister_listener(&self, system: SystemId) -> CfResult<()> {
        for e in self.conn.scan(LISTENERS)? {
            if e.data.first() == Some(&system.0) {
                return self.conn.delete(e.id, LockCondition::None);
            }
        }
        Err(CfError::NoSuchEntry)
    }

    /// Systems currently listening, sorted.
    pub fn listeners(&self) -> CfResult<Vec<SystemId>> {
        let mut v: Vec<SystemId> = self
            .conn
            .scan(LISTENERS)?
            .iter()
            .filter_map(|e| e.data.first().map(|s| SystemId::new(*s)))
            .collect();
        v.sort();
        Ok(v)
    }

    fn find_connection(&self, client: u64) -> CfResult<Option<(sysplex_core::list::EntryId, SystemId)>> {
        Ok(self
            .conn
            .scan(CONNECTIONS)?
            .into_iter()
            .find(|e| e.key == client)
            .and_then(|e| e.data.first().map(|s| (e.id, SystemId::new(*s)))))
    }

    /// Route a packet for `client`: an established connection keeps its
    /// affinity; a new one is placed on the WLM-recommended listener.
    pub fn route(&self, client: u64) -> CfResult<Placement> {
        if let Some((_, system)) = self.find_connection(client)? {
            return Ok(Placement { client, system });
        }
        let listeners = self.listeners()?;
        if listeners.is_empty() {
            return Err(CfError::NoSuchEntry);
        }
        // WLM recommendation, restricted to listening systems.
        let mut target = None;
        for _ in 0..8 {
            if let Some(t) = self.wlm.select_target() {
                if listeners.contains(&t) {
                    target = Some(t);
                    break;
                }
            }
        }
        let system = target.unwrap_or(listeners[0]);
        self.conn.enqueue(CONNECTIONS, client, &[system.0], WritePosition::Keyed, LockCondition::None)?;
        Ok(Placement { client, system })
    }

    /// The client closed the connection.
    pub fn close(&self, client: u64) -> CfResult<()> {
        match self.find_connection(client)? {
            Some((id, _)) => self.conn.delete(id, LockCondition::None),
            None => Err(CfError::NoSuchEntry),
        }
    }

    /// A serving system failed: drop its listener and its connections.
    /// Clients reconnect (next `route`) and land on survivors. Returns how
    /// many connections were severed.
    pub fn fail_system(&self, system: SystemId) -> CfResult<usize> {
        let _ = self.deregister_listener(system);
        let mut severed = 0;
        for e in self.conn.scan(CONNECTIONS)? {
            if e.data.first() == Some(&system.0) && self.conn.delete(e.id, LockCondition::None).is_ok() {
                severed += 1;
            }
        }
        Ok(severed)
    }

    /// Established connections, sorted by client (diagnostics).
    pub fn connections(&self) -> CfResult<Vec<Placement>> {
        let mut v: Vec<Placement> = self
            .conn
            .scan(CONNECTIONS)?
            .into_iter()
            .filter_map(|e| e.data.first().map(|s| Placement { client: e.key, system: SystemId::new(*s) }))
            .collect();
        v.sort_by_key(|p| p.client);
        Ok(v)
    }
}

impl std::fmt::Debug for SysplexDistributor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SysplexDistributor").field("conn", &self.conn.conn_id()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysplex_core::facility::{CfConfig, CouplingFacility};

    fn rig(systems: u8) -> (Arc<CouplingFacility>, Arc<Wlm>, SysplexDistributor) {
        let cf = CouplingFacility::new(CfConfig::named("CF01"));
        let list = cf.allocate_list_structure("EZBDVIPA", distributor_params()).unwrap();
        let wlm = Arc::new(Wlm::new());
        for i in 0..systems {
            wlm.set_capacity(SystemId::new(i), 100.0);
        }
        let d = SysplexDistributor::open(&list, cf.subchannel(), Arc::clone(&wlm)).unwrap();
        for i in 0..systems {
            d.register_listener(SystemId::new(i)).unwrap();
        }
        (cf, wlm, d)
    }

    #[test]
    fn new_connections_spread_by_capacity() {
        let (_l, _w, d) = rig(2);
        let mut on0 = 0;
        for client in 0..100u64 {
            if d.route(client).unwrap().system == SystemId::new(0) {
                on0 += 1;
            }
        }
        assert_eq!(on0, 50, "equal capacity → even spread");
    }

    #[test]
    fn established_connections_keep_affinity() {
        let (_l, wlm, d) = rig(2);
        let first = d.route(7).unwrap();
        // Even after the weights shift violently, client 7 stays put.
        wlm.report_utilization(first.system, 0.99);
        for _ in 0..10 {
            assert_eq!(d.route(7).unwrap(), first);
        }
        d.close(7).unwrap();
        assert!(d.connections().unwrap().is_empty());
    }

    #[test]
    fn listener_failure_severs_and_survivors_absorb() {
        let (_l, wlm, d) = rig(3);
        for client in 0..30u64 {
            d.route(client).unwrap();
        }
        let severed = d.fail_system(SystemId::new(1)).unwrap();
        assert!(severed > 0);
        wlm.set_online(SystemId::new(1), false);
        // Every client reconnects somewhere that is not the corpse.
        for client in 0..30u64 {
            assert_ne!(d.route(client).unwrap().system, SystemId::new(1));
        }
        assert_eq!(d.connections().unwrap().len(), 30);
    }

    #[test]
    fn distributor_role_takes_over_with_state_intact() {
        let (cf, wlm, d) = rig(2);
        let placements: Vec<Placement> = (0..10u64).map(|c| d.route(c).unwrap()).collect();
        // The distributing system dies: its handle vanishes…
        drop(d);
        // …a backup opens a handle over the same CF structure and serves
        // the established connections identically.
        let backup =
            SysplexDistributor::open(&cf.list_structure("EZBDVIPA").unwrap(), cf.subchannel(), wlm).unwrap();
        for p in &placements {
            assert_eq!(backup.route(p.client).unwrap(), *p, "connection table survived takeover");
        }
        assert_eq!(backup.connections().unwrap().len(), 10);
    }

    #[test]
    fn no_listeners_is_an_error() {
        let (_l, _w, d) = rig(1);
        d.deregister_listener(SystemId::new(0)).unwrap();
        assert_eq!(d.route(1).unwrap_err(), CfError::NoSuchEntry);
        assert!(d.deregister_listener(SystemId::new(0)).is_err());
    }
}
