//! Regression: a consumer woken by the empty->non-empty transition signal
//! claims the entry the instant the producer drops the header lock. The
//! entry index must be published under that lock, or the producer's stale
//! index insert lands after the claim and a later delete spins forever.
//!
//! Sleep-free: the producer lock-steps on the structure's entry count, so
//! every put hits a drained READY list and fires the empty->non-empty
//! transition pulse the parked consumer wakes on. The generation protocol
//! in `take_wait` makes the handoff correct regardless of whether the
//! consumer is already parked or still polling — no timing window to
//! widen with sleeps.

use std::time::Duration;
use sysplex_core::facility::{CfConfig, CouplingFacility};
use sysplex_subsys::workq::{queue_params, SharedQueue};

#[test]
fn woken_consumer_claim_does_not_corrupt_entry_index() {
    let cf = CouplingFacility::new(CfConfig::named("CF01"));
    let list = cf.allocate_list_structure("MSGQ", queue_params()).unwrap();
    let consumer = SharedQueue::open(&list, cf.subchannel()).unwrap();
    let producer = SharedQueue::open(&list, cf.subchannel()).unwrap();
    const ITEMS: u64 = 200;
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for _ in 0..ITEMS {
                let item = consumer.take_wait(Duration::from_secs(30)).unwrap().unwrap();
                consumer.complete(&item).unwrap();
            }
        });
        for i in 0..ITEMS {
            // Wait for the previous item to be claimed AND completed; the
            // next put then transitions the list empty->non-empty under
            // the header lock, racing the wakeup against the index insert.
            while list.entry_count() != 0 {
                std::thread::yield_now();
            }
            producer.put(i, b"ping").unwrap();
        }
    });
    assert_eq!(list.entry_count(), 0, "every entry claimed and deleted exactly once");
}
