//! Regression: a consumer woken by the empty->non-empty transition signal
//! claims the entry the instant the producer drops the header lock. The
//! entry index must be published under that lock, or the producer's stale
//! index insert lands after the claim and a later delete spins forever.

use std::time::Duration;
use sysplex_core::facility::{CfConfig, CouplingFacility};
use sysplex_subsys::workq::{queue_params, SharedQueue};

#[test]
fn woken_consumer_claim_does_not_corrupt_entry_index() {
    let cf = CouplingFacility::new(CfConfig::named("CF01"));
    let list = cf.allocate_list_structure("MSGQ", queue_params()).unwrap();
    let consumer = SharedQueue::open(&list, cf.subchannel()).unwrap();
    let producer = SharedQueue::open(&list, cf.subchannel()).unwrap();
    for i in 0..50u64 {
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| consumer.take_wait(Duration::from_secs(5)).unwrap().unwrap());
            std::thread::sleep(Duration::from_millis(5));
            producer.put(i, b"ping").unwrap();
            let item = waiter.join().unwrap();
            consumer.complete(&item).unwrap();
        });
    }
}
