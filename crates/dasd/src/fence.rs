//! I/O fencing — fail-stop isolation of sick systems.
//!
//! §3.2: "functions are also provided to automatically terminate a failed
//! processor and disconnect the processor from its I/O devices. This
//! enables other multi-system components to be designed with a 'fail-stop'
//! strategy (to prevent problems from processors that appear faulty because
//! of the heartbeat function and then resume processing)."
//!
//! [`FenceControl`] is the shared switchgear: the heartbeat monitor fences
//! a system, and from that instant every I/O the zombie issues is rejected
//! — even if its threads are still running.

use crate::error::{IoError, IoResult};
use std::sync::atomic::{AtomicU32, Ordering};

/// Sysplex-wide fence state, one bit per system.
#[derive(Debug, Default)]
pub struct FenceControl {
    fenced: AtomicU32,
}

impl FenceControl {
    /// All systems unfenced.
    pub fn new() -> Self {
        FenceControl::default()
    }

    /// Fence a system: its I/O is rejected from now on.
    pub fn fence(&self, system: u8) {
        self.fenced.fetch_or(1 << system, Ordering::AcqRel);
    }

    /// Lift the fence (system re-IPLed and rejoining).
    pub fn unfence(&self, system: u8) {
        self.fenced.fetch_and(!(1 << system), Ordering::AcqRel);
    }

    /// Whether a system is fenced.
    pub fn is_fenced(&self, system: u8) -> bool {
        self.fenced.load(Ordering::Acquire) & (1 << system) != 0
    }

    /// Gate an I/O request.
    pub fn check(&self, system: u8) -> IoResult<()> {
        if self.is_fenced(system) {
            Err(IoError::Fenced(system))
        } else {
            Ok(())
        }
    }

    /// Count of fenced systems.
    pub fn fenced_count(&self) -> u32 {
        self.fenced.load(Ordering::Acquire).count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fence_lifecycle() {
        let f = FenceControl::new();
        assert!(f.check(3).is_ok());
        f.fence(3);
        assert!(f.is_fenced(3));
        assert_eq!(f.check(3).unwrap_err(), IoError::Fenced(3));
        assert!(f.check(4).is_ok(), "other systems unaffected");
        f.unfence(3);
        assert!(f.check(3).is_ok());
    }

    #[test]
    fn multiple_fences_counted() {
        let f = FenceControl::new();
        f.fence(0);
        f.fence(31);
        assert_eq!(f.fenced_count(), 2);
    }
}
