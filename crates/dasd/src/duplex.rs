//! Duplexed volumes with hot-switch.
//!
//! §3.2: the operating-system state repositories (couple data sets) are
//! kept on duplexed disks with "availability enhancements for planned and
//! unplanned changes to the state repositories (e.g., 'hot switching' of
//! the duplexed disks)". Writes are mirrored to both members; a member
//! failure switches service to the survivor without interrupting I/O, and
//! a replacement can be brought in and re-synchronised online.

use crate::error::{IoError, IoResult};
use crate::volume::Volume;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which member currently serves reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActiveMember {
    /// The primary member.
    Primary,
    /// The alternate member (after a hot switch).
    Alternate,
}

/// A synchronously-mirrored pair of volumes.
#[derive(Debug)]
pub struct DuplexPair {
    primary: RwLock<Option<Arc<Volume>>>,
    alternate: RwLock<Option<Arc<Volume>>>,
    /// Hot switches performed.
    pub switches: AtomicU64,
}

impl DuplexPair {
    /// Form a pair. The alternate is optional (simplex mode).
    pub fn new(primary: Arc<Volume>, alternate: Option<Arc<Volume>>) -> Self {
        DuplexPair {
            primary: RwLock::new(Some(primary)),
            alternate: RwLock::new(alternate),
            switches: AtomicU64::new(0),
        }
    }

    /// True when both members are present.
    pub fn is_duplexed(&self) -> bool {
        self.primary.read().is_some() && self.alternate.read().is_some()
    }

    /// Read from the active member; on its failure, hot-switch to the
    /// survivor and retry.
    pub fn read(&self, block: u64) -> IoResult<Vec<u8>> {
        let primary = self.primary.read().clone();
        if let Some(p) = primary {
            match p.read(block) {
                Ok(d) => return Ok(d),
                Err(IoError::DeviceOffline) => self.hot_switch()?,
                Err(e) => return Err(e),
            }
        } else {
            self.hot_switch()?;
        }
        let p = self.primary.read().clone().ok_or(IoError::DuplexDown)?;
        p.read(block)
    }

    /// Write to both members. A member that fails mid-write is dropped
    /// from the pair (the survivor carries on simplex).
    pub fn write(&self, block: u64, data: &[u8]) -> IoResult<()> {
        let primary = self.primary.read().clone();
        let alternate = self.alternate.read().clone();
        let mut wrote = false;
        if let Some(p) = &primary {
            match p.write(block, data) {
                Ok(()) => wrote = true,
                Err(IoError::DeviceOffline) => {
                    *self.primary.write() = None;
                }
                Err(e) => return Err(e),
            }
        }
        if let Some(a) = &alternate {
            match a.write(block, data) {
                Ok(()) => wrote = true,
                Err(IoError::DeviceOffline) => {
                    *self.alternate.write() = None;
                }
                Err(e) => return Err(e),
            }
        }
        if !wrote {
            return Err(IoError::DuplexDown);
        }
        if self.primary.read().is_none() {
            self.hot_switch()?;
        }
        Ok(())
    }

    /// Atomic read-modify-write applied to both members (primary decides
    /// the result; the alternate mirrors the bytes).
    pub fn update<R>(&self, block: u64, f: impl FnOnce(&mut Vec<u8>) -> R) -> IoResult<R> {
        let primary = self.primary.read().clone();
        let Some(p) = primary else {
            self.hot_switch()?;
            let p = self.primary.read().clone().ok_or(IoError::DuplexDown)?;
            return self.update_on(&p, block, f);
        };
        match self.update_on(&p, block, f) {
            Err(IoError::DeviceOffline) => {
                *self.primary.write() = None;
                self.hot_switch()?;
                Err(IoError::DeviceOffline) // caller retries; state unchanged
            }
            other => other,
        }
    }

    fn update_on<R>(&self, p: &Arc<Volume>, block: u64, f: impl FnOnce(&mut Vec<u8>) -> R) -> IoResult<R> {
        let r = p.update(block, f)?;
        let data = p.read(block)?;
        if let Some(a) = self.alternate.read().clone() {
            if a.write(block, &data) == Err(IoError::DeviceOffline) {
                *self.alternate.write() = None;
            }
        }
        Ok(r)
    }

    /// Promote the alternate to primary (member failure or planned swap).
    pub fn hot_switch(&self) -> IoResult<()> {
        let mut primary = self.primary.write();
        let mut alternate = self.alternate.write();
        let alt = alternate.take().ok_or(IoError::DuplexDown)?;
        *primary = Some(alt);
        self.switches.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Introduce a fresh alternate and re-synchronise it from the primary
    /// (planned reconfiguration, §2.5).
    pub fn replace_alternate(&self, new_alternate: Arc<Volume>) -> IoResult<()> {
        let primary = self.primary.read().clone().ok_or(IoError::DuplexDown)?;
        new_alternate.clone_contents_from(&primary);
        *self.alternate.write() = Some(new_alternate);
        Ok(())
    }

    /// Name of the member currently serving reads (diagnostics).
    pub fn active_volume_name(&self) -> Option<String> {
        self.primary.read().as_ref().map(|v| v.name().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::IoModel;

    fn vol(name: &str) -> Arc<Volume> {
        Arc::new(Volume::new(name, 100, IoModel::instant()))
    }

    #[test]
    fn writes_mirror_to_both_members() {
        let p = vol("P");
        let a = vol("A");
        let pair = DuplexPair::new(Arc::clone(&p), Some(Arc::clone(&a)));
        pair.write(3, b"mirrored").unwrap();
        assert_eq!(p.read(3).unwrap(), b"mirrored");
        assert_eq!(a.read(3).unwrap(), b"mirrored");
    }

    #[test]
    fn primary_failure_hot_switches_on_read() {
        let p = vol("P");
        let a = vol("A");
        let pair = DuplexPair::new(Arc::clone(&p), Some(Arc::clone(&a)));
        pair.write(1, b"v").unwrap();
        p.set_online(false);
        assert_eq!(pair.read(1).unwrap(), b"v", "read served by alternate after switch");
        assert_eq!(pair.switches.load(Ordering::Relaxed), 1);
        assert_eq!(pair.active_volume_name().as_deref(), Some("A"));
    }

    #[test]
    fn primary_failure_during_write_keeps_survivor_current() {
        let p = vol("P");
        let a = vol("A");
        let pair = DuplexPair::new(Arc::clone(&p), Some(Arc::clone(&a)));
        p.set_online(false);
        pair.write(2, b"solo").unwrap();
        assert_eq!(pair.read(2).unwrap(), b"solo");
        assert!(!pair.is_duplexed(), "now simplex on the survivor");
    }

    #[test]
    fn both_members_down_is_fatal() {
        let p = vol("P");
        let a = vol("A");
        let pair = DuplexPair::new(Arc::clone(&p), Some(Arc::clone(&a)));
        p.set_online(false);
        a.set_online(false);
        assert_eq!(pair.write(0, b"x").unwrap_err(), IoError::DuplexDown);
    }

    #[test]
    fn replace_alternate_resynchronises() {
        let p = vol("P");
        let a = vol("A");
        let pair = DuplexPair::new(Arc::clone(&p), Some(a));
        pair.write(7, b"seven").unwrap();
        pair.hot_switch().unwrap(); // planned swap: A is now primary
        let fresh = vol("B");
        pair.replace_alternate(Arc::clone(&fresh)).unwrap();
        assert!(pair.is_duplexed());
        assert_eq!(fresh.read(7).unwrap(), b"seven", "fresh member carries current data");
        pair.write(8, b"eight").unwrap();
        assert_eq!(fresh.read(8).unwrap(), b"eight");
    }

    #[test]
    fn update_mirrors_result() {
        let p = vol("P");
        let a = vol("A");
        let pair = DuplexPair::new(Arc::clone(&p), Some(Arc::clone(&a)));
        pair.update(0, |d| d.extend_from_slice(b"abc")).unwrap();
        assert_eq!(a.read(0).unwrap(), b"abc");
    }
}
