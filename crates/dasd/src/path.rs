//! Multipath channel access with automatic reconfiguration.
//!
//! An ESCON-era device is reached through several channel paths; when one
//! fails, I/O is transparently redriven on a surviving path ("multiple
//! paths with automatic reconfiguration for availability", §3.1, \[4\]).

use crate::error::{IoError, IoResult};
use crate::volume::Volume;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// A set of channel paths to one volume.
#[derive(Debug)]
pub struct PathSet {
    volume: Arc<Volume>,
    /// Bit per path: 1 = operational.
    online_mask: AtomicU32,
    path_count: u32,
    rotor: AtomicU64,
    /// I/O operations redriven after a path failure.
    pub redrives: AtomicU64,
}

impl PathSet {
    /// Wrap `volume` behind `paths` channel paths (1..=32).
    pub fn new(volume: Arc<Volume>, paths: u32) -> Self {
        assert!((1..=32).contains(&paths), "1..=32 channel paths");
        let mask = if paths == 32 { u32::MAX } else { (1u32 << paths) - 1 };
        PathSet {
            volume,
            online_mask: AtomicU32::new(mask),
            path_count: paths,
            rotor: AtomicU64::new(0),
            redrives: AtomicU64::new(0),
        }
    }

    /// The underlying volume.
    pub fn volume(&self) -> &Arc<Volume> {
        &self.volume
    }

    /// Mark a path failed. I/O continues on the remaining paths.
    pub fn fail_path(&self, path: u32) {
        assert!(path < self.path_count);
        self.online_mask.fetch_and(!(1 << path), Ordering::AcqRel);
    }

    /// Restore a failed path.
    pub fn restore_path(&self, path: u32) {
        assert!(path < self.path_count);
        self.online_mask.fetch_or(1 << path, Ordering::AcqRel);
    }

    /// Count of operational paths.
    pub fn online_paths(&self) -> u32 {
        self.online_mask.load(Ordering::Acquire).count_ones()
    }

    /// Select an operational path (round-robin), recording a redrive when
    /// the first choice is down. Returns `None` when every path is down.
    fn select_path(&self) -> Option<u32> {
        let mask = self.online_mask.load(Ordering::Acquire);
        if mask == 0 {
            return None;
        }
        let first = (self.rotor.fetch_add(1, Ordering::Relaxed) % self.path_count as u64) as u32;
        if mask & (1 << first) != 0 {
            return Some(first);
        }
        self.redrives.fetch_add(1, Ordering::Relaxed);
        (0..self.path_count).map(|i| (first + i) % self.path_count).find(|&p| mask & (1 << p) != 0)
    }

    /// Read through an operational path.
    pub fn read(&self, block: u64) -> IoResult<Vec<u8>> {
        self.select_path().ok_or(IoError::NoPaths)?;
        self.volume.read(block)
    }

    /// Write through an operational path.
    pub fn write(&self, block: u64, data: &[u8]) -> IoResult<()> {
        self.select_path().ok_or(IoError::NoPaths)?;
        self.volume.write(block, data)
    }

    /// Atomic read-modify-write through an operational path.
    pub fn update<R>(&self, block: u64, f: impl FnOnce(&mut Vec<u8>) -> R) -> IoResult<R> {
        self.select_path().ok_or(IoError::NoPaths)?;
        self.volume.update(block, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::IoModel;

    fn pathset(paths: u32) -> PathSet {
        PathSet::new(Arc::new(Volume::new("V", 100, IoModel::instant())), paths)
    }

    #[test]
    fn io_flows_through_paths() {
        let p = pathset(4);
        p.write(0, b"data").unwrap();
        assert_eq!(p.read(0).unwrap(), b"data");
        assert_eq!(p.online_paths(), 4);
    }

    #[test]
    fn failover_is_transparent() {
        let p = pathset(4);
        p.fail_path(0);
        p.fail_path(1);
        p.fail_path(2);
        assert_eq!(p.online_paths(), 1);
        for i in 0..20 {
            p.write(i, b"x").unwrap();
        }
        assert!(p.redrives.load(Ordering::Relaxed) > 0, "redrives recorded");
    }

    #[test]
    fn all_paths_down_fails_io() {
        let p = pathset(2);
        p.fail_path(0);
        p.fail_path(1);
        assert_eq!(p.read(0).unwrap_err(), IoError::NoPaths);
        p.restore_path(1);
        assert!(p.read(0).is_ok(), "restored path resumes I/O");
    }

    #[test]
    fn thirty_two_paths_supported() {
        let p = pathset(32);
        assert_eq!(p.online_paths(), 32);
        p.fail_path(31);
        assert_eq!(p.online_paths(), 31);
    }
}
