//! A block-addressed DASD volume.
//!
//! Substitutes for a 3390-style device behind ESCON channels. Service time
//! is simulated (default ~4 ms per I/O, 1996-era) so that experiments see
//! the paper's cost hierarchy: DASD I/O is three orders of magnitude more
//! expensive than a CF command.

use crate::error::{IoError, IoResult};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Maximum bytes per block (a 4 KiB page).
pub const BLOCK_SIZE: usize = 4096;

/// Service-time model for a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoModel {
    /// Per-I/O service time in microseconds.
    pub service_us: u64,
    /// When false, I/O completes immediately (functional mode).
    pub simulate: bool,
}

impl IoModel {
    /// 1996-era disk: ~4 ms per I/O.
    pub fn disk_1996() -> Self {
        IoModel { service_us: 4_000, simulate: true }
    }

    /// A faster cached-controller model (~1.5 ms).
    pub fn cached_controller() -> Self {
        IoModel { service_us: 1_500, simulate: true }
    }

    /// No simulated delay.
    pub fn instant() -> Self {
        IoModel { service_us: 0, simulate: false }
    }

    pub(crate) fn charge(&self) {
        if self.simulate && self.service_us > 0 {
            // Millisecond-scale waits: sleep is accurate enough and does
            // not burn a host CPU the way the CF's µs spin-waits must.
            std::thread::sleep(Duration::from_micros(self.service_us));
        }
    }
}

/// Per-volume I/O counters.
#[derive(Debug, Default)]
pub struct VolumeStats {
    /// Completed reads.
    pub reads: AtomicU64,
    /// Completed writes.
    pub writes: AtomicU64,
}

/// A DASD volume: `capacity` blocks of up to [`BLOCK_SIZE`] bytes.
#[derive(Debug)]
pub struct Volume {
    name: String,
    capacity: u64,
    blocks: RwLock<HashMap<u64, Vec<u8>>>,
    model: IoModel,
    online: AtomicBool,
    /// Published counters.
    pub stats: VolumeStats,
}

impl Volume {
    /// Create an online volume.
    pub fn new(name: &str, capacity: u64, model: IoModel) -> Self {
        Volume {
            name: name.to_string(),
            capacity,
            blocks: RwLock::new(HashMap::new()),
            model,
            online: AtomicBool::new(true),
            stats: VolumeStats::default(),
        }
    }

    /// Volume serial.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity in blocks.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Vary the device offline/online (failure injection).
    pub fn set_online(&self, online: bool) {
        self.online.store(online, Ordering::Release);
    }

    /// Whether the device accepts I/O.
    pub fn is_online(&self) -> bool {
        self.online.load(Ordering::Acquire)
    }

    fn check(&self, block: u64) -> IoResult<()> {
        if !self.is_online() {
            return Err(IoError::DeviceOffline);
        }
        if block >= self.capacity {
            return Err(IoError::OutOfExtent { block, capacity: self.capacity });
        }
        Ok(())
    }

    /// Read a block. Unwritten blocks read back as empty.
    pub fn read(&self, block: u64) -> IoResult<Vec<u8>> {
        self.check(block)?;
        self.model.charge();
        let data = self.blocks.read().get(&block).cloned().unwrap_or_default();
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        Ok(data)
    }

    /// Write a block.
    pub fn write(&self, block: u64, data: &[u8]) -> IoResult<()> {
        self.check(block)?;
        if data.len() > BLOCK_SIZE {
            return Err(IoError::BlockTooLarge(data.len()));
        }
        self.model.charge();
        self.blocks.write().insert(block, data.to_vec());
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Atomically read-modify-write a block under the volume's write
    /// latch (controller-level compare-and-swap used by the couple data
    /// sets' serialized access protocol).
    pub fn update<R>(&self, block: u64, f: impl FnOnce(&mut Vec<u8>) -> R) -> IoResult<R> {
        self.check(block)?;
        self.model.charge();
        let mut blocks = self.blocks.write();
        let data = blocks.entry(block).or_default();
        let r = f(data);
        if data.len() > BLOCK_SIZE {
            data.truncate(BLOCK_SIZE);
            return Err(IoError::BlockTooLarge(BLOCK_SIZE + 1));
        }
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        Ok(r)
    }

    /// Number of blocks ever written (diagnostics).
    pub fn blocks_in_use(&self) -> usize {
        self.blocks.read().len()
    }

    /// Copy every written block from `src` (duplex re-synchronisation).
    pub fn clone_contents_from(&self, src: &Volume) {
        let src_blocks = src.blocks.read();
        let mut dst = self.blocks.write();
        dst.clear();
        for (k, v) in src_blocks.iter() {
            dst.insert(*k, v.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let v = Volume::new("VOL001", 100, IoModel::instant());
        v.write(5, b"hello").unwrap();
        assert_eq!(v.read(5).unwrap(), b"hello");
        assert_eq!(v.read(6).unwrap(), Vec::<u8>::new(), "unwritten block reads empty");
        assert_eq!(v.stats.reads.load(Ordering::Relaxed), 2);
        assert_eq!(v.stats.writes.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn extent_enforced() {
        let v = Volume::new("VOL001", 10, IoModel::instant());
        assert_eq!(v.read(10).unwrap_err(), IoError::OutOfExtent { block: 10, capacity: 10 });
        assert_eq!(v.write(11, b"").unwrap_err(), IoError::OutOfExtent { block: 11, capacity: 10 });
    }

    #[test]
    fn block_size_enforced() {
        let v = Volume::new("VOL001", 10, IoModel::instant());
        assert!(v.write(0, &vec![0u8; BLOCK_SIZE]).is_ok());
        assert_eq!(
            v.write(0, &vec![0u8; BLOCK_SIZE + 1]).unwrap_err(),
            IoError::BlockTooLarge(BLOCK_SIZE + 1)
        );
    }

    #[test]
    fn offline_device_rejects_io() {
        let v = Volume::new("VOL001", 10, IoModel::instant());
        v.set_online(false);
        assert_eq!(v.read(0).unwrap_err(), IoError::DeviceOffline);
        v.set_online(true);
        assert!(v.read(0).is_ok());
    }

    #[test]
    fn update_is_atomic_under_concurrency() {
        use std::sync::Arc;
        let v = Arc::new(Volume::new("VOL001", 10, IoModel::instant()));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let v = Arc::clone(&v);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        v.update(0, |data| {
                            if data.is_empty() {
                                data.extend_from_slice(&0u64.to_be_bytes());
                            }
                            let n = u64::from_be_bytes(data[..8].try_into().unwrap());
                            data[..8].copy_from_slice(&(n + 1).to_be_bytes());
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let data = v.read(0).unwrap();
        assert_eq!(u64::from_be_bytes(data[..8].try_into().unwrap()), 8000);
    }

    #[test]
    fn simulated_latency_is_charged() {
        let v = Volume::new("VOL001", 10, IoModel { service_us: 2_000, simulate: true });
        let t0 = std::time::Instant::now();
        v.write(0, b"x").unwrap();
        assert!(t0.elapsed() >= Duration::from_micros(1_800));
    }

    #[test]
    fn clone_contents_resynchronises() {
        let a = Volume::new("A", 10, IoModel::instant());
        let b = Volume::new("B", 10, IoModel::instant());
        a.write(1, b"one").unwrap();
        a.write(2, b"two").unwrap();
        b.write(3, b"stale").unwrap();
        b.clone_contents_from(&a);
        assert_eq!(b.read(1).unwrap(), b"one");
        assert_eq!(b.read(3).unwrap(), Vec::<u8>::new(), "stale data gone");
    }
}
