//! The shared DASD farm: full connectivity from every system.
//!
//! "The disks are fully connected to all processors" (§3.1) — the defining
//! physical property that makes the data-sharing design possible. The farm
//! is the single namespace of volumes; every I/O names the issuing system
//! so the fence can enforce fail-stop isolation.

use crate::error::{IoError, IoResult};
use crate::fence::FenceControl;
use crate::path::PathSet;
use crate::volume::{IoModel, Volume};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// The sysplex's shared disk farm.
#[derive(Debug)]
pub struct DasdFarm {
    volumes: RwLock<HashMap<String, Arc<PathSet>>>,
    fence: Arc<FenceControl>,
    default_model: IoModel,
}

impl DasdFarm {
    /// An empty farm whose volumes default to `model` service times.
    pub fn new(model: IoModel) -> Arc<Self> {
        Arc::new(DasdFarm {
            volumes: RwLock::new(HashMap::new()),
            fence: Arc::new(FenceControl::new()),
            default_model: model,
        })
    }

    /// The farm's fence switchgear (shared with the heartbeat monitor).
    pub fn fence(&self) -> &Arc<FenceControl> {
        &self.fence
    }

    /// Initialise a volume with `capacity` blocks behind `paths` channel
    /// paths.
    pub fn add_volume(&self, name: &str, capacity: u64, paths: u32) -> IoResult<Arc<PathSet>> {
        let mut vols = self.volumes.write();
        if vols.contains_key(name) {
            return Err(IoError::VolumeExists(name.to_string()));
        }
        let v = Arc::new(PathSet::new(Arc::new(Volume::new(name, capacity, self.default_model)), paths));
        vols.insert(name.to_string(), Arc::clone(&v));
        Ok(v)
    }

    /// Look up a volume.
    pub fn volume(&self, name: &str) -> IoResult<Arc<PathSet>> {
        self.volumes.read().get(name).cloned().ok_or_else(|| IoError::NoSuchVolume(name.to_string()))
    }

    /// Read a block as `system` (fence-checked).
    pub fn read(&self, system: u8, volume: &str, block: u64) -> IoResult<Vec<u8>> {
        self.fence.check(system)?;
        self.volume(volume)?.read(block)
    }

    /// Write a block as `system` (fence-checked).
    pub fn write(&self, system: u8, volume: &str, block: u64, data: &[u8]) -> IoResult<()> {
        self.fence.check(system)?;
        self.volume(volume)?.write(block, data)
    }

    /// Atomic read-modify-write as `system` (fence-checked).
    pub fn update<R>(
        &self,
        system: u8,
        volume: &str,
        block: u64,
        f: impl FnOnce(&mut Vec<u8>) -> R,
    ) -> IoResult<R> {
        self.fence.check(system)?;
        self.volume(volume)?.update(block, f)
    }

    /// Volume names, sorted.
    pub fn volume_names(&self) -> Vec<String> {
        let mut v: Vec<_> = self.volumes.read().keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn farm_full_connectivity() {
        let farm = DasdFarm::new(IoModel::instant());
        farm.add_volume("SYSPLX", 100, 4).unwrap();
        // Every system reads what any system wrote.
        farm.write(0, "SYSPLX", 1, b"shared").unwrap();
        for sys in 0..32 {
            assert_eq!(farm.read(sys, "SYSPLX", 1).unwrap(), b"shared");
        }
    }

    #[test]
    fn duplicate_volume_rejected() {
        let farm = DasdFarm::new(IoModel::instant());
        farm.add_volume("V", 10, 1).unwrap();
        assert_eq!(farm.add_volume("V", 10, 1).unwrap_err(), IoError::VolumeExists("V".into()));
    }

    #[test]
    fn missing_volume_errors() {
        let farm = DasdFarm::new(IoModel::instant());
        assert_eq!(farm.read(0, "NOPE", 0).unwrap_err(), IoError::NoSuchVolume("NOPE".into()));
    }

    #[test]
    fn fenced_system_cannot_touch_any_volume() {
        let farm = DasdFarm::new(IoModel::instant());
        farm.add_volume("A", 10, 1).unwrap();
        farm.add_volume("B", 10, 1).unwrap();
        farm.fence().fence(5);
        assert_eq!(farm.write(5, "A", 0, b"x").unwrap_err(), IoError::Fenced(5));
        assert_eq!(farm.read(5, "B", 0).unwrap_err(), IoError::Fenced(5));
        assert!(farm.write(6, "A", 0, b"x").is_ok(), "healthy systems unaffected");
    }
}
