//! I/O error type.

use std::fmt;

/// Result alias for DASD operations.
pub type IoResult<T> = Result<T, IoError>;

/// Errors surfaced by the DASD substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoError {
    /// Block number beyond the volume's extent.
    OutOfExtent {
        /// Requested block.
        block: u64,
        /// Volume capacity in blocks.
        capacity: u64,
    },
    /// Record too large for a block.
    BlockTooLarge(usize),
    /// Every channel path to the device has failed.
    NoPaths,
    /// The issuing system has been fenced from I/O (fail-stop isolation).
    Fenced(u8),
    /// The named volume does not exist.
    NoSuchVolume(String),
    /// A volume with this name already exists.
    VolumeExists(String),
    /// Both members of a duplex pair have failed.
    DuplexDown,
    /// The device has been varied offline (failure injection).
    DeviceOffline,
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::OutOfExtent { block, capacity } => {
                write!(f, "block {block} beyond extent (capacity {capacity})")
            }
            IoError::BlockTooLarge(n) => write!(f, "record of {n} bytes exceeds block size"),
            IoError::NoPaths => write!(f, "no operational channel paths"),
            IoError::Fenced(s) => write!(f, "system SYS{s:02} is fenced from I/O"),
            IoError::NoSuchVolume(v) => write!(f, "no such volume: {v}"),
            IoError::VolumeExists(v) => write!(f, "volume already exists: {v}"),
            IoError::DuplexDown => write!(f, "both duplex members failed"),
            IoError::DeviceOffline => write!(f, "device offline"),
        }
    }
}

impl std::error::Error for IoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(IoError::NoPaths.to_string(), "no operational channel paths");
        assert_eq!(IoError::Fenced(3).to_string(), "system SYS03 is fenced from I/O");
    }
}
