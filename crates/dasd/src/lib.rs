//! # sysplex-dasd — the shared DASD substrate
//!
//! §3.1 of the paper: "The disks are fully connected to all processors.
//! The I/O architecture has many advanced reliability and performance
//! features (e.g., multiple paths with automatic reconfiguration for
//! availability)." §3.2 adds duplexed state repositories with "hot
//! switching" and the heartbeat function's ability to "disconnect the
//! processor from its I/O devices" (fencing).
//!
//! This crate provides those pieces as an in-memory substitution for the
//! 1996 ESCON-attached disk farm:
//!
//! * [`volume::Volume`] — a block-addressed device with a simulated
//!   millisecond-scale service time.
//! * [`path::PathSet`] — multiple channel paths to one volume with
//!   automatic failover.
//! * [`duplex::DuplexPair`] — synchronous mirroring with hot-switch, used
//!   by the couple data sets.
//! * [`fence::FenceControl`] — the I/O fence: once a system is fenced every
//!   I/O it issues is rejected, enabling the fail-stop design of the
//!   sysplex monitoring services.
//! * [`farm::DasdFarm`] — the full-connectivity collection of volumes all
//!   systems share.

pub mod duplex;
pub mod error;
pub mod farm;
pub mod fence;
pub mod path;
pub mod volume;

pub use error::{IoError, IoResult};
pub use farm::DasdFarm;
pub use fence::FenceControl;
pub use volume::{IoModel, Volume};
