//! Shared rigs and table helpers for the experiment benches.
//!
//! Every bench regenerates one figure or quantitative claim of the paper
//! (see DESIGN.md §3 for the index and EXPERIMENTS.md for paper-vs-measured
//! results). The rigs here stand up the live stack the way the examples
//! do, sized for a small host.

pub mod campaign;
pub mod hotpath;
pub mod opsday;
pub mod scale;

use std::sync::Arc;
use std::time::Duration;
use sysplex_core::facility::CouplingFacility;
use sysplex_core::trace::TraceKind;
use sysplex_core::SystemId;
use sysplex_db::group::{DataSharingGroup, GroupConfig};
use sysplex_db::Database;
use sysplex_services::monitor::{ActivityReport, Monitor};
use sysplex_services::sysplex::{Sysplex, SysplexConfig};
use sysplex_services::timer::SysplexTimer;

/// A live sysplex + data-sharing group with `members` database members.
pub struct LiveRig {
    /// The sysplex runtime.
    pub plex: Arc<Sysplex>,
    /// The CF.
    pub cf: Arc<CouplingFacility>,
    /// The data-sharing group.
    pub group: Arc<DataSharingGroup>,
    /// Database members, indexed by system.
    pub dbs: Vec<Arc<Database>>,
    /// RMF-style monitor, measuring since rig construction.
    pub monitor: Arc<Monitor>,
}

impl LiveRig {
    /// Build a rig with `members` members and `lock_entries` lock-table
    /// entries.
    pub fn new(members: u8, lock_entries: usize) -> LiveRig {
        let plex = Sysplex::new(SysplexConfig::functional("BENCHPLEX"));
        // Component trace on from the first command, so end-of-run activity
        // reports can reconcile traced completions against the accounting.
        plex.tracer.enable();
        let cf = plex.add_cf("CF01");
        let mut config = GroupConfig {
            lock_entries,
            log_blocks: 1 << 22, // criterion loops commit many times
            ..GroupConfig::default()
        };
        config.db.lock_timeout = Duration::from_millis(500);
        let group =
            DataSharingGroup::new(config, &cf, plex.farm.clone(), plex.timer.clone(), plex.xcf.clone())
                .expect("group");
        let dbs = (0..members).map(|i| group.add_member(SystemId::new(i)).expect("member")).collect();
        let monitor = Monitor::for_sysplex(&plex);
        LiveRig { plex, cf, group, dbs, monitor }
    }

    /// Tear down members cleanly (IRLM service threads).
    pub fn shutdown(&self) {
        for db in &self.dbs {
            db.irlm().crash();
        }
    }

    /// Print the end-of-run CF activity report for this rig's sysplex and
    /// assert it reconciles (see [`report_activity`]).
    pub fn activity_report(&self) -> ActivityReport {
        print_reconciled(self.monitor.report(), &self.plex.cfs())
    }
}

/// Print a rule line sized to the experiment banner.
pub fn banner(title: &str) {
    println!();
    println!("{}", "=".repeat(title.len().max(24)));
    println!("{title}");
    println!("{}", "=".repeat(title.len().max(24)));
}

/// Render one table row of f64 cells at fixed width.
pub fn row(label: &str, cells: &[String]) {
    print!("{label:<26}");
    for c in cells {
        print!(" {c:>12}");
    }
    println!();
}

/// Format helper.
pub fn f(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Print the unified command path's per-class accounting (§3.3's sync and
/// asynchronous execution modes) for one facility and assert that every
/// class reconciles `issued == sync + async_converted`.
pub fn command_path_report(cf: &CouplingFacility) {
    let stats = cf.command_stats();
    banner("CF command path (all subchannels of this facility)");
    row("class", &["issued", "sync", "async-converted", "sync %", "mean µs"].map(String::from));
    for (class, issued, sync, async_converted, mean_ns) in stats.report() {
        assert_eq!(issued, sync + async_converted, "{class}: issued == sync + async");
        row(
            class,
            &[
                format!("{issued}"),
                format!("{sync}"),
                format!("{async_converted}"),
                format!("{:.1}%", sysplex_core::stats::ratio(sync, issued) * 100.0),
                format!("{:.1}", mean_ns / 1000.0),
            ],
        );
    }
    println!(
        "  overall sync-grant ratio {:.1}% ({} async-converted of {} commands)",
        sysplex_core::stats::ratio(stats.sync(), stats.issued()) * 100.0,
        stats.async_converted(),
        stats.issued()
    );
}

/// Start watching `cfs` for an end-of-run activity report: enables their
/// component trace and opens a measurement interval. Call before driving
/// the workload so traced completions cover every issued command, then
/// finish with [`report_activity`].
pub fn watch(title: &str, cfs: &[Arc<CouplingFacility>]) -> Arc<Monitor> {
    for cf in cfs {
        cf.tracer().enable();
    }
    Monitor::new(title, SysplexTimer::new(), cfs.to_vec())
}

/// Print the RMF-style CF activity report for the interval opened by
/// [`watch`] and assert the observability invariants: per-class and total
/// `issued == sync + async_converted`, trace `retained == emitted − dropped`,
/// and — when tracing was on from the first command — a CMD-COMPL record for
/// every issued command.
pub fn report_activity(monitor: &Monitor, cfs: &[Arc<CouplingFacility>]) -> ActivityReport {
    print_reconciled(monitor.report(), cfs)
}

fn print_reconciled(report: ActivityReport, cfs: &[Arc<CouplingFacility>]) -> ActivityReport {
    println!("{report}");
    assert!(report.reconciles(), "activity report reconciles");
    for cf in cfs {
        let tracer = cf.tracer();
        if tracer.is_enabled() {
            assert_eq!(
                tracer.kind_count(TraceKind::CmdCompleted),
                cf.command_stats().issued(),
                "{}: every issued command left a CMD-COMPL trace record",
                cf.name()
            );
        }
    }
    report
}

/// A criterion instance tuned for a small single-core host.
#[must_use]
pub fn small_criterion() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
        .configure_from_args()
}
