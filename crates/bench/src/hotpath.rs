//! The standing CF hot-path throughput rig behind `examples/cf_hotpath.rs`
//! and the CI `hotpath-bench` job.
//!
//! Drives 1/2/4/8-thread (configurable) uncontended and Zipf-contended
//! lock/list/cache mixes through the **real connection layer** — every
//! operation crosses a [`CfSubchannel`](sysplex_core::CfSubchannel) with
//! instant links, so what's measured is the CF's own concurrency: the
//! lock-table CAS path, the sharded record/index tables, the sharded cache
//! directory, and the per-command accounting. Output is a schema-stable
//! `BENCH_cf_hotpath.json` (see DESIGN.md §8) so every future perf PR has
//! a baseline to beat.
//!
//! Contended phases use per-thread-unique resource names over a small
//! entry space: every entry collision is **false contention** by
//! construction (no two threads ever lock the same resource), which makes
//! `false_contention_pct` an exact measurement, not an estimate.
//!
//! Two phases run through full per-thread IRLM instances instead of raw
//! connections (DESIGN.md §13):
//!
//! * `regrant` — private resources locked and re-locked so the
//!   local-interest fast path dominates; `regrant_local_ratio` measures
//!   how many requests completed without any CF command.
//! * `zipf-adaptive` — the contended Zipf mix on a deliberately tiny
//!   table, with a [`LockResizePolicy`] controller growing the table
//!   *online* (quiesced rebuild under live lock traffic) until the
//!   false-contention rate falls under the §13 target.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use sysplex_core::cache::{BlockName, CacheParams, WriteKind};
use sysplex_core::facility::{CfConfig, CouplingFacility};
use sysplex_core::list::{DequeueEnd, ListParams, LockCondition, WritePosition};
use sysplex_core::lock::{DisconnectMode, LockMode, LockParams};
use sysplex_core::stats::{Histogram, HistogramSnapshot};
use sysplex_core::{CacheConnection, CommandClass, ListConnection, LockConnection, SystemId};
use sysplex_db::irlm::{Irlm, LockOutcome, LockResizePolicy};
use sysplex_services::timer::SysplexTimer;
use sysplex_services::xcf::Xcf;
use sysplex_workload::zipf::Zipf;

/// Zipf skew for the contended phases (the classic θ ≈ 0.99 hot-spot mix).
const ZIPF_THETA: f64 = 0.99;
/// Entry space of the contended lock table: small enough that Zipf-hot
/// distinct resources collide on entries.
const CONTENDED_LOCK_ENTRIES: usize = 64;
/// Distinct resource ranks per thread in the contended lock phase.
const CONTENDED_RESOURCES: usize = 512;
/// Shared headers in the contended list phase.
const CONTENDED_HEADERS: usize = 8;
/// Shared blocks in the contended cache phase.
const CONTENDED_BLOCKS: usize = 512;
/// Per-thread private blocks in the uncontended cache phase.
const PRIVATE_BLOCKS: usize = 256;
/// Private resources per thread in the IRLM re-grant phase: enough to
/// exercise the parked-interest table, few enough that after one warm
/// pass every request hits the local fast path.
const REGRANT_RESOURCES: usize = 64;
/// Adaptive phase: grow the lock table while an interval's
/// false-contention rate exceeds this fraction (half the 1% CI gate, so
/// the policy converges with margin).
const ADAPTIVE_FC_THRESHOLD: f64 = 0.005;
/// Adaptive phase size ceiling — the same geometry as the big
/// uncontended table.
const ADAPTIVE_MAX_ENTRIES: usize = 65_536;

/// Which structure model a phase exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseClass {
    /// Lock request/release through the lock table.
    Lock,
    /// List enqueue/take through headers and the entry index.
    List,
    /// Cache register-read/write-invalidate through the directory.
    Cache,
}

impl PhaseClass {
    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            PhaseClass::Lock => "lock",
            PhaseClass::List => "list",
            PhaseClass::Cache => "cache",
        }
    }

    /// Command classes whose counters and latency belong to this phase.
    fn classes(self) -> &'static [CommandClass] {
        match self {
            PhaseClass::Lock => &[CommandClass::LockRequest, CommandClass::LockRelease],
            PhaseClass::List => &[CommandClass::ListWrite, CommandClass::ListMove],
            PhaseClass::Cache => &[CommandClass::CacheRead, CommandClass::CacheWrite],
        }
    }
}

/// Result of one measured phase.
#[derive(Debug, Clone)]
pub struct PhaseResult {
    /// Structure model exercised.
    pub class: PhaseClass,
    /// `"uncontended"` or `"zipf"`.
    pub mode: &'static str,
    /// Worker threads.
    pub threads: usize,
    /// Commands issued during the phase (across the phase's classes).
    pub ops: u64,
    /// Wall-clock time of the phase.
    pub elapsed: Duration,
    /// Commands per second.
    pub ops_per_s: f64,
    /// Issuer-observed latency percentiles, microseconds.
    pub p50_us: f64,
    /// 95th percentile, microseconds.
    pub p95_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// Lock phases: CF-level synchronous grant fraction. List/cache
    /// phases: command-level synchronous execution fraction.
    pub sync_grant_ratio: f64,
    /// Lock phases: entry contentions per request, in percent. All of it
    /// is false contention by construction (threads never share a
    /// resource name). Zero for list/cache phases.
    pub false_contention_pct: f64,
    /// Commands converted to asynchronous execution during the phase
    /// (across the phase's classes). Instant links keep this at zero —
    /// see [`HotpathReport::warnings`].
    pub async_converted: u64,
    /// IRLM phases: fraction of lock requests re-granted entirely locally
    /// (no CF command). Zero for raw-connection and list/cache phases.
    pub regrant_local_ratio: f64,
}

/// Facility-wide per-class totals for the end-of-run reconciliation.
#[derive(Debug, Clone)]
pub struct ClassTotals {
    /// Stable class name.
    pub class: &'static str,
    /// Commands issued.
    pub issued: u64,
    /// Executed CPU-synchronously.
    pub sync: u64,
    /// Converted to asynchronous execution.
    pub async_converted: u64,
    /// Surfaced a link fault.
    pub faulted: u64,
}

/// Everything the benchmark measured.
#[derive(Debug, Clone)]
pub struct HotpathReport {
    /// Hardware threads available on this host (scaling assertions are
    /// only meaningful when this covers the widest phase).
    pub hw_threads: usize,
    /// Transport backend the commands travelled over (always in-process
    /// for this bench; the TCP path is measured by `sysplex_scale`).
    pub transport: &'static str,
    /// Operations per worker thread per phase.
    pub ops_per_thread: u64,
    /// Thread counts swept.
    pub thread_counts: Vec<usize>,
    /// One row per (class, mode, threads) phase.
    pub phases: Vec<PhaseResult>,
    /// Uncontended lock throughput at the widest thread count over the
    /// single-thread figure.
    pub scaling_lock_uncontended: f64,
    /// Uncontended lock round-trip p50 over a paper-model 100 MB/s
    /// coupling link (~10 µs base command latency) — the cost a local
    /// re-grant avoids. The main sweep runs instant links, which would
    /// understate the avoided round trip to pure compute time, so this
    /// is calibrated separately against [`LinkConfig::mb100`].
    pub cf_mb100_roundtrip_p50_us: f64,
    /// Calibrated CF lock round-trip p50 over the local re-grant p50 at
    /// the widest thread count — how much the §13 fast path buys per
    /// re-acquire.
    pub regrant_p50_speedup: f64,
    /// Widest thread count swept.
    pub max_threads: usize,
    /// Per-class facility totals at end of run.
    pub class_totals: Vec<ClassTotals>,
    /// Whether `issued == sync + async_converted` held for every class
    /// (and nothing faulted).
    pub counters_reconciled: bool,
}

/// Snapshot of the counters a phase measures, taken before and after.
struct ClassBaseline {
    issued: u64,
    sync: u64,
    async_converted: u64,
    latency: HistogramSnapshot,
}

fn phase_baseline(cf: &CouplingFacility, class: PhaseClass) -> Vec<ClassBaseline> {
    class
        .classes()
        .iter()
        .map(|&c| {
            let cs = cf.command_stats().class(c);
            ClassBaseline {
                issued: cs.issued.get(),
                sync: cs.sync.get(),
                async_converted: cs.async_converted.get(),
                latency: cs.latency.snapshot(),
            }
        })
        .collect()
}

/// Phase-interval `async_converted` delta across the phase's classes.
fn async_delta(cf: &CouplingFacility, class: PhaseClass, before: &[ClassBaseline]) -> u64 {
    before
        .iter()
        .zip(class.classes())
        .map(|(b, &c)| cf.command_stats().class(c).async_converted.get() - b.async_converted)
        .sum()
}

/// Run one phase: `threads` workers, each executing `body(thread_index)`
/// after a common barrier; returns the wall time between barrier release
/// and the last worker finishing.
fn run_threads<F>(threads: usize, body: F) -> Duration
where
    F: Fn(usize) + Send + Sync,
{
    let body = &body;
    let barrier = Barrier::new(threads + 1);
    let barrier = &barrier;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    barrier.wait();
                    body(t);
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for h in handles {
            h.join().expect("bench worker panicked");
        }
        start.elapsed()
    })
}

fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 * 100.0 / den as f64
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

struct Rig {
    cf: Arc<CouplingFacility>,
}

impl Rig {
    fn new(max_threads: usize) -> Rig {
        let cf = CouplingFacility::new(CfConfig::named("HOTCF"));
        // Big enough that per-thread disjoint entry ranges never collide.
        cf.allocate_lock_structure("HOTLOCK", LockParams::with_entries(65_536)).unwrap();
        // Small enough that Zipf-hot distinct resources *do* collide.
        cf.allocate_lock_structure("HOTLOCK_Z", LockParams::with_entries(CONTENDED_LOCK_ENTRIES)).unwrap();
        cf.allocate_list_structure("HOTQ", ListParams::with_headers(2 * max_threads + CONTENDED_HEADERS))
            .unwrap();
        cf.allocate_cache_structure("HOTGBP", CacheParams::store_in(16_384)).unwrap();
        Rig { cf }
    }

    fn lock_conns(&self, structure: &str, threads: usize) -> Vec<LockConnection> {
        (0..threads)
            .map(|t| {
                let s = self.cf.lock_structure(structure).unwrap();
                LockConnection::attach(
                    &s,
                    self.cf.subchannel().with_system(SystemId::new(t as u8)).for_structure_named(structure),
                )
                .unwrap()
            })
            .collect()
    }

    fn list_conns(&self, threads: usize) -> Vec<ListConnection> {
        (0..threads)
            .map(|t| {
                let s = self.cf.list_structure("HOTQ").unwrap();
                ListConnection::attach(
                    &s,
                    self.cf.subchannel().with_system(SystemId::new(t as u8)).for_structure_named("HOTQ"),
                    64,
                )
                .unwrap()
            })
            .collect()
    }

    fn cache_conns(&self, threads: usize) -> Vec<CacheConnection> {
        (0..threads)
            .map(|t| {
                let s = self.cf.cache_structure("HOTGBP").unwrap();
                CacheConnection::attach(
                    &s,
                    self.cf.subchannel().with_system(SystemId::new(t as u8)).for_structure_named("HOTGBP"),
                    4096,
                )
                .unwrap()
            })
            .collect()
    }

    fn finish_phase(
        &self,
        class: PhaseClass,
        mode: &'static str,
        threads: usize,
        elapsed: Duration,
        before: &[ClassBaseline],
        lock_deltas: Option<(u64, u64, u64)>,
    ) -> PhaseResult {
        let mut ops = 0u64;
        let mut sync = 0u64;
        let mut latency = HistogramSnapshot::default();
        for (b, &c) in before.iter().zip(class.classes()) {
            let cs = self.cf.command_stats().class(c);
            ops += cs.issued.get() - b.issued;
            sync += cs.sync.get() - b.sync;
            latency.merge(&cs.latency.snapshot().delta(&b.latency));
        }
        let (sync_grant_ratio, false_contention_pct) = match lock_deltas {
            // CF-level truth for lock phases: grants and contentions out
            // of the structure's own counters.
            Some((requests, grants, contentions)) => (ratio(grants, requests), pct(contentions, requests)),
            None => (ratio(sync, ops), 0.0),
        };
        PhaseResult {
            class,
            mode,
            threads,
            ops,
            elapsed,
            ops_per_s: ops as f64 / elapsed.as_secs_f64().max(1e-9),
            p50_us: latency.quantile_ns(0.50) as f64 / 1_000.0,
            p95_us: latency.quantile_ns(0.95) as f64 / 1_000.0,
            p99_us: latency.quantile_ns(0.99) as f64 / 1_000.0,
            sync_grant_ratio,
            false_contention_pct,
            async_converted: async_delta(&self.cf, class, before),
            regrant_local_ratio: 0.0,
        }
    }

    /// Uncontended lock phase: per-thread disjoint entry ranges.
    fn lock_uncontended(&self, threads: usize, ops: u64) -> PhaseResult {
        let conns = self.lock_conns("HOTLOCK", threads);
        let structure = self.cf.lock_structure("HOTLOCK").unwrap();
        let span = structure.entries() / threads.max(1);
        let before = phase_baseline(&self.cf, PhaseClass::Lock);
        let req0 = structure.stats.requests.get();
        let grant0 = structure.stats.sync_grants.get();
        let cont0 = structure.stats.contentions.get();
        let elapsed = run_threads(threads, |t| {
            let conn = &conns[t];
            let base = t * span;
            for i in 0..ops {
                let entry = base + (i as usize % span);
                assert!(conn.request_lock(entry, LockMode::Exclusive).unwrap().is_granted());
                conn.release_lock(entry).unwrap();
            }
        });
        let deltas = (
            structure.stats.requests.get() - req0,
            structure.stats.sync_grants.get() - grant0,
            structure.stats.contentions.get() - cont0,
        );
        for c in &conns {
            c.detach(DisconnectMode::Normal).unwrap();
        }
        self.finish_phase(PhaseClass::Lock, "uncontended", threads, elapsed, &before, Some(deltas))
    }

    /// Zipf-contended lock phase: thread-unique resource names over a
    /// tiny entry space — every contention is false contention.
    fn lock_contended(&self, threads: usize, ops: u64) -> PhaseResult {
        let conns = self.lock_conns("HOTLOCK_Z", threads);
        let structure = self.cf.lock_structure("HOTLOCK_Z").unwrap();
        let before = phase_baseline(&self.cf, PhaseClass::Lock);
        let req0 = structure.stats.requests.get();
        let grant0 = structure.stats.sync_grants.get();
        let cont0 = structure.stats.contentions.get();
        let elapsed = run_threads(threads, |t| {
            use rand::{rngs::StdRng, SeedableRng};
            let conn = &conns[t];
            let zipf = Zipf::new(CONTENDED_RESOURCES, ZIPF_THETA);
            let mut rng = StdRng::seed_from_u64(0x5CA1_AB1E ^ t as u64);
            // Hold-one-behind: each thread keeps its previous lock held
            // while requesting the next, so entries stay occupied long
            // enough for other threads to collide with them even on a
            // host with coarse scheduling.
            let mut held: Option<usize> = None;
            for _ in 0..ops {
                let rank = zipf.sample(&mut rng);
                let resource = format!("R{rank:04}.T{t}");
                let entry = conn.hash_resource(resource.as_bytes());
                if held == Some(entry) {
                    conn.release_lock(entry).unwrap();
                    held = None;
                }
                match conn.request_lock(entry, LockMode::Exclusive).unwrap() {
                    r if r.is_granted() => {
                        if let Some(prev) = held.replace(entry) {
                            conn.release_lock(prev).unwrap();
                        }
                    }
                    // Entry-level contention on a resource nobody else
                    // holds: negotiate (vacuously), record interest,
                    // then back off.
                    _ => {
                        conn.force_interest(entry, LockMode::Exclusive).unwrap();
                        conn.release_lock(entry).unwrap();
                    }
                }
            }
            if let Some(prev) = held {
                conn.release_lock(prev).unwrap();
            }
        });
        let deltas = (
            structure.stats.requests.get() - req0,
            structure.stats.sync_grants.get() - grant0,
            structure.stats.contentions.get() - cont0,
        );
        for c in &conns {
            c.detach(DisconnectMode::Normal).unwrap();
        }
        self.finish_phase(PhaseClass::Lock, "zipf", threads, elapsed, &before, Some(deltas))
    }

    /// One IRLM per worker thread on a freshly allocated lock structure,
    /// joined to a private XCF group so negotiation recalls flow.
    fn start_irlms(&self, name: &str, entries: usize, threads: usize) -> (Vec<Arc<Irlm>>, Arc<Xcf>) {
        self.cf.allocate_lock_structure(name, LockParams::with_entries(entries)).unwrap();
        let xcf = Xcf::new(SysplexTimer::new());
        let irlms = (0..threads)
            .map(|t| {
                Irlm::start(SystemId::new(t as u8), self.cf.connect_lock(name).unwrap(), &xcf).unwrap()
            })
            .collect();
        (irlms, xcf)
    }

    /// Sum one [`IrlmStats`](sysplex_db::irlm::IrlmStats) view across a
    /// member set: (requests, cf sync grants, local re-grants, false
    /// contentions).
    fn irlm_sums(irlms: &[Arc<Irlm>]) -> (u64, u64, u64, u64) {
        irlms.iter().fold((0, 0, 0, 0), |acc, m| {
            let s = &m.stats;
            (
                acc.0 + s.requests.get(),
                acc.1 + s.grants_cf_sync.get(),
                acc.2 + s.regrants_local.get(),
                acc.3 + s.false_contentions.get(),
            )
        })
    }

    /// Local-interest re-grant phase (DESIGN.md §13): per-thread IRLMs,
    /// per-thread private resources, lock/unlock in a tight loop. After
    /// the first pass over the working set every unlock parks the CF
    /// interest and every re-lock is a local re-grant — no CF command —
    /// so the issuer-side p50 here against the uncontended phase's p50
    /// is a direct fast-path-vs-CF-round-trip comparison.
    fn lock_regrant(&self, threads: usize, ops: u64) -> PhaseResult {
        let name = format!("HOTLOCK_R{threads}");
        let (irlms, _xcf) = self.start_irlms(&name, 65_536, threads);
        let before = phase_baseline(&self.cf, PhaseClass::Lock);
        let latency = Histogram::new();
        let elapsed = run_threads(threads, |t| {
            let irlm = &irlms[t];
            let txn = t as u64 + 1;
            let resources: Vec<Vec<u8>> =
                (0..REGRANT_RESOURCES).map(|i| format!("P{i:03}.T{t}").into_bytes()).collect();
            for i in 0..ops {
                let resource = &resources[i as usize % REGRANT_RESOURCES];
                let start = Instant::now();
                let outcome = irlm.lock(txn, resource, LockMode::Exclusive, false).unwrap();
                latency.record(start.elapsed());
                // Private resources essentially always grant; a negotiation
                // timing out under hostile scheduling surfaces as Busy and
                // is simply skipped rather than poisoning the run.
                if outcome == LockOutcome::Granted {
                    irlm.unlock(txn, resource).unwrap();
                }
            }
        });
        let (requests, cf_sync, regrants, false_contentions) = Self::irlm_sums(&irlms);
        let async_converted = async_delta(&self.cf, PhaseClass::Lock, &before);
        for i in &irlms {
            i.shutdown();
        }
        let snap = latency.snapshot();
        PhaseResult {
            class: PhaseClass::Lock,
            mode: "regrant",
            threads,
            ops: requests,
            elapsed,
            ops_per_s: requests as f64 / elapsed.as_secs_f64().max(1e-9),
            p50_us: snap.quantile_ns(0.50) as f64 / 1_000.0,
            p95_us: snap.quantile_ns(0.95) as f64 / 1_000.0,
            p99_us: snap.quantile_ns(0.99) as f64 / 1_000.0,
            sync_grant_ratio: ratio(cf_sync, requests),
            false_contention_pct: pct(false_contentions, requests),
            async_converted,
            regrant_local_ratio: ratio(regrants, requests),
        }
    }

    /// Adaptive-resize Zipf phase (DESIGN.md §13): the contended mix on a
    /// deliberately tiny table, through IRLMs, while a controller thread
    /// runs [`LockResizePolicy`] over the group's cumulative counters and
    /// doubles the table *online* — a quiesced rebuild under live lock
    /// traffic — whenever an interval's false-contention rate runs hot.
    /// The first ~10% of each worker's ops are warmup (the growth phase);
    /// measurement starts after a barrier, against post-warmup baselines.
    fn lock_zipf_adaptive(&self, threads: usize, ops: u64) -> PhaseResult {
        let name = format!("HOTLOCK_A{threads}");
        let (irlms, _xcf) = self.start_irlms(&name, CONTENDED_LOCK_ENTRIES, threads);
        let sub = self.cf.subchannel().with_system(SystemId::new(0)).for_structure_named(&name);
        let before = phase_baseline(&self.cf, PhaseClass::Lock);
        let latency = Histogram::new();
        let warmup = (ops / 10).max(1);
        let stop = AtomicBool::new(false);
        // Two barriers bracket the warmup/measured boundary: `warm_a`
        // proves every worker finished warmup (so the baseline snapshot
        // is exact), `warm_b` releases the measured segment.
        let warm_a = Barrier::new(threads + 1);
        let warm_b = Barrier::new(threads + 1);
        let (elapsed, base) = std::thread::scope(|scope| {
            let irlms_ref = &irlms;
            let stop_ref = &stop;
            let controller = scope.spawn(|| {
                let mut policy = LockResizePolicy::new(ADAPTIVE_FC_THRESHOLD, ADAPTIVE_MAX_ENTRIES);
                let mut generation = 0u32;
                let mut seen = 0u64;
                while !stop_ref.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_micros(200));
                    let (requests, _, _, false_contentions) = Self::irlm_sums(irlms_ref);
                    // Request-driven intervals: on a slow or oversubscribed
                    // host a fixed wall-clock tick can stay under the
                    // policy's per-interval request floor forever, so wait
                    // for enough traffic rather than enough time.
                    if requests - seen < 512 {
                        continue;
                    }
                    seen = requests;
                    let current = irlms_ref[0].structure().entries();
                    if let Some(grow_to) = policy.observe(requests, false_contentions, current) {
                        generation += 1;
                        let grown = self
                            .cf
                            .allocate_lock_structure(
                                &format!("{name}_G{generation}"),
                                LockParams::with_entries(grow_to),
                            )
                            .unwrap();
                        Irlm::resize_all(irlms_ref, grown, &sub).unwrap();
                    }
                }
            });
            let workers: Vec<_> = (0..threads)
                .map(|t| {
                    let (latency, warm_a, warm_b) = (&latency, &warm_a, &warm_b);
                    scope.spawn(move || {
                        use rand::{rngs::StdRng, SeedableRng};
                        let irlm = &irlms_ref[t];
                        let txn = t as u64 + 1;
                        let zipf = Zipf::new(CONTENDED_RESOURCES, ZIPF_THETA);
                        let mut rng = StdRng::seed_from_u64(0xADA9_717E ^ t as u64);
                        let resources: Vec<Vec<u8>> = (0..CONTENDED_RESOURCES)
                            .map(|r| format!("R{r:04}.T{t}").into_bytes())
                            .collect();
                        let mut one = |measured: bool| {
                            let resource = &resources[zipf.sample(&mut rng)];
                            let start = Instant::now();
                            let outcome = irlm.lock(txn, resource, LockMode::Exclusive, false).unwrap();
                            if measured {
                                latency.record(start.elapsed());
                            }
                            if outcome == LockOutcome::Granted {
                                irlm.unlock(txn, resource).unwrap();
                            }
                        };
                        for _ in 0..warmup {
                            one(false);
                        }
                        warm_a.wait();
                        warm_b.wait();
                        for _ in 0..ops {
                            one(true);
                        }
                    })
                })
                .collect();
            warm_a.wait();
            // All workers are parked at `warm_b`, warmup traffic fully
            // quiesced: snapshot the measurement baselines now.
            let base = Self::irlm_sums(irlms_ref);
            let start = Instant::now();
            warm_b.wait();
            for w in workers {
                w.join().expect("bench worker panicked");
            }
            let elapsed = start.elapsed();
            stop.store(true, Ordering::Release);
            controller.join().expect("resize controller panicked");
            (elapsed, base)
        });
        let after = Self::irlm_sums(&irlms);
        let (requests, cf_sync, regrants, false_contentions) =
            (after.0 - base.0, after.1 - base.1, after.2 - base.2, after.3 - base.3);
        let async_converted = async_delta(&self.cf, PhaseClass::Lock, &before);
        for i in &irlms {
            i.shutdown();
        }
        let snap = latency.snapshot();
        PhaseResult {
            class: PhaseClass::Lock,
            mode: "zipf-adaptive",
            threads,
            ops: requests,
            elapsed,
            ops_per_s: requests as f64 / elapsed.as_secs_f64().max(1e-9),
            p50_us: snap.quantile_ns(0.50) as f64 / 1_000.0,
            p95_us: snap.quantile_ns(0.95) as f64 / 1_000.0,
            p99_us: snap.quantile_ns(0.99) as f64 / 1_000.0,
            sync_grant_ratio: ratio(cf_sync, requests),
            false_contention_pct: pct(false_contentions, requests),
            async_converted,
            regrant_local_ratio: ratio(regrants, requests),
        }
    }

    /// Uncontended list phase: per-thread private header pairs.
    fn list_uncontended(&self, threads: usize, ops: u64) -> PhaseResult {
        let conns = self.list_conns(threads);
        let before = phase_baseline(&self.cf, PhaseClass::List);
        let elapsed = run_threads(threads, |t| {
            let conn = &conns[t];
            let header = 2 * t;
            for i in 0..ops {
                conn.enqueue(header, i, b"work", WritePosition::Tail, LockCondition::None).unwrap();
                conn.take(header, DequeueEnd::Head, LockCondition::None).unwrap();
            }
        });
        for c in &conns {
            c.detach().unwrap();
        }
        self.finish_phase(PhaseClass::List, "uncontended", threads, elapsed, &before, None)
    }

    /// Zipf-contended list phase: all threads share a hot header set.
    fn list_contended(&self, threads: usize, ops: u64, max_threads: usize) -> PhaseResult {
        let conns = self.list_conns(threads);
        let shared_base = 2 * max_threads;
        let before = phase_baseline(&self.cf, PhaseClass::List);
        let elapsed = run_threads(threads, |t| {
            use rand::{rngs::StdRng, SeedableRng};
            let conn = &conns[t];
            let zipf = Zipf::new(CONTENDED_HEADERS, ZIPF_THETA);
            let mut rng = StdRng::seed_from_u64(0x0DDB_A115 ^ t as u64);
            for i in 0..ops {
                let header = shared_base + zipf.sample(&mut rng);
                conn.enqueue(header, i, b"work", WritePosition::Tail, LockCondition::None).unwrap();
                conn.take(header, DequeueEnd::Head, LockCondition::None).unwrap();
            }
        });
        for c in &conns {
            c.detach().unwrap();
        }
        self.finish_phase(PhaseClass::List, "zipf", threads, elapsed, &before, None)
    }

    /// Uncontended cache phase: per-thread private block sets.
    fn cache_uncontended(&self, threads: usize, ops: u64) -> PhaseResult {
        let conns = self.cache_conns(threads);
        let before = phase_baseline(&self.cf, PhaseClass::Cache);
        let elapsed = run_threads(threads, |t| {
            let conn = &conns[t];
            for i in 0..ops {
                let block = BlockName::from_parts(t as u32, (i % PRIVATE_BLOCKS as u64) + 1);
                let vector_index = (i % PRIVATE_BLOCKS as u64) as u32;
                conn.register_read(block, vector_index).unwrap();
                conn.write_invalidate(block, b"0123456789abcdef", WriteKind::CleanData).unwrap();
            }
        });
        for c in &conns {
            c.detach().unwrap();
        }
        self.finish_phase(PhaseClass::Cache, "uncontended", threads, elapsed, &before, None)
    }

    /// Zipf-contended cache phase: shared hot blocks, so writes
    /// cross-invalidate the other readers continuously.
    fn cache_contended(&self, threads: usize, ops: u64) -> PhaseResult {
        let conns = self.cache_conns(threads);
        let before = phase_baseline(&self.cf, PhaseClass::Cache);
        let elapsed = run_threads(threads, |t| {
            use rand::{rngs::StdRng, SeedableRng};
            let conn = &conns[t];
            let zipf = Zipf::new(CONTENDED_BLOCKS, ZIPF_THETA);
            let mut rng = StdRng::seed_from_u64(0xCAC4_EB10 ^ t as u64);
            for _ in 0..ops {
                let rank = zipf.sample(&mut rng);
                let block = BlockName::from_parts(u32::MAX, rank as u64 + 1);
                conn.register_read(block, rank as u32).unwrap();
                conn.write_invalidate(block, b"0123456789abcdef", WriteKind::CleanData).unwrap();
            }
        });
        for c in &conns {
            c.detach().unwrap();
        }
        self.finish_phase(PhaseClass::Cache, "zipf", threads, elapsed, &before, None)
    }
}

/// Measure the uncontended CF lock round-trip the §13 fast path avoids:
/// a request/release pair over a paper-model 100 MB/s coupling link with
/// its ~10 µs base command latency, issuer-observed. One short
/// single-threaded loop is enough — the figure is dominated by the
/// modeled link, not by host scheduling.
fn calibrate_mb100_roundtrip() -> f64 {
    use sysplex_core::link::LinkConfig;
    let cf = CouplingFacility::new(CfConfig::named("CALCF").with_link(LinkConfig::mb100()));
    cf.allocate_lock_structure("CALLOCK", LockParams::with_entries(1024)).unwrap();
    let conn = cf.connect_lock("CALLOCK").unwrap();
    let latency = Histogram::new();
    for i in 0..512usize {
        let entry = i % 1024;
        let start = Instant::now();
        assert!(conn.request_lock(entry, LockMode::Exclusive).unwrap().is_granted());
        latency.record(start.elapsed());
        conn.release_lock(entry).unwrap();
    }
    conn.detach(DisconnectMode::Normal).unwrap();
    latency.snapshot().quantile_ns(0.50) as f64 / 1_000.0
}

/// Run the full sweep: for each thread count, eight phases (lock
/// uncontended/zipf/regrant/zipf-adaptive, list and cache
/// uncontended/zipf).
pub fn run(ops_per_thread: u64, thread_counts: &[usize]) -> HotpathReport {
    assert!(!thread_counts.is_empty(), "need at least one thread count");
    let max_threads = *thread_counts.iter().max().unwrap();
    let rig = Rig::new(max_threads);
    let mut phases = Vec::new();
    for &threads in thread_counts {
        phases.push(rig.lock_uncontended(threads, ops_per_thread));
        phases.push(rig.lock_contended(threads, ops_per_thread));
        phases.push(rig.lock_regrant(threads, ops_per_thread));
        phases.push(rig.lock_zipf_adaptive(threads, ops_per_thread));
        phases.push(rig.list_uncontended(threads, ops_per_thread));
        phases.push(rig.list_contended(threads, ops_per_thread, max_threads));
        phases.push(rig.cache_uncontended(threads, ops_per_thread));
        phases.push(rig.cache_contended(threads, ops_per_thread));
    }

    let base = phases
        .iter()
        .find(|p| p.class == PhaseClass::Lock && p.mode == "uncontended" && p.threads == thread_counts[0])
        .map(|p| p.ops_per_s)
        .unwrap_or(0.0);
    let widest = phases
        .iter()
        .find(|p| p.class == PhaseClass::Lock && p.mode == "uncontended" && p.threads == max_threads)
        .map(|p| p.ops_per_s)
        .unwrap_or(0.0);
    let scaling_lock_uncontended = if base > 0.0 { widest / base } else { 0.0 };

    let cf_mb100_roundtrip_p50_us = calibrate_mb100_roundtrip();
    let regrant_p50 = phases
        .iter()
        .find(|p| p.class == PhaseClass::Lock && p.mode == "regrant" && p.threads == max_threads)
        .map(|p| p.p50_us)
        .unwrap_or(0.0);
    let regrant_p50_speedup =
        if regrant_p50 > 0.0 { cf_mb100_roundtrip_p50_us / regrant_p50 } else { 0.0 };

    let mut class_totals = Vec::new();
    let mut counters_reconciled = true;
    for &c in CommandClass::ALL.iter() {
        let cs = rig.cf.command_stats().class(c);
        let t = ClassTotals {
            class: c.name(),
            issued: cs.issued.get(),
            sync: cs.sync.get(),
            async_converted: cs.async_converted.get(),
            faulted: cs.faulted.get(),
        };
        if t.issued != t.sync + t.async_converted || t.faulted != 0 {
            counters_reconciled = false;
        }
        if t.issued > 0 {
            class_totals.push(t);
        }
    }

    HotpathReport {
        hw_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        transport: sysplex_core::TransportBackend::InProcess.name(),
        ops_per_thread,
        thread_counts: thread_counts.to_vec(),
        phases,
        scaling_lock_uncontended,
        cf_mb100_roundtrip_p50_us,
        regrant_p50_speedup,
        max_threads,
        class_totals,
        counters_reconciled,
    }
}

impl HotpathReport {
    /// Render the schema-stable JSON consumed by the CI `hotpath-bench`
    /// job (see DESIGN.md §8 for the schema contract).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"report\": \"cf_hotpath\",\n");
        out.push_str(&format!("  \"schema_version\": {},\n", sysplex_services::SCHEMA_VERSION));
        out.push_str(&format!("  \"hw_threads\": {},\n", self.hw_threads));
        out.push_str(&format!("  \"transport\": \"{}\",\n", self.transport));
        out.push_str(&format!("  \"ops_per_thread\": {},\n", self.ops_per_thread));
        out.push_str(&format!(
            "  \"thread_counts\": [{}],\n",
            self.thread_counts.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(", ")
        ));
        out.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"phase\": \"{}\", \"mode\": \"{}\", \"threads\": {}, \"ops\": {}, \
                 \"elapsed_ms\": {:.3}, \"ops_per_s\": {:.1}, \"p50_us\": {:.2}, \"p95_us\": {:.2}, \
                 \"p99_us\": {:.2}, \"sync_grant_ratio\": {:.4}, \"false_contention_pct\": {:.2}, \
                 \"async_converted\": {}, \"regrant_local_ratio\": {:.4}}}{}\n",
                p.class.name(),
                p.mode,
                p.threads,
                p.ops,
                p.elapsed.as_secs_f64() * 1_000.0,
                p.ops_per_s,
                p.p50_us,
                p.p95_us,
                p.p99_us,
                p.sync_grant_ratio,
                p.false_contention_pct,
                p.async_converted,
                p.regrant_local_ratio,
                if i + 1 == self.phases.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"scaling\": {\n");
        out.push_str(&format!("    \"lock_uncontended_max_vs_1\": {:.3},\n", self.scaling_lock_uncontended));
        out.push_str(&format!(
            "    \"cf_mb100_roundtrip_p50_us\": {:.2},\n",
            self.cf_mb100_roundtrip_p50_us
        ));
        out.push_str(&format!("    \"regrant_p50_speedup\": {:.2},\n", self.regrant_p50_speedup));
        out.push_str(&format!("    \"max_threads\": {}\n", self.max_threads));
        out.push_str("  },\n");
        out.push_str("  \"command_classes\": [\n");
        for (i, t) in self.class_totals.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"class\": \"{}\", \"issued\": {}, \"sync\": {}, \"async_converted\": {}, \
                 \"faulted\": {}}}{}\n",
                t.class,
                t.issued,
                t.sync,
                t.async_converted,
                t.faulted,
                if i + 1 == self.class_totals.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"counters_reconciled\": {}\n", self.counters_reconciled));
        out.push_str("}\n");
        out
    }

    /// Conditions worth flagging next to the report. Today there is one:
    /// zero `async_converted` across the lock command classes means the
    /// sweep never exercised the CF's async-conversion path (expected
    /// with instant links, but the reader should know the lock figures
    /// carry no async component).
    pub fn warnings(&self) -> Vec<String> {
        let mut out = Vec::new();
        let lock_async: u64 = self
            .class_totals
            .iter()
            .filter(|t| t.class == CommandClass::LockRequest.name() || t.class == CommandClass::LockRelease.name())
            .map(|t| t.async_converted)
            .sum();
        if lock_async == 0 {
            out.push(
                "WARNING: async_converted = 0 across all lock commands — every lock command ran \
                 CPU-synchronously (instant links), so this report exercises no async-conversion path"
                    .to_string(),
            );
        }
        out
    }

    /// Human-readable table (the example prints this alongside the JSON).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "CF HOT PATH — {} ops/thread, {} hardware threads\n",
            self.ops_per_thread, self.hw_threads
        ));
        out.push_str(&format!(
            "{:<6} {:<13} {:>3}  {:>12} {:>9} {:>9} {:>9} {:>7} {:>7} {:>7}\n",
            "class", "mode", "T", "ops/s", "p50 µs", "p95 µs", "p99 µs", "sync", "false%", "regr%"
        ));
        for p in &self.phases {
            out.push_str(&format!(
                "{:<6} {:<13} {:>3}  {:>12.0} {:>9.2} {:>9.2} {:>9.2} {:>6.1}% {:>6.2}% {:>6.1}%\n",
                p.class.name(),
                p.mode,
                p.threads,
                p.ops_per_s,
                p.p50_us,
                p.p95_us,
                p.p99_us,
                p.sync_grant_ratio * 100.0,
                p.false_contention_pct,
                p.regrant_local_ratio * 100.0
            ));
        }
        out.push_str(&format!(
            "lock uncontended scaling {}T/{}T: {:.2}x; regrant p50 vs mb100 CF round trip \
             ({:.1} µs): {:.1}x; counters reconciled: {}\n",
            self.max_threads,
            self.thread_counts[0],
            self.scaling_lock_uncontended,
            self.cf_mb100_roundtrip_p50_us,
            self.regrant_p50_speedup,
            self.counters_reconciled
        ));
        for w in self.warnings() {
            out.push_str(&w);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_reconciles_and_produces_schema_fields() {
        let report = run(200, &[1, 2]);
        assert_eq!(report.phases.len(), 16, "8 phases per thread count");
        assert!(report.counters_reconciled, "issued == sync + async_converted per class");
        for p in &report.phases {
            assert!(p.ops > 0, "every phase issues commands");
            assert!(p.ops_per_s > 0.0);
        }
        // Uncontended lock phases grant everything synchronously.
        for p in report.phases.iter().filter(|p| p.class == PhaseClass::Lock && p.mode == "uncontended") {
            assert!((p.sync_grant_ratio - 1.0).abs() < 1e-9, "uncontended grants are all synchronous");
            assert_eq!(p.false_contention_pct, 0.0);
        }
        // The re-grant phase completes the bulk of its requests without
        // any CF command: one warm pass over 64 resources, then 200 ops
        // re-granted locally.
        for p in report.phases.iter().filter(|p| p.mode == "regrant") {
            assert!(
                p.regrant_local_ratio > 0.5,
                "re-grant phase must be dominated by local re-grants, got {}",
                p.regrant_local_ratio
            );
        }
        let json = report.to_json();
        for key in [
            "\"report\": \"cf_hotpath\"",
            "\"schema_version\": 1",
            "\"hw_threads\"",
            "\"transport\": \"in-process\"",
            "\"phases\"",
            "\"mode\": \"regrant\"",
            "\"mode\": \"zipf-adaptive\"",
            "\"async_converted\"",
            "\"regrant_local_ratio\"",
            "\"scaling\"",
            "\"lock_uncontended_max_vs_1\"",
            "\"cf_mb100_roundtrip_p50_us\"",
            "\"regrant_p50_speedup\"",
            "\"command_classes\"",
            "\"counters_reconciled\": true",
        ] {
            assert!(json.contains(key), "JSON missing {key}");
        }
        // The calibrated round trip carries the modeled ~10 µs link, so
        // even a debug-build re-grant beats it.
        assert!(
            report.cf_mb100_roundtrip_p50_us >= 10.0,
            "mb100 round trip must carry the modeled link latency, got {:.2} µs",
            report.cf_mb100_roundtrip_p50_us
        );
        assert!(
            report.regrant_p50_speedup > 1.0,
            "local re-grant must beat the modeled CF round trip, got {:.2}x",
            report.regrant_p50_speedup
        );
        // Satellite: instant links never async-convert, and the report
        // must say so out loud rather than leave a silent zero.
        let warnings = report.warnings();
        assert!(
            warnings.iter().any(|w| w.contains("async_converted = 0")),
            "zero lock async conversions must surface a visible warning: {warnings:?}"
        );
        assert!(report.render_table().contains("WARNING"), "table output carries the warning");
    }

    #[test]
    fn false_contention_is_measured_from_structure_counters() {
        // A single-core host can run a whole short contended phase without
        // the threads ever overlapping, so build the collision by hand:
        // two connections, two *different* resource names, same entry.
        let rig = Rig::new(2);
        let conns = rig.lock_conns("HOTLOCK_Z", 2);
        let structure = rig.cf.lock_structure("HOTLOCK_Z").unwrap();
        let e0 = conns[0].hash_resource(b"R0000.T0");
        let other = (0..10_000u32)
            .map(|i| format!("R{i:04}.T1"))
            .find(|r| conns[1].hash_resource(r.as_bytes()) == e0)
            .expect("some resource collides within 64 entries");
        let req0 = structure.stats.requests.get();
        let cont0 = structure.stats.contentions.get();
        assert!(conns[0].request_lock(e0, LockMode::Exclusive).unwrap().is_granted());
        let r = conns[1].request_lock(conns[1].hash_resource(other.as_bytes()), LockMode::Exclusive).unwrap();
        assert!(!r.is_granted(), "distinct resources on one entry collide");
        let requests = structure.stats.requests.get() - req0;
        let contentions = structure.stats.contentions.get() - cont0;
        assert_eq!(requests, 2);
        assert_eq!(contentions, 1);
        // Exactly what the phase reports: 1 contention / 2 requests = 50 %,
        // and every bit of it is false contention by construction.
        assert_eq!(pct(contentions, requests), 50.0);
        conns[0].release_lock(e0).unwrap();
        for c in &conns {
            c.detach(DisconnectMode::Normal).unwrap();
        }
    }
}
