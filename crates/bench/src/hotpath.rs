//! The standing CF hot-path throughput rig behind `examples/cf_hotpath.rs`
//! and the CI `hotpath-bench` job.
//!
//! Drives 1/2/4/8-thread (configurable) uncontended and Zipf-contended
//! lock/list/cache mixes through the **real connection layer** — every
//! operation crosses a [`CfSubchannel`](sysplex_core::CfSubchannel) with
//! instant links, so what's measured is the CF's own concurrency: the
//! lock-table CAS path, the sharded record/index tables, the sharded cache
//! directory, and the per-command accounting. Output is a schema-stable
//! `BENCH_cf_hotpath.json` (see DESIGN.md §8) so every future perf PR has
//! a baseline to beat.
//!
//! Contended phases use per-thread-unique resource names over a small
//! entry space: every entry collision is **false contention** by
//! construction (no two threads ever lock the same resource), which makes
//! `false_contention_pct` an exact measurement, not an estimate.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use sysplex_core::cache::{BlockName, CacheParams, WriteKind};
use sysplex_core::facility::{CfConfig, CouplingFacility};
use sysplex_core::list::{DequeueEnd, ListParams, LockCondition, WritePosition};
use sysplex_core::lock::{DisconnectMode, LockMode, LockParams};
use sysplex_core::stats::HistogramSnapshot;
use sysplex_core::{CacheConnection, CommandClass, ListConnection, LockConnection, SystemId};
use sysplex_workload::zipf::Zipf;

/// Zipf skew for the contended phases (the classic θ ≈ 0.99 hot-spot mix).
const ZIPF_THETA: f64 = 0.99;
/// Entry space of the contended lock table: small enough that Zipf-hot
/// distinct resources collide on entries.
const CONTENDED_LOCK_ENTRIES: usize = 64;
/// Distinct resource ranks per thread in the contended lock phase.
const CONTENDED_RESOURCES: usize = 512;
/// Shared headers in the contended list phase.
const CONTENDED_HEADERS: usize = 8;
/// Shared blocks in the contended cache phase.
const CONTENDED_BLOCKS: usize = 512;
/// Per-thread private blocks in the uncontended cache phase.
const PRIVATE_BLOCKS: usize = 256;

/// Which structure model a phase exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseClass {
    /// Lock request/release through the lock table.
    Lock,
    /// List enqueue/take through headers and the entry index.
    List,
    /// Cache register-read/write-invalidate through the directory.
    Cache,
}

impl PhaseClass {
    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            PhaseClass::Lock => "lock",
            PhaseClass::List => "list",
            PhaseClass::Cache => "cache",
        }
    }

    /// Command classes whose counters and latency belong to this phase.
    fn classes(self) -> &'static [CommandClass] {
        match self {
            PhaseClass::Lock => &[CommandClass::LockRequest, CommandClass::LockRelease],
            PhaseClass::List => &[CommandClass::ListWrite, CommandClass::ListMove],
            PhaseClass::Cache => &[CommandClass::CacheRead, CommandClass::CacheWrite],
        }
    }
}

/// Result of one measured phase.
#[derive(Debug, Clone)]
pub struct PhaseResult {
    /// Structure model exercised.
    pub class: PhaseClass,
    /// `"uncontended"` or `"zipf"`.
    pub mode: &'static str,
    /// Worker threads.
    pub threads: usize,
    /// Commands issued during the phase (across the phase's classes).
    pub ops: u64,
    /// Wall-clock time of the phase.
    pub elapsed: Duration,
    /// Commands per second.
    pub ops_per_s: f64,
    /// Issuer-observed latency percentiles, microseconds.
    pub p50_us: f64,
    /// 95th percentile, microseconds.
    pub p95_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// Lock phases: CF-level synchronous grant fraction. List/cache
    /// phases: command-level synchronous execution fraction.
    pub sync_grant_ratio: f64,
    /// Lock phases: entry contentions per request, in percent. All of it
    /// is false contention by construction (threads never share a
    /// resource name). Zero for list/cache phases.
    pub false_contention_pct: f64,
}

/// Facility-wide per-class totals for the end-of-run reconciliation.
#[derive(Debug, Clone)]
pub struct ClassTotals {
    /// Stable class name.
    pub class: &'static str,
    /// Commands issued.
    pub issued: u64,
    /// Executed CPU-synchronously.
    pub sync: u64,
    /// Converted to asynchronous execution.
    pub async_converted: u64,
    /// Surfaced a link fault.
    pub faulted: u64,
}

/// Everything the benchmark measured.
#[derive(Debug, Clone)]
pub struct HotpathReport {
    /// Hardware threads available on this host (scaling assertions are
    /// only meaningful when this covers the widest phase).
    pub hw_threads: usize,
    /// Transport backend the commands travelled over (always in-process
    /// for this bench; the TCP path is measured by `sysplex_scale`).
    pub transport: &'static str,
    /// Operations per worker thread per phase.
    pub ops_per_thread: u64,
    /// Thread counts swept.
    pub thread_counts: Vec<usize>,
    /// One row per (class, mode, threads) phase.
    pub phases: Vec<PhaseResult>,
    /// Uncontended lock throughput at the widest thread count over the
    /// single-thread figure.
    pub scaling_lock_uncontended: f64,
    /// Widest thread count swept.
    pub max_threads: usize,
    /// Per-class facility totals at end of run.
    pub class_totals: Vec<ClassTotals>,
    /// Whether `issued == sync + async_converted` held for every class
    /// (and nothing faulted).
    pub counters_reconciled: bool,
}

/// Snapshot of the counters a phase measures, taken before and after.
struct ClassBaseline {
    issued: u64,
    sync: u64,
    latency: HistogramSnapshot,
}

fn phase_baseline(cf: &CouplingFacility, class: PhaseClass) -> Vec<ClassBaseline> {
    class
        .classes()
        .iter()
        .map(|&c| {
            let cs = cf.command_stats().class(c);
            ClassBaseline { issued: cs.issued.get(), sync: cs.sync.get(), latency: cs.latency.snapshot() }
        })
        .collect()
}

/// Run one phase: `threads` workers, each executing `body(thread_index)`
/// after a common barrier; returns the wall time between barrier release
/// and the last worker finishing.
fn run_threads<F>(threads: usize, body: F) -> Duration
where
    F: Fn(usize) + Send + Sync,
{
    let body = &body;
    let barrier = Barrier::new(threads + 1);
    let barrier = &barrier;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    barrier.wait();
                    body(t);
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for h in handles {
            h.join().expect("bench worker panicked");
        }
        start.elapsed()
    })
}

fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 * 100.0 / den as f64
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

struct Rig {
    cf: Arc<CouplingFacility>,
}

impl Rig {
    fn new(max_threads: usize) -> Rig {
        let cf = CouplingFacility::new(CfConfig::named("HOTCF"));
        // Big enough that per-thread disjoint entry ranges never collide.
        cf.allocate_lock_structure("HOTLOCK", LockParams::with_entries(65_536)).unwrap();
        // Small enough that Zipf-hot distinct resources *do* collide.
        cf.allocate_lock_structure("HOTLOCK_Z", LockParams::with_entries(CONTENDED_LOCK_ENTRIES)).unwrap();
        cf.allocate_list_structure("HOTQ", ListParams::with_headers(2 * max_threads + CONTENDED_HEADERS))
            .unwrap();
        cf.allocate_cache_structure("HOTGBP", CacheParams::store_in(16_384)).unwrap();
        Rig { cf }
    }

    fn lock_conns(&self, structure: &str, threads: usize) -> Vec<LockConnection> {
        (0..threads)
            .map(|t| {
                let s = self.cf.lock_structure(structure).unwrap();
                LockConnection::attach(
                    &s,
                    self.cf.subchannel().with_system(SystemId::new(t as u8)).for_structure_named(structure),
                )
                .unwrap()
            })
            .collect()
    }

    fn list_conns(&self, threads: usize) -> Vec<ListConnection> {
        (0..threads)
            .map(|t| {
                let s = self.cf.list_structure("HOTQ").unwrap();
                ListConnection::attach(
                    &s,
                    self.cf.subchannel().with_system(SystemId::new(t as u8)).for_structure_named("HOTQ"),
                    64,
                )
                .unwrap()
            })
            .collect()
    }

    fn cache_conns(&self, threads: usize) -> Vec<CacheConnection> {
        (0..threads)
            .map(|t| {
                let s = self.cf.cache_structure("HOTGBP").unwrap();
                CacheConnection::attach(
                    &s,
                    self.cf.subchannel().with_system(SystemId::new(t as u8)).for_structure_named("HOTGBP"),
                    4096,
                )
                .unwrap()
            })
            .collect()
    }

    fn finish_phase(
        &self,
        class: PhaseClass,
        mode: &'static str,
        threads: usize,
        elapsed: Duration,
        before: &[ClassBaseline],
        lock_deltas: Option<(u64, u64, u64)>,
    ) -> PhaseResult {
        let mut ops = 0u64;
        let mut sync = 0u64;
        let mut latency = HistogramSnapshot::default();
        for (b, &c) in before.iter().zip(class.classes()) {
            let cs = self.cf.command_stats().class(c);
            ops += cs.issued.get() - b.issued;
            sync += cs.sync.get() - b.sync;
            latency.merge(&cs.latency.snapshot().delta(&b.latency));
        }
        let (sync_grant_ratio, false_contention_pct) = match lock_deltas {
            // CF-level truth for lock phases: grants and contentions out
            // of the structure's own counters.
            Some((requests, grants, contentions)) => (ratio(grants, requests), pct(contentions, requests)),
            None => (ratio(sync, ops), 0.0),
        };
        PhaseResult {
            class,
            mode,
            threads,
            ops,
            elapsed,
            ops_per_s: ops as f64 / elapsed.as_secs_f64().max(1e-9),
            p50_us: latency.quantile_ns(0.50) as f64 / 1_000.0,
            p95_us: latency.quantile_ns(0.95) as f64 / 1_000.0,
            p99_us: latency.quantile_ns(0.99) as f64 / 1_000.0,
            sync_grant_ratio,
            false_contention_pct,
        }
    }

    /// Uncontended lock phase: per-thread disjoint entry ranges.
    fn lock_uncontended(&self, threads: usize, ops: u64) -> PhaseResult {
        let conns = self.lock_conns("HOTLOCK", threads);
        let structure = self.cf.lock_structure("HOTLOCK").unwrap();
        let span = structure.entries() / threads.max(1);
        let before = phase_baseline(&self.cf, PhaseClass::Lock);
        let req0 = structure.stats.requests.get();
        let grant0 = structure.stats.sync_grants.get();
        let cont0 = structure.stats.contentions.get();
        let elapsed = run_threads(threads, |t| {
            let conn = &conns[t];
            let base = t * span;
            for i in 0..ops {
                let entry = base + (i as usize % span);
                assert!(conn.request_lock(entry, LockMode::Exclusive).unwrap().is_granted());
                conn.release_lock(entry).unwrap();
            }
        });
        let deltas = (
            structure.stats.requests.get() - req0,
            structure.stats.sync_grants.get() - grant0,
            structure.stats.contentions.get() - cont0,
        );
        for c in &conns {
            c.detach(DisconnectMode::Normal).unwrap();
        }
        self.finish_phase(PhaseClass::Lock, "uncontended", threads, elapsed, &before, Some(deltas))
    }

    /// Zipf-contended lock phase: thread-unique resource names over a
    /// tiny entry space — every contention is false contention.
    fn lock_contended(&self, threads: usize, ops: u64) -> PhaseResult {
        let conns = self.lock_conns("HOTLOCK_Z", threads);
        let structure = self.cf.lock_structure("HOTLOCK_Z").unwrap();
        let before = phase_baseline(&self.cf, PhaseClass::Lock);
        let req0 = structure.stats.requests.get();
        let grant0 = structure.stats.sync_grants.get();
        let cont0 = structure.stats.contentions.get();
        let elapsed = run_threads(threads, |t| {
            use rand::{rngs::StdRng, SeedableRng};
            let conn = &conns[t];
            let zipf = Zipf::new(CONTENDED_RESOURCES, ZIPF_THETA);
            let mut rng = StdRng::seed_from_u64(0x5CA1_AB1E ^ t as u64);
            // Hold-one-behind: each thread keeps its previous lock held
            // while requesting the next, so entries stay occupied long
            // enough for other threads to collide with them even on a
            // host with coarse scheduling.
            let mut held: Option<usize> = None;
            for _ in 0..ops {
                let rank = zipf.sample(&mut rng);
                let resource = format!("R{rank:04}.T{t}");
                let entry = conn.hash_resource(resource.as_bytes());
                if held == Some(entry) {
                    conn.release_lock(entry).unwrap();
                    held = None;
                }
                match conn.request_lock(entry, LockMode::Exclusive).unwrap() {
                    r if r.is_granted() => {
                        if let Some(prev) = held.replace(entry) {
                            conn.release_lock(prev).unwrap();
                        }
                    }
                    // Entry-level contention on a resource nobody else
                    // holds: negotiate (vacuously), record interest,
                    // then back off.
                    _ => {
                        conn.force_interest(entry, LockMode::Exclusive).unwrap();
                        conn.release_lock(entry).unwrap();
                    }
                }
            }
            if let Some(prev) = held {
                conn.release_lock(prev).unwrap();
            }
        });
        let deltas = (
            structure.stats.requests.get() - req0,
            structure.stats.sync_grants.get() - grant0,
            structure.stats.contentions.get() - cont0,
        );
        for c in &conns {
            c.detach(DisconnectMode::Normal).unwrap();
        }
        self.finish_phase(PhaseClass::Lock, "zipf", threads, elapsed, &before, Some(deltas))
    }

    /// Uncontended list phase: per-thread private header pairs.
    fn list_uncontended(&self, threads: usize, ops: u64) -> PhaseResult {
        let conns = self.list_conns(threads);
        let before = phase_baseline(&self.cf, PhaseClass::List);
        let elapsed = run_threads(threads, |t| {
            let conn = &conns[t];
            let header = 2 * t;
            for i in 0..ops {
                conn.enqueue(header, i, b"work", WritePosition::Tail, LockCondition::None).unwrap();
                conn.take(header, DequeueEnd::Head, LockCondition::None).unwrap();
            }
        });
        for c in &conns {
            c.detach().unwrap();
        }
        self.finish_phase(PhaseClass::List, "uncontended", threads, elapsed, &before, None)
    }

    /// Zipf-contended list phase: all threads share a hot header set.
    fn list_contended(&self, threads: usize, ops: u64, max_threads: usize) -> PhaseResult {
        let conns = self.list_conns(threads);
        let shared_base = 2 * max_threads;
        let before = phase_baseline(&self.cf, PhaseClass::List);
        let elapsed = run_threads(threads, |t| {
            use rand::{rngs::StdRng, SeedableRng};
            let conn = &conns[t];
            let zipf = Zipf::new(CONTENDED_HEADERS, ZIPF_THETA);
            let mut rng = StdRng::seed_from_u64(0x0DDB_A115 ^ t as u64);
            for i in 0..ops {
                let header = shared_base + zipf.sample(&mut rng);
                conn.enqueue(header, i, b"work", WritePosition::Tail, LockCondition::None).unwrap();
                conn.take(header, DequeueEnd::Head, LockCondition::None).unwrap();
            }
        });
        for c in &conns {
            c.detach().unwrap();
        }
        self.finish_phase(PhaseClass::List, "zipf", threads, elapsed, &before, None)
    }

    /// Uncontended cache phase: per-thread private block sets.
    fn cache_uncontended(&self, threads: usize, ops: u64) -> PhaseResult {
        let conns = self.cache_conns(threads);
        let before = phase_baseline(&self.cf, PhaseClass::Cache);
        let elapsed = run_threads(threads, |t| {
            let conn = &conns[t];
            for i in 0..ops {
                let block = BlockName::from_parts(t as u32, (i % PRIVATE_BLOCKS as u64) + 1);
                let vector_index = (i % PRIVATE_BLOCKS as u64) as u32;
                conn.register_read(block, vector_index).unwrap();
                conn.write_invalidate(block, b"0123456789abcdef", WriteKind::CleanData).unwrap();
            }
        });
        for c in &conns {
            c.detach().unwrap();
        }
        self.finish_phase(PhaseClass::Cache, "uncontended", threads, elapsed, &before, None)
    }

    /// Zipf-contended cache phase: shared hot blocks, so writes
    /// cross-invalidate the other readers continuously.
    fn cache_contended(&self, threads: usize, ops: u64) -> PhaseResult {
        let conns = self.cache_conns(threads);
        let before = phase_baseline(&self.cf, PhaseClass::Cache);
        let elapsed = run_threads(threads, |t| {
            use rand::{rngs::StdRng, SeedableRng};
            let conn = &conns[t];
            let zipf = Zipf::new(CONTENDED_BLOCKS, ZIPF_THETA);
            let mut rng = StdRng::seed_from_u64(0xCAC4_EB10 ^ t as u64);
            for _ in 0..ops {
                let rank = zipf.sample(&mut rng);
                let block = BlockName::from_parts(u32::MAX, rank as u64 + 1);
                conn.register_read(block, rank as u32).unwrap();
                conn.write_invalidate(block, b"0123456789abcdef", WriteKind::CleanData).unwrap();
            }
        });
        for c in &conns {
            c.detach().unwrap();
        }
        self.finish_phase(PhaseClass::Cache, "zipf", threads, elapsed, &before, None)
    }
}

/// Run the full sweep: for each thread count, six phases (three structure
/// models × {uncontended, zipf}).
pub fn run(ops_per_thread: u64, thread_counts: &[usize]) -> HotpathReport {
    assert!(!thread_counts.is_empty(), "need at least one thread count");
    let max_threads = *thread_counts.iter().max().unwrap();
    let rig = Rig::new(max_threads);
    let mut phases = Vec::new();
    for &threads in thread_counts {
        phases.push(rig.lock_uncontended(threads, ops_per_thread));
        phases.push(rig.lock_contended(threads, ops_per_thread));
        phases.push(rig.list_uncontended(threads, ops_per_thread));
        phases.push(rig.list_contended(threads, ops_per_thread, max_threads));
        phases.push(rig.cache_uncontended(threads, ops_per_thread));
        phases.push(rig.cache_contended(threads, ops_per_thread));
    }

    let base = phases
        .iter()
        .find(|p| p.class == PhaseClass::Lock && p.mode == "uncontended" && p.threads == thread_counts[0])
        .map(|p| p.ops_per_s)
        .unwrap_or(0.0);
    let widest = phases
        .iter()
        .find(|p| p.class == PhaseClass::Lock && p.mode == "uncontended" && p.threads == max_threads)
        .map(|p| p.ops_per_s)
        .unwrap_or(0.0);
    let scaling_lock_uncontended = if base > 0.0 { widest / base } else { 0.0 };

    let mut class_totals = Vec::new();
    let mut counters_reconciled = true;
    for &c in CommandClass::ALL.iter() {
        let cs = rig.cf.command_stats().class(c);
        let t = ClassTotals {
            class: c.name(),
            issued: cs.issued.get(),
            sync: cs.sync.get(),
            async_converted: cs.async_converted.get(),
            faulted: cs.faulted.get(),
        };
        if t.issued != t.sync + t.async_converted || t.faulted != 0 {
            counters_reconciled = false;
        }
        if t.issued > 0 {
            class_totals.push(t);
        }
    }

    HotpathReport {
        hw_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        transport: sysplex_core::TransportBackend::InProcess.name(),
        ops_per_thread,
        thread_counts: thread_counts.to_vec(),
        phases,
        scaling_lock_uncontended,
        max_threads,
        class_totals,
        counters_reconciled,
    }
}

impl HotpathReport {
    /// Render the schema-stable JSON consumed by the CI `hotpath-bench`
    /// job (see DESIGN.md §8 for the schema contract).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"report\": \"cf_hotpath\",\n");
        out.push_str(&format!("  \"schema_version\": {},\n", sysplex_services::SCHEMA_VERSION));
        out.push_str(&format!("  \"hw_threads\": {},\n", self.hw_threads));
        out.push_str(&format!("  \"transport\": \"{}\",\n", self.transport));
        out.push_str(&format!("  \"ops_per_thread\": {},\n", self.ops_per_thread));
        out.push_str(&format!(
            "  \"thread_counts\": [{}],\n",
            self.thread_counts.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(", ")
        ));
        out.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"phase\": \"{}\", \"mode\": \"{}\", \"threads\": {}, \"ops\": {}, \
                 \"elapsed_ms\": {:.3}, \"ops_per_s\": {:.1}, \"p50_us\": {:.2}, \"p95_us\": {:.2}, \
                 \"p99_us\": {:.2}, \"sync_grant_ratio\": {:.4}, \"false_contention_pct\": {:.2}}}{}\n",
                p.class.name(),
                p.mode,
                p.threads,
                p.ops,
                p.elapsed.as_secs_f64() * 1_000.0,
                p.ops_per_s,
                p.p50_us,
                p.p95_us,
                p.p99_us,
                p.sync_grant_ratio,
                p.false_contention_pct,
                if i + 1 == self.phases.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"scaling\": {\n");
        out.push_str(&format!("    \"lock_uncontended_max_vs_1\": {:.3},\n", self.scaling_lock_uncontended));
        out.push_str(&format!("    \"max_threads\": {}\n", self.max_threads));
        out.push_str("  },\n");
        out.push_str("  \"command_classes\": [\n");
        for (i, t) in self.class_totals.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"class\": \"{}\", \"issued\": {}, \"sync\": {}, \"async_converted\": {}, \
                 \"faulted\": {}}}{}\n",
                t.class,
                t.issued,
                t.sync,
                t.async_converted,
                t.faulted,
                if i + 1 == self.class_totals.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"counters_reconciled\": {}\n", self.counters_reconciled));
        out.push_str("}\n");
        out
    }

    /// Human-readable table (the example prints this alongside the JSON).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "CF HOT PATH — {} ops/thread, {} hardware threads\n",
            self.ops_per_thread, self.hw_threads
        ));
        out.push_str(&format!(
            "{:<6} {:<12} {:>3}  {:>12} {:>9} {:>9} {:>9} {:>7} {:>7}\n",
            "class", "mode", "T", "ops/s", "p50 µs", "p95 µs", "p99 µs", "sync", "false%"
        ));
        for p in &self.phases {
            out.push_str(&format!(
                "{:<6} {:<12} {:>3}  {:>12.0} {:>9.2} {:>9.2} {:>9.2} {:>6.1}% {:>6.2}%\n",
                p.class.name(),
                p.mode,
                p.threads,
                p.ops_per_s,
                p.p50_us,
                p.p95_us,
                p.p99_us,
                p.sync_grant_ratio * 100.0,
                p.false_contention_pct
            ));
        }
        out.push_str(&format!(
            "lock uncontended scaling {}T/{}T: {:.2}x; counters reconciled: {}\n",
            self.max_threads, self.thread_counts[0], self.scaling_lock_uncontended, self.counters_reconciled
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_reconciles_and_produces_schema_fields() {
        let report = run(200, &[1, 2]);
        assert_eq!(report.phases.len(), 12, "6 phases per thread count");
        assert!(report.counters_reconciled, "issued == sync + async_converted per class");
        for p in &report.phases {
            assert!(p.ops > 0, "every phase issues commands");
            assert!(p.ops_per_s > 0.0);
        }
        // Uncontended lock phases grant everything synchronously.
        for p in report.phases.iter().filter(|p| p.class == PhaseClass::Lock && p.mode == "uncontended") {
            assert!((p.sync_grant_ratio - 1.0).abs() < 1e-9, "uncontended grants are all synchronous");
            assert_eq!(p.false_contention_pct, 0.0);
        }
        let json = report.to_json();
        for key in [
            "\"report\": \"cf_hotpath\"",
            "\"schema_version\": 1",
            "\"hw_threads\"",
            "\"transport\": \"in-process\"",
            "\"phases\"",
            "\"scaling\"",
            "\"lock_uncontended_max_vs_1\"",
            "\"command_classes\"",
            "\"counters_reconciled\": true",
        ] {
            assert!(json.contains(key), "JSON missing {key}");
        }
    }

    #[test]
    fn false_contention_is_measured_from_structure_counters() {
        // A single-core host can run a whole short contended phase without
        // the threads ever overlapping, so build the collision by hand:
        // two connections, two *different* resource names, same entry.
        let rig = Rig::new(2);
        let conns = rig.lock_conns("HOTLOCK_Z", 2);
        let structure = rig.cf.lock_structure("HOTLOCK_Z").unwrap();
        let e0 = conns[0].hash_resource(b"R0000.T0");
        let other = (0..10_000u32)
            .map(|i| format!("R{i:04}.T1"))
            .find(|r| conns[1].hash_resource(r.as_bytes()) == e0)
            .expect("some resource collides within 64 entries");
        let req0 = structure.stats.requests.get();
        let cont0 = structure.stats.contentions.get();
        assert!(conns[0].request_lock(e0, LockMode::Exclusive).unwrap().is_granted());
        let r = conns[1].request_lock(conns[1].hash_resource(other.as_bytes()), LockMode::Exclusive).unwrap();
        assert!(!r.is_granted(), "distinct resources on one entry collide");
        let requests = structure.stats.requests.get() - req0;
        let contentions = structure.stats.contentions.get() - cont0;
        assert_eq!(requests, 2);
        assert_eq!(contentions, 1);
        // Exactly what the phase reports: 1 contention / 2 requests = 50 %,
        // and every bit of it is false contention by construction.
        assert_eq!(pct(contentions, requests), 50.0);
        conns[0].release_lock(e0).unwrap();
        for c in &conns {
            c.detach(DisconnectMode::Normal).unwrap();
        }
    }
}
