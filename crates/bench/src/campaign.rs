//! Campaign-throughput report (`BENCH_campaign_throughput.json`).
//!
//! ROADMAP item 5's premise is that verification speed is a perf surface
//! like the hot path: if the sweep gets slower or its coverage curve goes
//! flat, items 1-4 land blind. The `campaign_sweep` example runs two
//! sweeps over the same budget — pure-random seed sampling and the
//! coverage-guided engine — and records them side by side here, so the
//! "guided beats random on distinct bits" claim is a tracked number, not
//! folklore. Hand-rolled JSON like every other bench (the workspace
//! carries no serde).

/// One sampled point of a sweep's distinct-coverage curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CurvePoint {
    /// Milliseconds since the sweep started.
    pub t_ms: u64,
    /// Distinct coverage bits accumulated by then.
    pub bits: u64,
}

/// The outcome of one sweep mode (random control or coverage-guided).
#[derive(Debug, Clone)]
pub struct ModeResult {
    /// `"random"` or `"guided"`.
    pub mode: &'static str,
    /// Engine base seed (publishes the sweep's decision stream).
    pub base_seed: u64,
    /// Campaigns completed inside the budget.
    pub campaigns: u64,
    /// Wall time actually spent, milliseconds.
    pub elapsed_ms: u64,
    /// Distinct coverage bits at the end of the sweep.
    pub coverage_bits: u64,
    /// Corpus entries alive at the end (the random control admits entries
    /// too — it just never draws from them).
    pub corpus_size: usize,
    /// Invariant-violating campaigns found (each printed with a shrunk
    /// repro by the example; any non-zero fails CI).
    pub violations: u64,
    /// Distinct-coverage-over-time curve, monotone non-decreasing.
    pub curve: Vec<CurvePoint>,
}

impl ModeResult {
    /// Verification throughput.
    pub fn campaigns_per_s(&self) -> f64 {
        if self.elapsed_ms == 0 {
            0.0
        } else {
            self.campaigns as f64 / (self.elapsed_ms as f64 / 1_000.0)
        }
    }
}

/// The full report written to `BENCH_campaign_throughput.json`.
#[derive(Debug, Clone)]
pub struct CampaignThroughputReport {
    /// Hardware threads on the host.
    pub hw_threads: usize,
    /// Campaign transport — always `"in-process"` (the deterministic
    /// harness never leaves the worker process; parallelism is one worker
    /// process per core).
    pub transport: &'static str,
    /// Worker processes per sweep.
    pub workers: usize,
    /// Per-mode time budget, seconds.
    pub budget_s: u64,
    /// Both sweep modes, random control first.
    pub modes: Vec<ModeResult>,
}

impl CampaignThroughputReport {
    /// `guided coverage_bits - random coverage_bits` (negative when the
    /// control won — a regression in the guidance itself).
    pub fn guided_advantage_bits(&self) -> i64 {
        let bits = |mode: &str| {
            self.modes.iter().find(|m| m.mode == mode).map(|m| m.coverage_bits as i64).unwrap_or(0)
        };
        bits("guided") - bits("random")
    }

    /// Render the schema-stable JSON consumed by the CI `campaign-sweep`
    /// job (see DESIGN.md §12 for the schema contract).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"report\": \"campaign_throughput\",\n");
        out.push_str(&format!("  \"schema_version\": {},\n", sysplex_services::SCHEMA_VERSION));
        out.push_str(&format!("  \"hw_threads\": {},\n", self.hw_threads));
        out.push_str(&format!("  \"transport\": \"{}\",\n", self.transport));
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str(&format!("  \"budget_s\": {},\n", self.budget_s));
        out.push_str(&format!("  \"guided_advantage_bits\": {},\n", self.guided_advantage_bits()));
        out.push_str("  \"modes\": [\n");
        for (i, m) in self.modes.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"mode\": \"{}\", \"base_seed\": \"{:#x}\", \"campaigns\": {}, \
                 \"elapsed_ms\": {}, \"campaigns_per_s\": {:.2}, \"coverage_bits\": {}, \
                 \"corpus_size\": {}, \"violations\": {}, \"coverage_curve\": [",
                m.mode,
                m.base_seed,
                m.campaigns,
                m.elapsed_ms,
                m.campaigns_per_s(),
                m.coverage_bits,
                m.corpus_size,
                m.violations,
            ));
            for (j, p) in m.curve.iter().enumerate() {
                out.push_str(&format!(
                    "{}{{\"t_ms\": {}, \"bits\": {}}}",
                    if j == 0 { "" } else { ", " },
                    p.t_ms,
                    p.bits
                ));
            }
            out.push_str(&format!("]}}{}\n", if i + 1 == self.modes.len() { "" } else { "," }));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }

    /// Human-readable table printed alongside the JSON.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "CAMPAIGN SWEEP — {} worker process(es), {} s/mode, {} hardware threads\n",
            self.workers, self.budget_s, self.hw_threads
        ));
        out.push_str(&format!(
            "{:<8} {:>10} {:>12} {:>14} {:>12} {:>11}\n",
            "mode", "campaigns", "campaigns/s", "coverage bits", "corpus", "violations"
        ));
        for m in &self.modes {
            out.push_str(&format!(
                "{:<8} {:>10} {:>12.1} {:>14} {:>12} {:>11}\n",
                m.mode,
                m.campaigns,
                m.campaigns_per_s(),
                m.coverage_bits,
                m.corpus_size,
                m.violations
            ));
        }
        out.push_str(&format!("guided advantage: {:+} distinct bits\n", self.guided_advantage_bits()));
        out
    }
}

/// Thin a raw curve down to at most `max_points` samples, always keeping
/// the first and last so the plotted span is exact.
pub fn downsample_curve(curve: &[CurvePoint], max_points: usize) -> Vec<CurvePoint> {
    let max_points = max_points.max(2);
    if curve.len() <= max_points {
        return curve.to_vec();
    }
    let mut out = Vec::with_capacity(max_points);
    let step = (curve.len() - 1) as f64 / (max_points - 1) as f64;
    for i in 0..max_points {
        out.push(curve[(i as f64 * step).round() as usize]);
    }
    *out.last_mut().expect("non-empty") = *curve.last().expect("non-empty");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mode(mode: &'static str, bits: u64) -> ModeResult {
        ModeResult {
            mode,
            base_seed: 0x5EED,
            campaigns: 120,
            elapsed_ms: 10_000,
            coverage_bits: bits,
            corpus_size: if mode == "guided" { 17 } else { 0 },
            violations: 0,
            curve: vec![CurvePoint { t_ms: 5, bits: bits / 2 }, CurvePoint { t_ms: 9_000, bits }],
        }
    }

    #[test]
    fn report_json_has_schema_keys_and_advantage() {
        let report = CampaignThroughputReport {
            hw_threads: 4,
            transport: "in-process",
            workers: 4,
            budget_s: 10,
            modes: vec![mode("random", 900), mode("guided", 1100)],
        };
        assert_eq!(report.guided_advantage_bits(), 200);
        let json = report.to_json();
        for key in [
            "\"report\": \"campaign_throughput\"",
            "\"schema_version\": 1",
            "\"hw_threads\": 4",
            "\"transport\": \"in-process\"",
            "\"workers\": 4",
            "\"budget_s\": 10",
            "\"guided_advantage_bits\": 200",
            "\"mode\": \"random\"",
            "\"mode\": \"guided\"",
            "\"base_seed\": \"0x5eed\"",
            "\"campaigns_per_s\": 12.00",
            "\"coverage_bits\": 1100",
            "\"corpus_size\": 17",
            "\"violations\": 0",
            "\"coverage_curve\": [{\"t_ms\": 5,",
        ] {
            assert!(json.contains(key), "JSON missing {key}: {json}");
        }
        assert!(!json.contains("NaN"));
        assert!(report.render_table().contains("guided advantage: +200"));
    }

    #[test]
    fn downsample_keeps_endpoints_and_monotonicity() {
        let raw: Vec<CurvePoint> = (0..1000).map(|i| CurvePoint { t_ms: i, bits: 100 + i / 3 }).collect();
        let thin = downsample_curve(&raw, 64);
        assert_eq!(thin.len(), 64);
        assert_eq!(thin[0], raw[0]);
        assert_eq!(*thin.last().unwrap(), *raw.last().unwrap());
        for w in thin.windows(2) {
            assert!(w[1].bits >= w[0].bits && w[1].t_ms >= w[0].t_ms);
        }
        assert_eq!(downsample_curve(&raw[..2], 64), raw[..2].to_vec());
    }
}
