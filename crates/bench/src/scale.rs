//! Multi-process sysplex scaling report (`BENCH_sysplex_scale.json`).
//!
//! The `sysplex_scale` example stands up a real multi-process sysplex —
//! one parent holding the CF behind a `SysplexServer`, N member
//! processes connected over TCP — and drives a debit-credit-shaped
//! burst from every member. Each member prints one machine-parseable
//! result line on stdout ([`MemberSample`]); the parent aggregates the
//! lines into a [`ScaleReport`] with a members-vs-throughput scaling
//! curve, the wire analogue of the paper's Figure 3.
//!
//! Everything here is plain text and hand-rolled JSON: the workspace
//! carries no serde, and the member→parent channel must survive
//! whatever else the child writes to stdout.

/// Prefix member processes put in front of their result line.
pub const RESULT_PREFIX: &str = "SCALE-RESULT";

/// One member process's measurements, as passed over the stdout pipe.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberSample {
    /// Raw system id the member was admitted as.
    pub system: u8,
    /// Member name (no whitespace).
    pub name: String,
    /// Debit-credit transactions completed.
    pub ops: u64,
    /// Wall time for the transaction burst, microseconds.
    pub elapsed_us: u64,
    /// XCF signal round trip, median, microseconds.
    pub xcf_rtt_us_p50: f64,
    /// XCF signal round trip, 95th percentile, microseconds.
    pub xcf_rtt_us_p95: f64,
    /// CF probe command service time, median, microseconds.
    pub cf_probe_us_p50: f64,
    /// CF probe command service time, 95th percentile, microseconds.
    pub cf_probe_us_p95: f64,
}

impl MemberSample {
    /// Transactions per second over the burst.
    pub fn ops_per_s(&self) -> f64 {
        if self.elapsed_us == 0 {
            0.0
        } else {
            self.ops as f64 / (self.elapsed_us as f64 / 1_000_000.0)
        }
    }

    /// Render the stdout result line.
    pub fn to_line(&self) -> String {
        format!(
            "{RESULT_PREFIX} system={} name={} ops={} elapsed_us={} xcf_p50={:.2} xcf_p95={:.2} \
             probe_p50={:.2} probe_p95={:.2}",
            self.system,
            self.name,
            self.ops,
            self.elapsed_us,
            self.xcf_rtt_us_p50,
            self.xcf_rtt_us_p95,
            self.cf_probe_us_p50,
            self.cf_probe_us_p95,
        )
    }

    /// Parse a stdout line; `None` for anything that is not a result line.
    pub fn parse_line(line: &str) -> Option<MemberSample> {
        let rest = line.trim().strip_prefix(RESULT_PREFIX)?;
        let mut sample = MemberSample {
            system: 0,
            name: String::new(),
            ops: 0,
            elapsed_us: 0,
            xcf_rtt_us_p50: 0.0,
            xcf_rtt_us_p95: 0.0,
            cf_probe_us_p50: 0.0,
            cf_probe_us_p95: 0.0,
        };
        let mut seen = 0u32;
        for field in rest.split_whitespace() {
            let (key, value) = field.split_once('=')?;
            match key {
                "system" => sample.system = value.parse().ok()?,
                "name" => sample.name = value.to_string(),
                "ops" => sample.ops = value.parse().ok()?,
                "elapsed_us" => sample.elapsed_us = value.parse().ok()?,
                "xcf_p50" => sample.xcf_rtt_us_p50 = value.parse().ok()?,
                "xcf_p95" => sample.xcf_rtt_us_p95 = value.parse().ok()?,
                "probe_p50" => sample.cf_probe_us_p50 = value.parse().ok()?,
                "probe_p95" => sample.cf_probe_us_p95 = value.parse().ok()?,
                _ => continue,
            }
            seen += 1;
        }
        if seen == 8 {
            Some(sample)
        } else {
            None
        }
    }
}

/// One point of the scaling curve: a whole N-member run.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Member processes in this run.
    pub members: usize,
    /// Sum of per-member throughput.
    pub total_ops_per_s: f64,
    /// Throughput over the 1-member run's (1.0 for the first point).
    pub speedup_vs_1: f64,
    /// The members' individual results.
    pub per_member: Vec<MemberSample>,
    /// Pre-rendered JSON object for the run's merged sysplex
    /// observability section ([`SysplexSection::to_json`] output): the
    /// parent snapshots its SMF store after the run and splices the
    /// document here verbatim. `None` renders as JSON `null`.
    ///
    /// [`SysplexSection::to_json`]: sysplex_services::SysplexSection
    pub observability: Option<String>,
}

/// The full report written to `BENCH_sysplex_scale.json`.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Hardware threads on the host (members are real processes; the
    /// curve flattens when they exhaust these).
    pub hw_threads: usize,
    /// Transport backend — always `"tcp"` for this bench.
    pub transport: &'static str,
    /// Debit-credit transactions each member drives.
    pub ops_per_member: u64,
    /// One point per member count swept, ascending.
    pub scaling: Vec<ScalePoint>,
}

impl ScaleReport {
    /// Assemble the report from per-run member samples (ascending member
    /// counts), computing throughput sums and speedups.
    pub fn from_runs(ops_per_member: u64, runs: Vec<Vec<MemberSample>>) -> ScaleReport {
        let mut scaling = Vec::with_capacity(runs.len());
        let mut base = 0.0f64;
        for per_member in runs {
            let total: f64 = per_member.iter().map(|m| m.ops_per_s()).sum();
            if scaling.is_empty() {
                base = total;
            }
            scaling.push(ScalePoint {
                members: per_member.len(),
                total_ops_per_s: total,
                speedup_vs_1: if base > 0.0 { total / base } else { 0.0 },
                per_member,
                observability: None,
            });
        }
        ScaleReport {
            hw_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            transport: sysplex_core::TransportBackend::Tcp.name(),
            ops_per_member,
            scaling,
        }
    }

    /// Render the schema-stable JSON consumed by the CI `sysplex-scale`
    /// job (see DESIGN.md §9 for the schema contract).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"report\": \"sysplex_scale\",\n");
        out.push_str(&format!("  \"schema_version\": {},\n", sysplex_services::SCHEMA_VERSION));
        out.push_str(&format!("  \"hw_threads\": {},\n", self.hw_threads));
        out.push_str(&format!("  \"transport\": \"{}\",\n", self.transport));
        out.push_str(&format!("  \"ops_per_member\": {},\n", self.ops_per_member));
        out.push_str("  \"scaling\": [\n");
        for (i, p) in self.scaling.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"members\": {}, \"total_ops_per_s\": {:.1}, \"speedup_vs_1\": {:.3}, \
                 \"per_member\": [\n",
                p.members, p.total_ops_per_s, p.speedup_vs_1
            ));
            for (j, m) in p.per_member.iter().enumerate() {
                out.push_str(&format!(
                    "      {{\"system\": {}, \"name\": {}, \"ops\": {}, \"elapsed_ms\": {:.3}, \
                     \"ops_per_s\": {:.1}, \"xcf_rtt_us_p50\": {:.2}, \"xcf_rtt_us_p95\": {:.2}, \
                     \"cf_probe_us_p50\": {:.2}, \"cf_probe_us_p95\": {:.2}}}{}\n",
                    m.system,
                    sysplex_services::json_str(&m.name),
                    m.ops,
                    m.elapsed_us as f64 / 1_000.0,
                    m.ops_per_s(),
                    m.xcf_rtt_us_p50,
                    m.xcf_rtt_us_p95,
                    m.cf_probe_us_p50,
                    m.cf_probe_us_p95,
                    if j + 1 == p.per_member.len() { "" } else { "," }
                ));
            }
            out.push_str("    ], \"observability\": ");
            out.push_str(p.observability.as_deref().unwrap_or("null"));
            out.push_str(&format!("}}{}\n", if i + 1 == self.scaling.len() { "" } else { "," }));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }

    /// Human-readable table (the example prints this alongside the JSON).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "SYSPLEX SCALE — {} transport, {} ops/member, {} hardware threads\n",
            self.transport, self.ops_per_member, self.hw_threads
        ));
        out.push_str(&format!(
            "{:<8} {:>14} {:>10}   per-member ops/s (xcf rtt p50 µs / cf probe p50 µs)\n",
            "members", "total ops/s", "speedup"
        ));
        for p in &self.scaling {
            let detail = p
                .per_member
                .iter()
                .map(|m| {
                    format!(
                        "{}: {:.0} ({:.0}/{:.0})",
                        m.name,
                        m.ops_per_s(),
                        m.xcf_rtt_us_p50,
                        m.cf_probe_us_p50
                    )
                })
                .collect::<Vec<_>>()
                .join("  ");
            out.push_str(&format!(
                "{:<8} {:>14.1} {:>9.2}x   {}\n",
                p.members, p.total_ops_per_s, p.speedup_vs_1, detail
            ));
        }
        out
    }
}

/// Percentile over an unsorted sample set (nearest-rank), in the
/// samples' own unit.
pub fn percentile_us(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.saturating_sub(1).min(samples.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(system: u8, ops: u64, elapsed_us: u64) -> MemberSample {
        MemberSample {
            system,
            name: format!("SYS{system:02}"),
            ops,
            elapsed_us,
            xcf_rtt_us_p50: 12.5,
            xcf_rtt_us_p95: 31.25,
            cf_probe_us_p50: 8.0,
            cf_probe_us_p95: 16.0,
        }
    }

    #[test]
    fn result_line_round_trips() {
        let s = sample(3, 500, 250_000);
        assert_eq!(MemberSample::parse_line(&s.to_line()), Some(s));
        // Child noise on stdout is ignored.
        assert_eq!(MemberSample::parse_line("joining group SCALE"), None);
        assert_eq!(MemberSample::parse_line("SCALE-RESULT system=1"), None, "incomplete line rejected");
    }

    #[test]
    fn report_computes_totals_and_speedup() {
        // 500 ops in 0.25 s = 2000 ops/s per member.
        let runs =
            vec![vec![sample(1, 500, 250_000)], vec![sample(1, 500, 250_000), sample(2, 500, 250_000)]];
        let report = ScaleReport::from_runs(500, runs);
        assert_eq!(report.scaling.len(), 2);
        assert!((report.scaling[0].total_ops_per_s - 2000.0).abs() < 1e-6);
        assert!((report.scaling[1].speedup_vs_1 - 2.0).abs() < 1e-6);
        assert_eq!(report.transport, "tcp");

        let json = report.to_json();
        for key in [
            "\"report\": \"sysplex_scale\"",
            "\"schema_version\": 1",
            "\"hw_threads\"",
            "\"transport\": \"tcp\"",
            "\"ops_per_member\": 500",
            "\"scaling\"",
            "\"per_member\"",
            "\"xcf_rtt_us_p50\"",
            "\"cf_probe_us_p50\"",
            "\"speedup_vs_1\"",
            "\"observability\": null",
        ] {
            assert!(json.contains(key), "JSON missing {key}");
        }
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn hostile_member_names_are_escaped_and_observability_splices() {
        let mut evil = sample(1, 500, 250_000);
        evil.name = "SYS\"01\\".to_string();
        let mut report = ScaleReport::from_runs(500, vec![vec![evil]]);
        report.scaling[0].observability = Some("{\"member_count\": 1, \"reconciled\": true}".to_string());
        let json = report.to_json();
        assert!(json.contains(r#""name": "SYS\"01\\""#), "name must escape: {json}");
        assert!(json.contains("\"observability\": {\"member_count\": 1"));
        assert!(!json.contains("\"observability\": null"));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let mut v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile_us(&mut v, 50.0), 3.0);
        assert_eq!(percentile_us(&mut v, 95.0), 5.0);
        assert_eq!(percentile_us(&mut [], 50.0), 0.0);
    }
}
