//! Splice operations-day campaign outcomes into a `BENCH_*.json` report.
//!
//! The RMF-style activity report is a hand-rolled JSON object (the
//! workspace carries no serde), and the chaos campaigns produce a
//! `"scenarios"` array in the same style. [`splice_scenarios`] merges
//! the two into one schema-stable document: the report keeps every
//! existing key, and a top-level `scenarios` key carries the recovery
//! metrics CI checks (`lost == 0`, `oracle_clean`, fence/readmit times).

/// Insert `"scenarios": <scenarios>` as the last key of the top-level
/// report object. `scenarios` must already be rendered JSON (use
/// `sysplex_harness::scenarios_json`).
///
/// Panics if `report_json` does not end with a `}` — the report writer
/// and this splice must agree on the document shape.
pub fn splice_scenarios(report_json: &str, scenarios: &str) -> String {
    let trimmed = report_json.trim_end();
    let body = trimmed.strip_suffix('}').expect("report JSON ends with an object close");
    let sep = if body.trim_end().ends_with(['{', ',']) { "" } else { "," };
    format!("{}{sep}\n  \"scenarios\": {scenarios}\n}}\n", body.trim_end())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splice_appends_scenarios_key_before_the_close() {
        let report = "{\n  \"report\": \"cf_activity\",\n  \"totals\": {\"issued\": 3}\n}\n";
        let out = splice_scenarios(report, "[\n    {\"scenario\": \"demo\"}\n  ]");
        assert!(out.contains("\"report\": \"cf_activity\""), "existing keys preserved");
        assert!(out.contains("\"scenarios\": ["), "scenarios key added");
        assert!(out.trim_end().ends_with('}'), "still one object");
        let open = out.matches('{').count();
        let close = out.matches('}').count();
        assert_eq!(open, close, "balanced braces");
    }

    #[test]
    fn splice_handles_an_empty_report_object() {
        let out = splice_scenarios("{}\n", "[]");
        assert_eq!(out, "{\n  \"scenarios\": []\n}\n");
    }
}
