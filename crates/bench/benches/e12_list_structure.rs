//! E12 — list structure: queueing without software serialization (§3.3.3).
//!
//! Measures the list commands (write, dequeue, atomic claim-move, keyed
//! insert), demonstrates the serialized-list recovery protocol's rejection
//! accounting, and shows the transition signal waking a parked consumer.

use criterion::Criterion;
use std::sync::Arc;
use std::time::{Duration, Instant};
use sysplex_bench::{banner, command_path_report, report_activity, row, small_criterion, watch};
use sysplex_core::facility::{CfConfig, CouplingFacility};
use sysplex_core::list::{DequeueEnd, ListParams, ListStructure, LockCondition, WritePosition};
use sysplex_subsys::workq::{queue_params, SharedQueue};

fn serialized_list_protocol() {
    banner("E12: serialized-list recovery protocol (§3.3.3)");
    let s = ListStructure::new("SERQ", &ListParams::with_headers(1).with_locks(1)).unwrap();
    let mainline = s.connect(4).unwrap();
    let recovery = s.connect(4).unwrap();
    // Mainline traffic conditions on the lock being free — no per-request
    // acquire/release.
    for i in 0..500u64 {
        s.write_entry(&mainline, 0, i, b"w", WritePosition::Tail, LockCondition::LockFree(0)).unwrap();
    }
    // Recovery takes the lock for a static view; mainline is rejected.
    s.acquire_lock(&recovery, 0).unwrap();
    let mut rejected = 0;
    for i in 0..100u64 {
        if s.write_entry(&mainline, 0, i, b"w", WritePosition::Tail, LockCondition::LockFree(0)).is_err() {
            rejected += 1;
        }
    }
    let snapshot = s.read_list(&recovery, 0).unwrap().len();
    s.release_lock(&recovery, 0).unwrap();
    row("mainline writes before", &["500".into()]);
    row("rejected during recovery", &[format!("{rejected}")]);
    row("static snapshot size", &[format!("{snapshot}")]);
    row("lock rejections counted", &[format!("{}", s.stats.lock_rejections.get())]);
    assert_eq!(rejected, 100);
    assert_eq!(snapshot, 500, "recovery saw a static view");
}

fn transition_signal_latency() {
    banner("E12b: transition-signal wakeup latency (consumer parked, producer enqueues)");
    let cf = CouplingFacility::new(CfConfig::named("CF01"));
    let list = cf.allocate_list_structure("MSGQ", queue_params()).unwrap();
    let consumer = SharedQueue::open(&list, cf.subchannel()).unwrap();
    let producer = SharedQueue::open(&list, cf.subchannel()).unwrap();
    let mut samples = Vec::new();
    for i in 0..20u64 {
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| {
                let item = consumer.take_wait(Duration::from_secs(5)).unwrap().unwrap();
                (Instant::now(), item)
            });
            std::thread::sleep(Duration::from_millis(5));
            let t_put = Instant::now();
            producer.put(i, b"ping").unwrap();
            let (t_got, item) = waiter.join().unwrap();
            consumer.complete(&item).unwrap();
            samples.push(t_got.duration_since(t_put));
        });
    }
    samples.sort();
    row("wakeup p50", &[format!("{:?}", samples[samples.len() / 2])]);
    row("wakeup max", &[format!("{:?}", samples[samples.len() - 1])]);
}

fn list_command_bench(c: &mut Criterion) {
    let s = Arc::new(
        ListStructure::new("BENCH", &ListParams { headers: 4, lock_entries: 1, max_entries: 1 << 20 })
            .unwrap(),
    );
    let conn = s.connect(8).unwrap();
    let mut group = c.benchmark_group("e12_list_commands");
    group.bench_function("write_then_dequeue_fifo", |b| {
        b.iter(|| {
            s.write_entry(&conn, 0, 1, b"payload", WritePosition::Tail, LockCondition::None).unwrap();
            s.dequeue(&conn, 0, DequeueEnd::Head, LockCondition::None).unwrap()
        })
    });
    let mut key = 0u64;
    group.bench_function("keyed_insert_dequeue", |b| {
        b.iter(|| {
            key = key.wrapping_add(0x9E3779B9);
            s.write_entry(&conn, 1, key % 1000, b"payload", WritePosition::Keyed, LockCondition::None)
                .unwrap();
            s.dequeue(&conn, 1, DequeueEnd::Head, LockCondition::None).unwrap()
        })
    });
    group.bench_function("claim_move_first", |b| {
        b.iter(|| {
            s.write_entry(&conn, 2, 1, b"w", WritePosition::Tail, LockCondition::None).unwrap();
            let e = s
                .move_first(&conn, 2, 3, DequeueEnd::Head, WritePosition::Tail, LockCondition::None)
                .unwrap()
                .unwrap();
            s.delete_entry(&conn, e.id, LockCondition::None).unwrap();
        })
    });
    group.finish();
}

fn multi_consumer_throughput() {
    banner("E12c: shared queue drain, 2 producers + 2 consumers");
    let cf = CouplingFacility::new(CfConfig::named("CF01"));
    let monitor = watch("E12 shared queue drain", std::slice::from_ref(&cf));
    cf.allocate_list_structure("MSGQ2", queue_params()).unwrap();
    let total = 4_000u64;
    let t0 = Instant::now();
    let producers: Vec<_> = (0..2)
        .map(|p| {
            let cf = Arc::clone(&cf);
            std::thread::spawn(move || {
                let q = SharedQueue::open(&cf.list_structure("MSGQ2").unwrap(), cf.subchannel()).unwrap();
                for i in 0..total / 2 {
                    q.put(i % 5, &(p * total + i).to_be_bytes()).unwrap();
                }
            })
        })
        .collect();
    let consumers: Vec<_> = (0..2)
        .map(|_| {
            let cf = Arc::clone(&cf);
            std::thread::spawn(move || {
                let q = SharedQueue::open(&cf.list_structure("MSGQ2").unwrap(), cf.subchannel()).unwrap();
                let mut n = 0u64;
                loop {
                    match q.take_wait(Duration::from_millis(300)).unwrap() {
                        Some(item) => {
                            q.complete(&item).unwrap();
                            n += 1;
                        }
                        None => return n,
                    }
                }
            })
        })
        .collect();
    for p in producers {
        p.join().unwrap();
    }
    let drained: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
    let elapsed = t0.elapsed();
    row("items", &[format!("{drained}/{total}")]);
    row("throughput", &[format!("{:.0} items/s", drained as f64 / elapsed.as_secs_f64())]);
    assert_eq!(drained, total, "exactly-once consumption");
    // The unified command path saw every queue operation; bulk list scans
    // convert to async, everything else stays CPU-synchronous.
    command_path_report(&cf);
    report_activity(&monitor, std::slice::from_ref(&cf));
}

fn main() {
    serialized_list_protocol();
    transition_signal_latency();
    multi_consumer_throughput();
    let mut c = small_criterion();
    list_command_bench(&mut c);
    c.final_summary();
}
