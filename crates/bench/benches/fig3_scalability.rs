//! Figure 3 — effective capacity vs physical capacity.
//!
//! Regenerates the paper's central figure: the IDEAL 1:1 line, the TCMP
//! curve that flattens as engines are added to one box, and the Parallel
//! Sysplex curve that grows near-linearly as data-sharing systems are
//! added. Absolute units are effective single-engine equivalents from the
//! cost model in `sysplex-sim`; the claim under test is the *shape*.

use sysplex_bench::{banner, f, row};
use sysplex_sim::capacity::{figure3_series, sysplex_effective};
use sysplex_sim::datasharing::TxnCostModel;
use sysplex_sim::mp::tcmp_effective_cpus;

fn main() {
    let model = TxnCostModel::default();
    banner("Figure 3: Parallel Sysplex Scalability (effective vs physical capacity)");
    let series = figure3_series(320, 10, &model);
    row("physical cpus", &["ideal", "tcmp", "sysplex", "tcmp eff%", "sysplex eff%"].map(String::from));
    for &n in &[1usize, 2, 5, 10, 16, 20, 40, 80, 160, 240, 320] {
        let p = &series[n - 1];
        row(
            &format!("{n}"),
            &[
                f(p.ideal),
                f(p.tcmp),
                f(p.sysplex),
                format!("{:.0}%", p.tcmp / p.ideal * 100.0),
                format!("{:.0}%", p.sysplex / p.ideal * 100.0),
            ],
        );
    }

    banner("Sysplex members sweep (10-way systems)");
    row("members", &["eff capacity", "marginal", "marginal %"].map(String::from));
    let mut prev = 0.0;
    for members in 1..=32usize {
        let cap = sysplex_effective(members, 10, &model);
        let marginal = cap - prev;
        if members <= 4 || members % 4 == 0 {
            row(
                &format!("{members}"),
                &[f(cap), f(marginal), format!("{:.1}%", marginal / tcmp_effective_cpus(10) * 100.0)],
            );
        }
        prev = cap;
    }

    // Shape assertions — the reproduction's pass/fail for this figure.
    let p320 = &series[319];
    assert!(p320.sysplex / p320.ideal > 0.60, "sysplex stays near-linear at 32 systems");
    assert!(p320.tcmp / p320.ideal < 0.15, "one giant TCMP has long since flattened");
    let p10 = &series[9];
    assert!((p10.sysplex - p10.tcmp).abs() < 1e-9, "curves coincide inside one box");
    println!("\nshape checks passed: ideal > sysplex (near-linear) >> tcmp (flattened)");
}
