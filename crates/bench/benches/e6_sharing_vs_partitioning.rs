//! E6 — data-sharing vs data-partitioning under real-world demand (§2.3).
//!
//! The same hardware and the same offered load, two architectures, four
//! demand shapes. The paper's qualitative claims under test:
//!
//! * perfectly uniform demand: the well-tuned partitioned system is
//!   competitive (it avoids the data-sharing overhead);
//! * skewed or moving demand: the partitioned hot node saturates while
//!   the data-sharing sysplex, routing on capacity, is unaffected;
//! * the crossover arrives at modest skew.

use sysplex_bench::{banner, f, row};
use sysplex_sim::compare::{run_comparison, CompareConfig, Design};
use sysplex_workload::hotspot::{HotspotKind, HotspotModel};

fn report(label: &str, cfg: &CompareConfig) -> (f64, f64) {
    let s = run_comparison(cfg, Design::DataSharing);
    let p = run_comparison(cfg, Design::DataPartitioning);
    row(
        label,
        &[
            format!("{:.0}", s.offered_tps),
            format!("{:.3}", s.completion_ratio),
            format!("{:.1}", s.avg_delay_ms),
            format!("{:.3}", p.completion_ratio),
            format!("{:.1}", p.avg_delay_ms),
        ],
    );
    (s.completion_ratio, p.completion_ratio)
}

fn main() {
    banner("E6: data-sharing vs data-partitioning (4 nodes x 10 cpus, 70% load)");
    row("scenario", &["offered tps", "DS compl", "DS delay ms", "DP compl", "DP delay ms"].map(String::from));

    let nodes = 4;
    let scenarios: Vec<(String, HotspotKind)> = vec![
        ("uniform (tuned benchmark)".into(), HotspotKind::Uniform),
        ("static skew 35%".into(), HotspotKind::Static { hot_share: 0.35 }),
        ("static skew 45%".into(), HotspotKind::Static { hot_share: 0.45 }),
        ("static skew 55%".into(), HotspotKind::Static { hot_share: 0.55 }),
        ("static skew 70%".into(), HotspotKind::Static { hot_share: 0.70 }),
        ("migrating hotspot 55%".into(), HotspotKind::Migrating { hot_share: 0.55 }),
        ("bursty 80%/30% duty".into(), HotspotKind::Bursty { hot_share: 0.8, duty: 0.3 }),
    ];
    let mut results = Vec::new();
    for (label, kind) in &scenarios {
        let cfg = CompareConfig::new(nodes, HotspotModel { partitions: nodes, kind: *kind });
        results.push((label.clone(), report(label, &cfg)));
    }

    // Shape assertions.
    let uniform = &results[0].1;
    assert!(uniform.0 > 0.98 && uniform.1 > 0.98, "both fine when uniform");
    let heavy = &results[4].1; // 70% skew
    assert!(heavy.0 > 0.98, "sysplex unaffected by skew");
    assert!(heavy.1 < 0.75, "partitioned hot node saturated: {}", heavy.1);
    // Crossover: the first skew where partitioned completion drops.
    let crossover = results
        .iter()
        .skip(1)
        .take(4)
        .find(|(_, (_, p))| *p < 0.95)
        .map(|(l, _)| l.clone())
        .unwrap_or_else(|| "none".into());
    println!("\ncrossover (partitioned completion < 95%): {crossover}");

    banner("E6c: response-time curve (static skew 55%) — the knee moves left");
    {
        use sysplex_sim::response::response_curve;
        use sysplex_workload::hotspot::HotspotModel as HM;
        let loads = [0.3, 0.5, 0.6, 0.7, 0.8];
        let curve = response_curve(
            nodes,
            HM { partitions: nodes, kind: HotspotKind::Static { hot_share: 0.55 } },
            &loads,
        );
        row("load", &["DS delay ms", "DP delay ms", "DP compl"].map(String::from));
        for p in &curve {
            row(
                &format!("{:.0}%", p.load_fraction * 100.0),
                &[
                    format!("{:.1}", p.ds_delay_ms),
                    format!("{:.1}", p.dp_delay_ms),
                    format!("{:.3}", p.dp_completion),
                ],
            );
        }
        assert!(curve.last().unwrap().ds_delay_ms < 50.0, "sysplex still flat at 80% load");
        assert!(
            curve.last().unwrap().dp_delay_ms > curve[0].dp_delay_ms * 10.0,
            "partitioned knee well inside the sweep"
        );
    }

    banner("E6b: the tuning concession — raw per-node capacity");
    let cfg = CompareConfig::new(nodes, HotspotModel { partitions: nodes, kind: HotspotKind::Uniform });
    row(
        "per-node capacity tps",
        &[
            format!("DS {}", f(cfg.node_capacity_tps(Design::DataSharing))),
            format!("DP {}", f(cfg.node_capacity_tps(Design::DataPartitioning))),
        ],
    );
    println!(
        "\npaper §2.3 reproduced: partitioning wins only the perfectly tuned uniform case;\n\
         any skew or motion saturates its hot node while the data-sharing design rides through"
    );
}
