//! E3 — "the initial data-sharing cost associated with the transition
//! from a single-system non-data-sharing configuration to a two-system
//! data-sharing configuration was measured at less than 18%" (§4).
//!
//! 1. **Model**: the cost accounting's sharing overhead at 2 members.
//! 2. **Live**: CF operations per transaction in a 1-member group (which
//!    still drives the protocols — the conservative upper bound for a
//!    sharing-enabled single system) vs the non-sharing baseline of zero
//!    CF operations, costed at the calibrated per-op CPU.

use sysplex_bench::{banner, f, row, LiveRig};
use sysplex_sim::constants::{CF_OP_CPU_US, TXN_BASE_CPU_US};
use sysplex_sim::datasharing::TxnCostModel;
use sysplex_workload::oltp::{OltpConfig, OltpGenerator};

fn main() {
    let model = TxnCostModel::default();

    banner("E3 (model): initial data-sharing cost");
    row("configuration", &["cpu us/txn", "vs baseline"].map(String::from));
    let base = model.cpu_per_txn_us(1, false);
    row("1 system, no sharing", &[f(base), "-".to_string()]);
    for members in [2usize, 3, 4, 8, 16, 32] {
        let cpu = model.cpu_per_txn_us(members, true);
        row(
            &format!("{members} systems, sharing"),
            &[f(cpu), format!("+{:.1}%", (cpu / base - 1.0) * 100.0)],
        );
    }
    let initial = model.sharing_overhead(2);
    assert!(initial < 0.18, "paper: initial cost < 18%, model gives {:.1}%", initial * 100.0);
    println!("model initial data-sharing cost: {:.1}% (paper: < 18%)", initial * 100.0);

    banner("E3 (live): measured CF operations per transaction (2-member group)");
    let rig = LiveRig::new(2, 4096);
    let mut gen = OltpGenerator::new(
        OltpConfig { keys: 2_000, reads_per_txn: 3, writes_per_txn: 2, skew: 0.3, value_len: 16 },
        7,
    );
    let txns = 300usize;
    for (i, spec) in gen.batch(txns).into_iter().enumerate() {
        let db = &rig.dbs[i % 2];
        db.run(50, |db, txn| {
            for k in &spec.reads {
                db.read(txn, *k)?;
            }
            for (k, v) in &spec.writes {
                db.write(txn, *k, Some(v))?;
            }
            Ok(())
        })
        .expect("txn");
    }
    let lock_structure = rig.group.lock_structure();
    let lock = &lock_structure.stats;
    let cache_structure = rig.group.cache_structure();
    let cache = &cache_structure.stats;
    let cf_ops = lock.requests.get()
        + lock.releases.get()
        + lock.records_written.get()
        + cache.reads.get()
        + cache.writes.get();
    let ops_per_txn = cf_ops as f64 / txns as f64;
    let live_cost = ops_per_txn * CF_OP_CPU_US / TXN_BASE_CPU_US;
    row("cf ops/txn", &[f(ops_per_txn)]);
    row("implied sharing cost", &[format!("{:.1}%", live_cost * 100.0)]);
    row(
        "lock sync-grant rate",
        &[format!("{:.1}%", rig.group.lock_structure().rates().sync_grant_fraction * 100.0)],
    );
    rig.shutdown();
    assert!(live_cost < 0.30, "live implied cost in the same regime as the paper: {live_cost:.3}");

    debit_credit_measurement();
    println!("\npaper §4: < 18% — model {:.1}%, live-counted {:.1}%", initial * 100.0, live_cost * 100.0);
}

/// The same measurement on the TPC-A-shaped debit/credit workload — the
/// closest match to the paper's CICS/DBCTL testbed (3 updates + 1 history
/// insert per transaction, hot branch records).
fn debit_credit_measurement() {
    use sysplex_workload::debitcredit::{DebitCreditConfig, DebitCreditGenerator, KeyLayout};
    banner("E3b (live): debit/credit (CICS/DBCTL-shaped) CF cost");
    let rig = LiveRig::new(2, 4096);
    let cfg = DebitCreditConfig::default();
    let layout = KeyLayout::new(cfg);
    let mut gen = DebitCreditGenerator::new(cfg, 4);
    let txns = 300usize;
    for i in 0..txns {
        let t = gen.next_txn();
        let db = &rig.dbs[i % 2];
        db.run(200, |db, txn| {
            for k in [
                layout.account(t.account_branch, t.account),
                layout.teller(t.home_branch, t.teller),
                layout.branch(t.home_branch),
            ] {
                let v = db.read(txn, k)?.map(|v| i64::from_be_bytes(v[..8].try_into().unwrap())).unwrap_or(0);
                db.write(txn, k, Some(&(v + t.delta).to_be_bytes()))?;
            }
            db.write(txn, layout.history_base() + t.history_seq, Some(&t.delta.to_be_bytes()))
        })
        .expect("debit/credit txn");
    }
    let lock_structure = rig.group.lock_structure();
    let cache_structure = rig.group.cache_structure();
    let cf_ops = lock_structure.stats.requests.get()
        + lock_structure.stats.releases.get()
        + lock_structure.stats.records_written.get()
        + cache_structure.stats.reads.get()
        + cache_structure.stats.writes.get();
    let ops_per_txn = cf_ops as f64 / txns as f64;
    let live_cost = ops_per_txn * CF_OP_CPU_US / TXN_BASE_CPU_US;
    row("cf ops/txn", &[f(ops_per_txn)]);
    row("implied cost (at 2.5ms base)", &[format!("{:.1}%", live_cost * 100.0)]);
    println!(
        "(a 4-update debit/credit burns more base CPU than the 2.5 ms reference txn,\n\
         so its relative sharing cost is correspondingly lower in practice)"
    );
    rig.shutdown();
    assert!(live_cost < 0.40, "debit/credit cost in regime: {live_cost:.3}");
}
