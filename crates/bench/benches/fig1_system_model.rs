//! Figure 1 — the system model, exercised and timed.
//!
//! Brings up the full Figure 1 topology (32 systems, CF, sysplex timer,
//! fully-connected DASD) and measures the cost hierarchy the architecture
//! depends on: nanosecond TOD reads, microsecond CF commands over 50 and
//! 100 MB/s links (sync vs async), millisecond DASD I/O.

use criterion::Criterion;
use std::hint::black_box;
use std::sync::Arc;
use sysplex_bench::{banner, command_path_report, row, small_criterion};
use sysplex_core::facility::{CfConfig, CouplingFacility};
use sysplex_core::link::LinkConfig;
use sysplex_core::lock::{LockMode, LockParams};
use sysplex_core::SystemId;
use sysplex_dasd::farm::DasdFarm;
use sysplex_dasd::volume::IoModel;
use sysplex_services::sysplex::{Sysplex, SysplexConfig};
use sysplex_services::system::SystemConfig;

fn topology_checks() {
    banner("Figure 1: system model bring-up (32 systems, CF, timer, shared DASD)");
    let plex = Sysplex::new(SysplexConfig::functional("FIG1PLEX"));
    let _cf = plex.add_cf("CF01");
    let _cf2 = plex.add_cf("CF02"); // multiple CFs for availability
    for i in 0..32u8 {
        plex.ipl(SystemConfig::cmos(SystemId::new(i), if i % 3 == 0 { 10 } else { 2 }));
    }
    assert_eq!(plex.active_systems().len(), 32);
    row("systems", &[format!("{}", plex.active_systems().len())]);
    row("total capacity MIPS", &[format!("{:.0}", plex.total_capacity_mips())]);

    // Full connectivity: every system reads a block any system wrote.
    plex.farm.add_volume("SHARED", 16, 8).unwrap();
    plex.farm.write(0, "SHARED", 0, b"from sys00").unwrap();
    for i in 0..32u8 {
        assert_eq!(plex.farm.read(i, "SHARED", 0).unwrap(), b"from sys00");
    }
    row("full DASD connectivity", &["32/32 systems".to_string()]);

    // Sysplex timer: strictly monotonic unique TODs across systems.
    let t1 = plex.timer.tod();
    let t2 = plex.timer.tod();
    assert!(t2 > t1);
    row("timer monotonicity", &["ok".to_string()]);
    assert!(plex.tick().is_empty());
    for i in 0..32u8 {
        plex.remove_planned(SystemId::new(i));
    }
}

fn link_benches(c: &mut Criterion) {
    let farm = DasdFarm::new(IoModel::disk_1996());
    farm.add_volume("VOL1", 64, 4).unwrap();

    let mut group = c.benchmark_group("fig1_cost_hierarchy");
    // TOD read: nanoseconds.
    let timer = sysplex_services::timer::SysplexTimer::new();
    group.bench_function("sysplex_timer_tod", |b| b.iter(|| black_box(timer.tod())));

    // CF sync command over each link class: microseconds. Commands go
    // through the unified subchannel layer like every exploiter's do.
    let mut facilities = Vec::new();
    for (name, link_cfg) in
        [("instant", LinkConfig::instant()), ("mb50", LinkConfig::mb50()), ("mb100", LinkConfig::mb100())]
    {
        let cf = CouplingFacility::new(CfConfig::named("CF01").with_link(link_cfg));
        cf.allocate_lock_structure("L", LockParams::with_entries(1024)).unwrap();
        let conn = cf.connect_lock("L").unwrap();
        let mut entry = 0usize;
        group.bench_function(format!("cf_sync_lock_cmd_{name}"), |b| {
            b.iter(|| {
                entry = (entry + 1) % 1024;
                conn.request_lock(entry, LockMode::Shared).unwrap();
                conn.release_lock(entry).unwrap();
            })
        });
        facilities.push((name, cf));
    }

    // Async command on a 100 MB/s link pays task-switch overhead.
    {
        let cf = CouplingFacility::new(CfConfig::named("CF01").with_link(LinkConfig::mb100()));
        let lock = cf.allocate_lock_structure("L", LockParams::with_entries(1024)).unwrap();
        let conn = lock.connect().unwrap();
        let link = cf.link();
        let lock2 = Arc::clone(&lock);
        group.bench_function("cf_async_lock_cmd_mb100", |b| {
            b.iter(|| {
                let l = Arc::clone(&lock2);
                link.execute_async(64, move || {
                    l.request(conn, 0, LockMode::Shared).unwrap();
                    l.release(conn, 0).unwrap();
                })
                .wait()
            })
        });
    }

    // DASD I/O: milliseconds (1996 service time).
    group.sample_size(10);
    group.bench_function("dasd_read_1996", |b| b.iter(|| black_box(farm.read(0, "VOL1", 3).unwrap())));
    group.finish();
    // Per-class accounting for the mb100 facility: lock commands stay
    // CPU-synchronous on the unified command path.
    for (name, cf) in &facilities {
        if *name == "mb100" {
            command_path_report(cf);
        }
    }
}

fn transfer_table() {
    banner("Coupling link transfer model (paper: 50 or 100 MB/s)");
    row("payload", &["mb50 svc time", "mb100 svc time"].map(String::from));
    for payload in [0usize, 256, 4096, 65_536] {
        row(
            &format!("{payload} B"),
            &[
                format!("{:?}", LinkConfig::mb50().service_time(payload)),
                format!("{:?}", LinkConfig::mb100().service_time(payload)),
            ],
        );
    }
}

fn main() {
    topology_checks();
    transfer_table();
    let mut c = small_criterion();
    link_benches(&mut c);
    c.final_summary();
}
