//! Figure 2 — the data-sharing architecture, exercised and timed live.
//!
//! Two database members over one CF: measures each leg of the §3.3.2
//! coherency protocol (the nanosecond local validity test, the registered
//! read, the write + cross-invalidate, the refresh after invalidation)
//! and the §3.3.1 lock protocol, then prints the protocol counters for a
//! mixed read/write workload — including the fraction of lock requests
//! granted CPU-synchronously, which the paper claims is "the majority".

use criterion::Criterion;
use std::hint::black_box;
use sysplex_bench::{banner, row, small_criterion, LiveRig};
use sysplex_core::lock::LockMode;
use sysplex_workload::oltp::{OltpConfig, OltpGenerator};

fn protocol_microbench(c: &mut Criterion) {
    let rig = LiveRig::new(2, 4096);
    let mut group = c.benchmark_group("fig2_protocol_legs");

    // Local buffer validity test: never contacts the CF.
    let cache = rig.group.cache_structure();
    let conn_a = cache.connect(64).unwrap();
    let conn_b = cache.connect(64).unwrap();
    let blk = sysplex_core::cache::BlockName::from_parts(9, 1);
    cache.read_and_register(&conn_a, blk, 0).unwrap();
    group.bench_function("local_validity_test", |b| b.iter(|| black_box(conn_a.is_valid(0))));

    // Read-and-register.
    group.bench_function("cf_read_and_register", |b| {
        b.iter(|| cache.read_and_register(&conn_a, blk, 0).unwrap())
    });

    // Write + cross-invalidate one registered peer.
    cache.read_and_register(&conn_b, blk, 1).unwrap();
    group.bench_function("cf_write_and_xi_1_peer", |b| {
        b.iter(|| {
            cache.read_and_register(&conn_b, blk, 1).unwrap();
            cache
                .write_and_invalidate(
                    &conn_a,
                    blk,
                    b"payload-4k-stand-in",
                    sysplex_core::cache::WriteKind::ChangedData,
                )
                .unwrap()
        })
    });

    // Lock request/release on the lock structure.
    let lock = rig.group.lock_structure();
    let lconn = lock.connect().unwrap();
    let entry = lock.hash_resource(b"FIG2.RES");
    group.bench_function("cf_lock_request_release", |b| {
        b.iter(|| {
            lock.request(lconn, entry, LockMode::Exclusive).unwrap();
            lock.release(lconn, entry).unwrap();
        })
    });

    // Full transactional read and write through the stack. The write path
    // appends WAL blocks, so keep the measurement window tight.
    let db = &rig.dbs[0];
    db.run(10, |d, t| d.write(t, 500, Some(b"seed"))).unwrap();
    group.bench_function("txn_read_committed", |b| {
        b.iter(|| rig.dbs[1].run(10, |d, t| d.read(t, 500)).unwrap())
    });
    group.measurement_time(std::time::Duration::from_millis(500));
    let mut i = 0u64;
    group.bench_function("txn_write_commit", |b| {
        b.iter(|| {
            i += 1;
            db.run(10, |d, t| d.write(t, 500, Some(&i.to_be_bytes()))).unwrap()
        })
    });

    // Ablation: the price of CF structure duplexing — every grant, record
    // and changed-data write is mirrored to a second CF.
    let cf2 = rig.plex.add_cf("CF02");
    rig.group.enable_duplexing(&cf2).unwrap();
    let mut j = 0u64;
    group.bench_function("txn_write_commit_duplexed", |b| {
        b.iter(|| {
            j += 1;
            db.run(10, |d, t| d.write(t, 501, Some(&j.to_be_bytes()))).unwrap()
        })
    });
    group.finish();
    rig.shutdown();
}

fn workload_counters() {
    banner("Figure 2: protocol counters under a mixed 2-system workload");
    let rig = LiveRig::new(2, 4096);
    let mut gen = OltpGenerator::new(
        OltpConfig { keys: 1_000, reads_per_txn: 4, writes_per_txn: 2, skew: 0.5, value_len: 24 },
        11,
    );
    let txns = 400;
    for (i, spec) in gen.batch(txns).into_iter().enumerate() {
        rig.dbs[i % 2]
            .run(50, |db, txn| {
                for k in &spec.reads {
                    db.read(txn, *k)?;
                }
                for (k, v) in &spec.writes {
                    db.write(txn, *k, Some(v))?;
                }
                Ok(())
            })
            .unwrap();
    }
    let lock = rig.group.lock_structure();
    let cache = rig.group.cache_structure();
    let rates = lock.rates();
    row("transactions", &[format!("{txns}")]);
    row("lock requests", &[format!("{}", lock.stats.requests.get())]);
    row("  sync grants", &[format!("{:.1}%", rates.sync_grant_fraction * 100.0)]);
    row("  entry contention", &[format!("{:.2}%", rates.contention_fraction * 100.0)]);
    row("cache reads", &[format!("{}", cache.stats.reads.get())]);
    row("  served from CF", &[format!("{}", cache.stats.read_hits.get())]);
    row("cache writes", &[format!("{}", cache.stats.writes.get())]);
    row("XI signals", &[format!("{}", cache.stats.xi_signals.get())]);
    for (i, db) in rig.dbs.iter().enumerate() {
        let s = &db.buffers().stats;
        row(
            &format!("sys{i} buffers"),
            &[
                format!("{} hits", s.local_hits.get()),
                format!("{} cf", s.cf_refreshes.get()),
                format!("{} dasd", s.dasd_reads.get()),
            ],
        );
        let irlm = &db.irlm().stats;
        row(
            &format!("sys{i} irlm"),
            &[
                format!("{} local", irlm.grants_local.get()),
                format!("{} cf-sync", irlm.grants_cf_sync.get()),
                format!("{} false-cont", irlm.false_contentions.get()),
            ],
        );
    }
    assert!(rates.sync_grant_fraction > 0.9, "majority of lock requests granted synchronously");
    rig.shutdown();
    println!(
        "\npaper §3.3.1: 'the majority of requests for locks ... granted cpu-synchronously' — reproduced"
    );
}

fn main() {
    workload_counters();
    let mut c = small_criterion();
    protocol_microbench(&mut c);
    c.final_summary();
}
