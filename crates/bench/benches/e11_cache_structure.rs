//! E11 — cache structure: the coherency cost hierarchy (§3.3.2).
//!
//! The architectural claims under the microscope:
//!
//! * the local validity check "does not involve a CF access" — it must be
//!   orders of magnitude cheaper than any CF command;
//! * cross-invalidation fans out "in parallel to only those systems having
//!   a registered interest" — cost grows with registered peers only;
//! * the optional global cache gives "high-speed local buffer refresh" —
//!   cheaper than a DASD re-read (ablation: store-in vs directory-only).

use criterion::Criterion;
use std::hint::black_box;
use std::time::Instant;
use sysplex_bench::{banner, command_path_report, report_activity, row, small_criterion, watch};
use sysplex_core::cache::{BlockName, CacheParams, CacheStructure, WriteKind};
use sysplex_core::facility::{CfConfig, CouplingFacility};

fn xi_fanout_table() {
    banner("E11: cross-invalidate cost vs registered peers (signals are targeted)");
    row("registered peers", &["XI signals per write", "ns per write (approx)"].map(String::from));
    for peers in [0usize, 1, 4, 16, 31] {
        let cache = CacheStructure::new("GBP", &CacheParams::store_in(1024)).unwrap();
        let writer = cache.connect(64).unwrap();
        let readers: Vec<_> = (0..peers).map(|_| cache.connect(64).unwrap()).collect();
        let blk = BlockName::from_parts(1, 1);
        let iters = 2_000;
        let mut signals = 0usize;
        let t0 = Instant::now();
        for _ in 0..iters {
            for r in &readers {
                cache.read_and_register(r, blk, 0).unwrap();
            }
            let w = cache.write_and_invalidate(&writer, blk, b"x", WriteKind::ChangedData).unwrap();
            signals += w.invalidated;
        }
        let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
        row(&format!("{peers}"), &[format!("{:.1}", signals as f64 / iters as f64), format!("{ns:.0}")]);
        assert_eq!(signals / iters, peers, "exactly the registered peers are signalled");
    }
}

fn refresh_ablation() {
    banner("E11b (ablation): store-in vs directory-only refresh after invalidation");
    // Store-in: refresh comes from the CF global cache.
    let store_in = CacheStructure::new("GBPSI", &CacheParams::store_in(256)).unwrap();
    // Directory-only: refresh must go back to DASD (simulated by the miss).
    let dir_only = CacheStructure::new("GBPDO", &CacheParams::directory_only(256)).unwrap();
    let blk = BlockName::from_parts(1, 1);
    for (label, cache, kind) in [
        ("store-in", &store_in, WriteKind::ChangedData),
        ("directory-only", &dir_only, WriteKind::InvalidateOnly),
    ] {
        let writer = cache.connect(16).unwrap();
        let reader = cache.connect(16).unwrap();
        cache.read_and_register(&reader, blk, 0).unwrap();
        cache.write_and_invalidate(&writer, blk, b"v1", kind).unwrap();
        let reg = cache.read_and_register(&reader, blk, 0).unwrap();
        let refreshed_from_cf = reg.data.is_some();
        row(label, &[format!("refresh from CF: {refreshed_from_cf}")]);
        if label == "store-in" {
            assert!(refreshed_from_cf, "store-in serves the refresh (no DASD I/O)");
        } else {
            assert!(!refreshed_from_cf, "directory-only forces a DASD re-read");
        }
    }
    println!("store-in avoids a ~4 ms DASD read per invalidated reference — the paper's 'high-speed local buffer refresh'");
}

fn coherency_bench(c: &mut Criterion) {
    // All commands flow through cache connections on a shared facility, so
    // the command-path accounting below covers every operation benched here.
    let cf = CouplingFacility::new(CfConfig::named("CF01"));
    let monitor = watch("E11 coherency hierarchy", std::slice::from_ref(&cf));
    cf.allocate_cache_structure("GBP", CacheParams::store_in(4096)).unwrap();
    let a = cf.connect_cache("GBP", 256).unwrap();
    let b = cf.connect_cache("GBP", 256).unwrap();
    let blk = BlockName::from_parts(7, 7);
    a.register_read(blk, 0).unwrap();

    let mut group = c.benchmark_group("e11_coherency_hierarchy");
    // The nanosecond path: no CF access at all.
    group.bench_function("local_validity_test", |bch| bch.iter(|| black_box(a.is_valid(0))));
    // CF commands.
    group.bench_function("read_and_register", |bch| bch.iter(|| a.register_read(blk, 0).unwrap()));
    group.bench_function("write_and_invalidate_1_peer", |bch| {
        bch.iter(|| {
            b.register_read(blk, 1).unwrap();
            a.write_invalidate(blk, b"payload", WriteKind::ChangedData).unwrap()
        })
    });
    group.bench_function("castout_cycle", |bch| {
        bch.iter(|| {
            a.write_invalidate(blk, b"dirty", WriteKind::ChangedData).unwrap();
            let (_, v) = a.castout_read(blk).unwrap();
            a.castout_complete(blk, v).unwrap();
        })
    });
    group.finish();
    command_path_report(&cf);
    report_activity(&monitor, std::slice::from_ref(&cf));
}

fn main() {
    xi_fanout_table();
    refresh_ablation();
    let mut c = small_criterion();
    coherency_bench(&mut c);
    c.final_summary();
}
