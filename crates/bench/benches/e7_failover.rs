//! E7 — continuous availability across an unscheduled outage (§2.5).
//!
//! Two views:
//!
//! 1. **Live**: a 3-member data-sharing group runs transfers; one member
//!    is killed mid-stream with work in flight. Measured: throughput per
//!    phase, recovery actions, and the invariant audit.
//! 2. **Timeline (sim)**: a 4-node sysplex at 1-1/N load; node 0 dies at
//!    t=20s. The queueing simulator prints the per-interval throughput —
//!    the dip-and-recover curve the paper's availability story implies.

use std::sync::Arc;
use std::time::Instant;
use sysplex_bench::{banner, row, LiveRig};
use sysplex_core::SystemId;
use sysplex_sim::queueing::{run, Node, QueueSimConfig};

fn live_failover() {
    banner("E7 (live): kill one of three members mid-workload");
    let rig = LiveRig::new(3, 4096);
    let accounts = 60u64;
    rig.dbs[0]
        .run(10, |db, txn| {
            for a in 0..accounts {
                db.write(txn, a, Some(&100i64.to_be_bytes()))?;
            }
            Ok(())
        })
        .unwrap();

    let transfer = |db: &Arc<sysplex_db::Database>, seed: u64| {
        let from = seed % accounts;
        let to = (seed * 7 + 1) % accounts;
        if from == to {
            return;
        }
        let _ = db.run(100, |db, txn| {
            let (lo, hi) = if from < to { (from, to) } else { (to, from) };
            let lo_v = i64::from_be_bytes(db.read(txn, lo)?.unwrap()[..8].try_into().unwrap());
            let hi_v = i64::from_be_bytes(db.read(txn, hi)?.unwrap()[..8].try_into().unwrap());
            let (lo_n, hi_n) = if lo == from { (lo_v - 3, hi_v + 3) } else { (lo_v + 3, hi_v - 3) };
            db.write(txn, lo, Some(&lo_n.to_be_bytes()))?;
            db.write(txn, hi, Some(&hi_n.to_be_bytes()))
        });
    };

    let phase = |dbs: &[Arc<sysplex_db::Database>], n: usize, label: &str| {
        let t0 = Instant::now();
        for i in 0..n {
            transfer(&dbs[i % dbs.len()], i as u64 + 13);
        }
        let tps = n as f64 / t0.elapsed().as_secs_f64();
        row(label, &[format!("{tps:.0} txn/s")]);
        tps
    };

    let all: Vec<_> = rig.dbs.clone();
    let tps_before = phase(&all, 150, "3 members");

    // Kill member 2 with a transaction *in flight* (holding locks).
    let victim = rig.dbs[2].clone();
    let mut stranded = victim.begin();
    victim.write(&mut stranded, 0, Some(&999i64.to_be_bytes())).unwrap();
    rig.plex.kill(SystemId::new(2));
    let failed = rig.group.crash_member(SystemId::new(2)).unwrap();
    let t0 = Instant::now();
    let report = rig.group.recover_on(SystemId::new(0), &failed).unwrap();
    row("peer recovery time", &[format!("{:?}", t0.elapsed())]);
    row(
        "recovery report",
        &[format!(
            "{} backed out, {} undone, {} retained freed",
            report.backed_out_txns, report.undone_updates, report.retained_released
        )],
    );
    assert!(report.retained_released >= 1, "the stranded lock was retained and freed");

    let survivors: Vec<_> = rig.dbs[0..2].to_vec();
    let tps_after = phase(&survivors, 150, "2 survivors");

    // Audit: conserved.
    let total: i64 = rig.dbs[0]
        .run(10, |db, txn| {
            let mut sum = 0;
            for a in 0..accounts {
                sum += i64::from_be_bytes(db.read(txn, a)?.unwrap()[..8].try_into().unwrap());
            }
            Ok(sum)
        })
        .unwrap();
    row("audit", &[format!("{total} (expect {})", accounts as i64 * 100)]);
    assert_eq!(total, accounts as i64 * 100);
    assert!(tps_after > tps_before * 0.2, "service continues at reduced capacity");
    rig.dbs[0].irlm().crash();
    rig.dbs[1].irlm().crash();
}

fn sim_timeline() {
    banner("E7 (sim): throughput timeline, 4 nodes at 75% load, node 0 dies at t=20s");
    let n = 4usize;
    let cap = 1000.0;
    let offered = cap * 3.0; // the 1 - 1/N spare-capacity policy of §2.5
    let fail_step = 200usize;

    // Whole-run outcome (the aggregate claim).
    let outcome = run(
        QueueSimConfig { dt_s: 0.1, steps: 600, seed: 2 },
        (0..n).map(|_| Node::new(cap)).collect(),
        move |step, _q| {
            if step < fail_step {
                vec![offered / n as f64; n]
            } else {
                // WLM redistributes new work to the survivors.
                let mut v = vec![offered / (n - 1) as f64; n];
                v[0] = 0.0;
                v
            }
        },
    );

    // Interval table: each 5 s window simulated in its regime.
    row("interval", &["completed tps", "note"].map(String::from));
    let mut interval_served = [0.0f64; 12];
    for (i, slot) in interval_served.iter_mut().enumerate() {
        let start = i * 50;
        let out = run(
            QueueSimConfig { dt_s: 0.1, steps: 50, seed: 100 + i as u64 },
            (0..n)
                .map(|j| {
                    let mut node = Node::new(cap);
                    node.online = !(j == 0 && start >= fail_step);
                    node
                })
                .collect(),
            move |_s, _q| {
                if start < fail_step {
                    vec![offered / n as f64; n]
                } else {
                    let mut v = vec![offered / (n - 1) as f64; n];
                    v[0] = 0.0;
                    v
                }
            },
        );
        *slot = out.completed / 5.0;
        let note = if start == fail_step { "<- failure" } else { "" };
        row(&format!("t={:>2}..{}s", start / 10, start / 10 + 5), &[format!("{:.0}", *slot), note.into()]);
    }
    assert!(outcome.completion_ratio > 0.98, "no observable loss of service: {outcome:?}");
    let before = interval_served[..4].iter().sum::<f64>() / 4.0;
    let after = interval_served[8..].iter().sum::<f64>() / 4.0;
    assert!((after / before) > 0.95, "throughput recovers to the offered rate: {before} -> {after}");
    println!("\npaper §2.5: workload redistributed across remaining processors — reproduced");
}

fn main() {
    live_failover();
    sim_timeline();
}
