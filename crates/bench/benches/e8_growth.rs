//! E8 — scalability and granular growth (§2.4).
//!
//! Live: systems IPL into a running sysplex one at a time; after each
//! addition a fixed burst of routed transactions measures how quickly new
//! work flows to the newcomer and how aggregate throughput grows — with no
//! repartitioning and no interruption of in-flight work.
//!
//! Model: the capacity the cost accounting predicts per added member.

use std::sync::Arc;
use std::time::{Duration, Instant};
use sysplex_bench::{banner, f, row};
use sysplex_core::SystemId;
use sysplex_db::group::{DataSharingGroup, GroupConfig};
use sysplex_services::sysplex::{Sysplex, SysplexConfig};
use sysplex_services::system::SystemConfig;
use sysplex_services::wlm::ServiceClass;
use sysplex_sim::capacity::sysplex_effective;
use sysplex_sim::datasharing::TxnCostModel;
use sysplex_subsys::routing::TransactionRouter;
use sysplex_subsys::tm::{CicsRegion, TranDef};

fn main() {
    banner("E8 (live): non-disruptive growth, 1 -> 4 systems");
    let plex = Sysplex::new(SysplexConfig::functional("E8PLEX"));
    let cf = plex.add_cf("CF01");
    let mut config = GroupConfig::default();
    config.db.lock_timeout = Duration::from_millis(300);
    let group =
        DataSharingGroup::new(config, &cf, plex.farm.clone(), plex.timer.clone(), plex.xcf.clone()).unwrap();
    plex.wlm.define_class(ServiceClass {
        name: "OLTP".into(),
        goal: Duration::from_millis(100),
        importance: 2,
    });
    let router = TransactionRouter::new(plex.wlm.clone());

    let mut regions: Vec<Arc<CicsRegion>> = Vec::new();
    let mut last_burst_delta: Vec<u64> = Vec::new();
    row("systems", &["burst tps", "newcomer share", "total MIPS"].map(String::from));
    for i in 0..4u8 {
        let id = SystemId::new(i);
        let image = plex.ipl(SystemConfig::cmos(id, 2));
        let db = group.add_member(id).unwrap();
        let region = CicsRegion::new(image, db, plex.wlm.clone());
        region.define(TranDef {
            name: "WORK".into(),
            service_class: "OLTP".into(),
            handler: Arc::new(move |db, txn| {
                // Touch a member-spread key set: genuinely shared data.
                let base = 100 * (txn.id() % 7);
                db.read(txn, base)?;
                db.write(txn, base + 1, Some(b"w"))
            }),
        });
        router.register_region(Arc::clone(&region));
        regions.push(region);
        plex.tick();

        let before = router.distribution();
        let burst = 80;
        let t0 = Instant::now();
        let pending: Vec<_> = (0..burst).map(|_| router.submit("WORK").unwrap()).collect();
        for p in pending {
            p.wait(Duration::from_secs(120)).unwrap();
        }
        let tps = burst as f64 / t0.elapsed().as_secs_f64();
        let after = router.distribution();
        last_burst_delta = after
            .iter()
            .map(|(s, n)| n - before.iter().find(|(bs, _)| bs == s).map(|(_, bn)| *bn).unwrap_or(0))
            .collect();
        let newcomer = after.iter().find(|(s, _)| *s == id).map(|(_, n)| *n).unwrap_or(0)
            - before.iter().find(|(s, _)| *s == id).map(|(_, n)| *n).unwrap_or(0);
        row(
            &format!("{}", i + 1),
            &[
                f(tps),
                format!("{:.0}%", newcomer as f64 / burst as f64 * 100.0),
                format!("{:.0}", plex.total_capacity_mips()),
            ],
        );
        if i > 0 {
            assert!(newcomer > 0, "newcomer receives work immediately");
        }
    }
    // Even split at steady state: the final burst spreads evenly over all
    // four systems (cumulative counts are naturally skewed toward the
    // earliest members).
    let min = last_burst_delta.iter().copied().min().unwrap();
    let max = last_burst_delta.iter().copied().max().unwrap();
    assert!(max - min <= 2, "final burst is evenly spread: {last_burst_delta:?}");
    for r in &regions {
        r.system().quiesce();
    }

    banner("E8 (model): predicted effective capacity per member count");
    let model = TxnCostModel::default();
    row("members", &["eff capacity", "of linear"].map(String::from));
    for m in [1usize, 2, 4, 8, 16, 32] {
        let cap = sysplex_effective(m, 10, &model);
        row(&format!("{m}"), &[f(cap), format!("{:.0}%", cap / (m as f64 * 8.2) * 100.0)]);
    }

    routing_policy_ablation();
    println!("\npaper §2.4: 'new systems can be introduced ... in a non-disruptive manner' — reproduced");
}

/// Ablation (DESIGN.md §5.4): WLM capacity-weighted routing vs naive
/// round-robin vs static affinity, on a heterogeneous 3-node sysplex.
/// Round-robin overloads the small node; affinity is just partitioning's
/// problem in miniature; WLM weighting sustains the load.
fn routing_policy_ablation() {
    use sysplex_sim::queueing::{run, Node, QueueSimConfig};
    banner("E8b (ablation): routing policy on heterogeneous capacity (600/300/100 tps)");
    let caps = [600.0, 300.0, 100.0];
    let offered = 0.85 * caps.iter().sum::<f64>();
    let cfg = QueueSimConfig { dt_s: 0.1, steps: 600, seed: 11 };
    row("policy", &["completion", "avg delay ms", "peak queue"].map(String::from));
    type Policy = Box<dyn FnMut(usize, &[f64]) -> Vec<f64>>;
    let policies: Vec<(&str, Policy)> = vec![
        (
            "wlm capacity-weighted",
            Box::new(move |_s, _q| caps.iter().map(|c| offered * c / 1000.0).collect()),
        ),
        ("round-robin (equal)", Box::new(move |_s, _q| vec![offered / 3.0; 3])),
        (
            "static affinity (skewed demand)",
            // Demand follows data placement: 50/30/20 over nodes sized
            // 60/30/10 — the small node owns more than its share.
            Box::new(move |_s, _q| vec![offered * 0.5, offered * 0.3, offered * 0.2]),
        ),
    ];
    let mut results = Vec::new();
    for (name, mut policy) in policies {
        let out = run(cfg, caps.iter().map(|&c| Node::new(c)).collect(), move |s, q| policy(s, q));
        row(
            name,
            &[
                format!("{:.3}", out.completion_ratio),
                format!("{:.1}", out.avg_delay_s * 1000.0),
                format!("{:.0}", out.peak_queue),
            ],
        );
        results.push(out);
    }
    assert!(results[0].completion_ratio > 0.99, "WLM weighting sustains the load");
    assert!(
        results[1].completion_ratio < results[0].completion_ratio - 0.05,
        "round-robin drowns the small node"
    );
    assert!(
        results[2].avg_delay_s > results[0].avg_delay_s * 5.0,
        "affinity routing queues on the overloaded owner"
    );
}
