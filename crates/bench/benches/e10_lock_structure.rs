//! E10 — lock structure: false contention vs table size (§3.3.1).
//!
//! "Through use of efficient hashing algorithms and granular serialization
//! scope, false lock resource contention is kept to a minimum." Two
//! members lock disjoint resource sets — every CF contention between them
//! is false by construction — across a sweep of lock-table sizes. The
//! false-contention rate must fall roughly as 1/table-size, and the
//! sync-grant rate must be "the majority" at production sizes. Criterion
//! times the raw lock commands.

use criterion::Criterion;
use sysplex_bench::{banner, command_path_report, report_activity, row, small_criterion, watch};
use sysplex_core::facility::{CfConfig, CouplingFacility};
use sysplex_core::lock::{LockMode, LockParams};
use sysplex_core::SystemId;
use sysplex_db::irlm::Irlm;
use sysplex_services::timer::SysplexTimer;
use sysplex_services::xcf::Xcf;

fn false_contention_sweep() {
    banner("E10: false contention vs lock-table size (2 members, disjoint resources)");
    row("table entries", &["requests", "contention %", "false %", "sync grant %"].map(String::from));
    for entries in [64usize, 256, 1024, 4096, 16384] {
        let xcf = Xcf::new(SysplexTimer::new());
        let cf = CouplingFacility::new(CfConfig::named("CF01"));
        let structure = cf.allocate_lock_structure("SWEEP", LockParams::with_entries(entries)).unwrap();
        let a = Irlm::start(SystemId::new(0), cf.connect_lock("SWEEP").unwrap(), &xcf).unwrap();
        let b = Irlm::start(SystemId::new(1), cf.connect_lock("SWEEP").unwrap(), &xcf).unwrap();
        // Interleave: a locks evens, b locks odds — all cross-system
        // contention is false (different resources, shared hash classes).
        let resources = 600u64;
        for i in 0..resources {
            let txn = i + 1;
            let name = format!("ROW.{:08}", i * 2);
            a.lock(txn, name.as_bytes(), LockMode::Exclusive, false).unwrap();
            let name = format!("ROW.{:08}", i * 2 + 1);
            b.lock(txn, name.as_bytes(), LockMode::Exclusive, false).unwrap();
        }
        let req = structure.stats.requests.get();
        let cont = structure.stats.contentions.get();
        let false_n = a.stats.false_contentions.get() + b.stats.false_contentions.get();
        let sync = structure.stats.sync_grants.get();
        row(
            &format!("{entries}"),
            &[
                format!("{req}"),
                format!("{:.2}%", cont as f64 / req as f64 * 100.0),
                format!("{:.2}%", false_n as f64 / req as f64 * 100.0),
                format!("{:.1}%", sync as f64 / req as f64 * 100.0),
            ],
        );
        if entries >= 4096 {
            assert!((cont as f64 / req as f64) < 0.25, "production-size tables keep contention low");
        }
        a.shutdown();
        b.shutdown();
        if entries == 16384 {
            command_path_report(&cf);
        }
    }
    println!("\npaper §3.3.1: hashing keeps false contention to a minimum — rate falls with table size");
}

fn real_vs_false_classification() {
    banner("E10b: real conflicts are still always detected");
    let xcf = Xcf::new(SysplexTimer::new());
    // One entry: everything collides at the CF level.
    let cf = CouplingFacility::new(CfConfig::named("CF01"));
    cf.allocate_lock_structure("TINY", LockParams::with_entries(1)).unwrap();
    let a = Irlm::start(SystemId::new(0), cf.connect_lock("TINY").unwrap(), &xcf).unwrap();
    let b = Irlm::start(SystemId::new(1), cf.connect_lock("TINY").unwrap(), &xcf).unwrap();
    a.lock(1, b"ROW.A", LockMode::Exclusive, false).unwrap();
    // False: different resource.
    assert!(matches!(
        b.lock(2, b"ROW.B", LockMode::Exclusive, false).unwrap(),
        sysplex_db::irlm::LockOutcome::Granted
    ));
    // Real: same resource.
    assert!(matches!(
        b.lock(2, b"ROW.A", LockMode::Exclusive, false).unwrap(),
        sysplex_db::irlm::LockOutcome::Busy
    ));
    row("false contention resolved", &[format!("{}", b.stats.false_contentions.get())]);
    row("real conflicts detected", &[format!("{}", b.stats.real_conflicts.get())]);
    assert_eq!(b.stats.real_conflicts.get(), 1);
    a.shutdown();
    b.shutdown();
}

fn lock_command_bench(c: &mut Criterion) {
    let cf = CouplingFacility::new(CfConfig::named("CF01"));
    let monitor = watch("E10 lock commands", std::slice::from_ref(&cf));
    cf.allocate_lock_structure("BENCH", LockParams::with_entries(65536)).unwrap();
    let conn = cf.connect_lock("BENCH").unwrap();
    let mut group = c.benchmark_group("e10_lock_commands");
    let mut i = 0usize;
    group.bench_function("request_release_exclusive", |b| {
        b.iter(|| {
            i = (i + 1) % 65536;
            conn.request_lock(i, LockMode::Exclusive).unwrap();
            conn.release_lock(i).unwrap();
        })
    });
    group.bench_function("hash_resource", |b| {
        b.iter(|| std::hint::black_box(conn.hash_resource(b"DB2.TS000123.ROW00456789")))
    });
    group.bench_function("write_delete_record", |b| {
        b.iter(|| {
            conn.write_lock_record(b"ROW.X", LockMode::Exclusive, b"TXN").unwrap();
            conn.delete_lock_record(b"ROW.X").unwrap();
        })
    });
    group.finish();
    command_path_report(&cf);
    report_activity(&monitor, std::slice::from_ref(&cf));
}

fn main() {
    false_contention_sweep();
    real_vs_false_classification();
    let mut c = small_criterion();
    lock_command_bench(&mut c);
    c.final_summary();
}
