//! Figure 4 / §5.3 — VTAM generic resources: single image to the network.
//!
//! 6,000 logons to the generic name "CICS" over systems of unequal
//! capacity. Measured: the session distribution tracks WLM's capacity
//! weights; a system failure removes its instances and re-logons rebind
//! to survivors; plus the logon path latency under criterion.

use criterion::Criterion;
use std::sync::Arc;
use sysplex_bench::{banner, row, small_criterion};
use sysplex_core::facility::{CfConfig, CouplingFacility};
use sysplex_core::SystemId;
use sysplex_services::wlm::Wlm;
use sysplex_subsys::vtam::{generic_resource_params, GenericResources};

fn distribution_experiment() {
    banner("Fig 4 / E9: generic-resource logon distribution (6000 logons)");
    let cf = CouplingFacility::new(CfConfig::named("CF01"));
    let list = cf.allocate_list_structure("ISTGENERIC", generic_resource_params()).unwrap();
    let wlm = Arc::new(Wlm::new());
    // Heterogeneous configuration: the paper allows mixed CMOS/bipolar.
    let capacities = [600.0, 300.0, 100.0];
    for (i, c) in capacities.iter().enumerate() {
        wlm.set_capacity(SystemId::new(i as u8), *c);
    }
    let gr = GenericResources::open(&list, cf.subchannel(), Arc::clone(&wlm)).unwrap();
    for i in 0..3u8 {
        gr.register_instance("CICS", &format!("CICS0{i}"), SystemId::new(i)).unwrap();
    }
    let logons = 6_000;
    for _ in 0..logons {
        gr.logon("CICS").unwrap();
    }
    let total_cap: f64 = capacities.iter().sum();
    row("instance", &["sessions", "share", "capacity share"].map(String::from));
    let instances = gr.instances("CICS").unwrap();
    for (inst, cap) in instances.iter().zip(capacities.iter()) {
        let share = inst.sessions as f64 / logons as f64;
        let cap_share = cap / total_cap;
        row(
            &inst.instance,
            &[
                format!("{}", inst.sessions),
                format!("{:.1}%", share * 100.0),
                format!("{:.1}%", cap_share * 100.0),
            ],
        );
        assert!(
            (share - cap_share).abs() < 0.02,
            "session share tracks capacity share: {share:.3} vs {cap_share:.3}"
        );
    }

    // Failure: SYS00's instance vanishes; re-logons rebind transparently.
    banner("failure: SYS00 lost; 1000 re-logons");
    gr.fail_system(SystemId::new(0)).unwrap();
    wlm.set_online(SystemId::new(0), false);
    for _ in 0..1000 {
        let bind = gr.logon("CICS").unwrap();
        assert_ne!(bind.system, SystemId::new(0));
    }
    let instances = gr.instances("CICS").unwrap();
    row("surviving instances", &[format!("{}", instances.len())]);
    assert_eq!(instances.len(), 2);
    println!("\npaper §5.3: users 'simply logon to CICS' with no system awareness — reproduced");
}

fn logon_bench(c: &mut Criterion) {
    let cf = CouplingFacility::new(CfConfig::named("CF01"));
    let list = cf.allocate_list_structure("ISTGENERIC", generic_resource_params()).unwrap();
    let wlm = Arc::new(Wlm::new());
    for i in 0..4u8 {
        wlm.set_capacity(SystemId::new(i), 100.0);
    }
    let gr = GenericResources::open(&list, cf.subchannel(), wlm).unwrap();
    for i in 0..4u8 {
        gr.register_instance("TSO", &format!("TSO0{i}"), SystemId::new(i)).unwrap();
    }
    let mut group = c.benchmark_group("fig4_generic_resources");
    group.bench_function("logon", |b| b.iter(|| gr.logon("TSO").unwrap()));
    group.bench_function("logon_logoff_cycle", |b| {
        b.iter(|| {
            let bind = gr.logon("TSO").unwrap();
            gr.logoff(&bind).unwrap();
        })
    });
    group.finish();
}

fn main() {
    distribution_experiment();
    let mut c = small_criterion();
    logon_bench(&mut c);
    c.final_summary();
}
