//! E2 — "an incremental overhead cost of less than half a percent for
//! each system added to the configuration" (§4).
//!
//! Two measurements:
//!
//! 1. **Model**: the cost-accounting simulator's incremental overhead per
//!    added member, 2→32.
//! 2. **Live**: the real stack's CF operations per transaction as members
//!    are added — counted from structure statistics, so the growth rate is
//!    deterministic. The per-member increment in CF ops/txn, costed at the
//!    calibrated per-op CPU, yields the live incremental overhead.

use sysplex_bench::{banner, f, row, LiveRig};
use sysplex_sim::constants::{CF_OP_CPU_US, TXN_BASE_CPU_US};
use sysplex_sim::datasharing::TxnCostModel;
use sysplex_workload::oltp::{OltpConfig, OltpGenerator};

fn live_cf_ops_per_txn(members: u8) -> f64 {
    let rig = LiveRig::new(members, 4096);
    let mut gen = OltpGenerator::new(
        OltpConfig { keys: 2_000, reads_per_txn: 3, writes_per_txn: 2, skew: 0.3, value_len: 16 },
        42,
    );
    let txns = 240usize;
    for (i, spec) in gen.batch(txns).into_iter().enumerate() {
        let db = &rig.dbs[i % rig.dbs.len()];
        db.run(50, |db, txn| {
            for k in &spec.reads {
                db.read(txn, *k)?;
            }
            for (k, v) in &spec.writes {
                db.write(txn, *k, Some(v))?;
            }
            Ok(())
        })
        .expect("txn");
    }
    let lock_structure = rig.group.lock_structure();
    let cache_structure = rig.group.cache_structure();
    let lock_ops = lock_structure.stats.requests.get()
        + lock_structure.stats.releases.get()
        + lock_structure.stats.records_written.get();
    let cache_ops = cache_structure.stats.reads.get() + cache_structure.stats.writes.get();
    let xcf_msgs = rig.plex.xcf.signals_sent.load(std::sync::atomic::Ordering::Relaxed);
    rig.shutdown();
    (lock_ops + cache_ops + xcf_msgs) as f64 / txns as f64
}

fn main() {
    let model = TxnCostModel::default();

    banner("E2 (model): incremental overhead per added system");
    row("members", &["cpu us/txn", "incremental %"].map(String::from));
    for members in [2usize, 4, 8, 16, 24, 31] {
        let inc = model.incremental_overhead(members);
        row(
            &format!("{members} -> {}", members + 1),
            &[f(model.cpu_per_txn_us(members, true)), format!("{:.3}%", inc * 100.0)],
        );
        assert!(inc < 0.005, "paper: < 0.5% per added system");
    }

    banner("E2 (live): CF operations per transaction vs members");
    row("members", &["cf ops/txn", "delta ops", "overhead %"].map(String::from));
    let mut prev: Option<f64> = None;
    for members in [1u8, 2, 3, 4] {
        let ops = live_cf_ops_per_txn(members);
        let delta = prev.map(|p| ops - p).unwrap_or(0.0);
        let overhead = delta * CF_OP_CPU_US / (TXN_BASE_CPU_US + ops * CF_OP_CPU_US);
        row(
            &format!("{members}"),
            &[
                f(ops),
                f(delta),
                if prev.is_some() { format!("{:.3}%", overhead * 100.0) } else { "-".into() },
            ],
        );
        if let Some(p) = prev {
            if members > 2 {
                assert!(
                    (ops - p) * CF_OP_CPU_US / TXN_BASE_CPU_US < 0.02,
                    "live per-member growth stays small: {p} -> {ops} ops"
                );
            }
        }
        prev = Some(ops);
    }
    println!(
        "\npaper §4: incremental overhead < 0.5% per system — model reproduces; live ops growth is flat"
    );
}
