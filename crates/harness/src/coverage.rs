//! Campaign coverage signal: what a run actually exercised.
//!
//! Blind seed sampling plateaus because most seeds replay the same few
//! interleavings; to steer mutation toward *unseen* schedules the engine
//! needs a cheap, deterministic fingerprint of each campaign. A
//! [`CoverageMap`] is that fingerprint: a fixed-size bitmap fed from three
//! sources, all derived from artifacts the campaign already produces.
//!
//! 1. **Trace n-grams** — sliding windows (n = 2 and 3) of
//!    `(system, TraceKind::id)` tokens over the causally-merged trace,
//!    hashed into the bitmap. Two campaigns that drive the same commands
//!    in a different cross-system order set different bits, which is
//!    exactly the adversarial-schedule distinction the fuzzing loop needs.
//! 2. **Oracle branches** — one reserved bit per [`Violation`] arm, so a
//!    campaign that trips (or nearly maps the state space around) a
//!    specific invariant is distinguishable from one that never got close.
//! 3. **Recovery-path branches** — bits for the fence / peer-recovery /
//!    rebuild / failover / CDS hot-switch choreographies actually reached,
//!    taken from [`CampaignStats`], plus a hashed `log2(count)` intensity
//!    bucket per path so "fenced once" and "fenced eight times" are
//!    different coverage.
//!
//! The map is deterministic: the same `CampaignOutcome` always produces
//! the same bits (pinned by the root `campaigns.rs` tests), so coverage
//! can be computed in a worker process and shipped to the sweep parent as
//! a sparse index list ([`CoverageMap::to_wire`]).

use crate::campaign::{CampaignOutcome, CampaignStats};
use crate::oracle::Violation;
use sysplex_core::trace::TraceRecord;

/// Total bitmap size in bits (8 KiB of backing store).
pub const COVERAGE_BITS: usize = 1 << 16;
/// Bits `0..BRANCH_RESERVED` are assigned meanings (violation arms,
/// recovery branches); n-gram hashes land in the region above.
pub const BRANCH_RESERVED: usize = 64;

const WORDS: usize = COVERAGE_BITS / 64;

/// Stable bit indices for the reserved (non-hashed) branch region.
pub mod branch {
    /// [`super::Violation::LockExclusivity`] observed.
    pub const LOCK_EXCLUSIVITY: usize = 0;
    /// [`super::Violation::StaleRead`] observed.
    pub const STALE_READ: usize = 1;
    /// [`super::Violation::DuplicateClaim`] observed.
    pub const DUPLICATE_CLAIM: usize = 2;
    /// [`super::Violation::UnclaimedEntry`] observed.
    pub const UNCLAIMED_ENTRY: usize = 3;
    /// [`super::Violation::RingAccounting`] observed.
    pub const RING_ACCOUNTING: usize = 4;
    /// [`super::Violation::OrphanLockRecord`] observed.
    pub const ORPHAN_LOCK_RECORD: usize = 5;
    /// At least one system was fenced.
    pub const FENCED: usize = 8;
    /// At least one peer recovery completed.
    pub const RECOVERED: usize = 9;
    /// At least one structure rebuild into a fresh CF.
    pub const REBUILT: usize = 10;
    /// At least one duplex failover.
    pub const FAILED_OVER: usize = 11;
    /// At least one couple-data-set hot switch.
    pub const CDS_SWITCHED: usize = 12;
    /// At least one transaction aborted.
    pub const ABORTED: usize = 13;
    /// At least one scheduled fault actually applied.
    pub const FAULT_APPLIED: usize = 14;
    /// At least one work item claimed.
    pub const CLAIMED: usize = 15;
}

/// The reserved branch bit for a violation arm. Stable: coverage maps are
/// compared across processes and sweep generations.
pub fn violation_bit(v: &Violation) -> usize {
    match v {
        Violation::LockExclusivity { .. } => branch::LOCK_EXCLUSIVITY,
        Violation::StaleRead { .. } => branch::STALE_READ,
        Violation::DuplicateClaim { .. } => branch::DUPLICATE_CLAIM,
        Violation::UnclaimedEntry { .. } => branch::UNCLAIMED_ENTRY,
        Violation::RingAccounting { .. } => branch::RING_ACCOUNTING,
        Violation::OrphanLockRecord { .. } => branch::ORPHAN_LOCK_RECORD,
    }
}

/// Fixed-size coverage bitmap. Cheap to merge, count, and diff; encodes
/// sparsely for the worker → parent pipe.
#[derive(Clone, PartialEq, Eq)]
pub struct CoverageMap {
    words: Box<[u64; WORDS]>,
}

impl Default for CoverageMap {
    fn default() -> Self {
        CoverageMap::new()
    }
}

impl std::fmt::Debug for CoverageMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CoverageMap({} bits set, digest {:#x})", self.count(), self.digest())
    }
}

impl CoverageMap {
    /// The empty map.
    pub fn new() -> CoverageMap {
        CoverageMap { words: Box::new([0u64; WORDS]) }
    }

    /// The full coverage fingerprint of a campaign run.
    pub fn of(outcome: &CampaignOutcome) -> CoverageMap {
        let mut map = CoverageMap::new();
        map.add_trace(&outcome.records);
        map.add_violations(&outcome.violations);
        map.add_stats(&outcome.stats);
        map
    }

    /// Set bit `index` (modulo the map size).
    pub fn set(&mut self, index: usize) {
        let index = index % COVERAGE_BITS;
        self.words[index / 64] |= 1u64 << (index % 64);
    }

    /// Whether bit `index` is set.
    pub fn get(&self, index: usize) -> bool {
        let index = index % COVERAGE_BITS;
        self.words[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// OR `other` into `self`; returns how many bits were newly set.
    pub fn merge(&mut self, other: &CoverageMap) -> usize {
        let mut novel = 0;
        for (mine, theirs) in self.words.iter_mut().zip(other.words.iter()) {
            novel += (*theirs & !*mine).count_ones() as usize;
            *mine |= *theirs;
        }
        novel
    }

    /// How many of `other`'s bits are not yet in `self` (what a merge
    /// would add), without mutating.
    pub fn novel_bits(&self, other: &CoverageMap) -> usize {
        self.words.iter().zip(other.words.iter()).map(|(m, t)| (*t & !*m).count_ones() as usize).sum()
    }

    /// FNV-1a digest of the raw bitmap, for bit-for-bit comparisons.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in self.words.iter() {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }

    /// Hash sliding `(system, kind-id)` n-grams (n = 2 and 3) of a
    /// merged trace into the map.
    pub fn add_trace(&mut self, records: &[TraceRecord]) {
        // One token per record: system in the high byte, stable kind id in
        // the low byte. The merged trace is already in causal (seq) order.
        let tokens: Vec<u16> =
            records.iter().map(|r| (r.system as u16) << 8 | r.event.kind().id() as u16).collect();
        for n in [2usize, 3] {
            for window in tokens.windows(n) {
                self.set(ngram_bit(window));
            }
        }
    }

    /// Set the reserved branch bit of every violation arm present.
    pub fn add_violations(&mut self, violations: &[Violation]) {
        for v in violations {
            self.set(violation_bit(v));
        }
    }

    /// Set the reserved recovery-path branch bits the stats prove were
    /// reached, plus one hashed intensity bit per stat: the saturating
    /// `floor(log2(count))` bucket. Reaching a path once and hammering it
    /// eight times are different coverage — that count gradient is what
    /// mutation climbs by stacking faults, and what blind seed sampling
    /// (whose plans stay shallow) almost never reaches.
    pub fn add_stats(&mut self, stats: &CampaignStats) {
        for (stat, (count, bit)) in [
            (stats.fences, branch::FENCED),
            (stats.recoveries, branch::RECOVERED),
            (stats.rebuilds, branch::REBUILT),
            (stats.failovers, branch::FAILED_OVER),
            (stats.cds_switches, branch::CDS_SWITCHED),
            (stats.aborts, branch::ABORTED),
            (stats.faults_applied, branch::FAULT_APPLIED),
            (stats.claims, branch::CLAIMED),
        ]
        .into_iter()
        .enumerate()
        {
            if count > 0 {
                self.set(bit);
                let bucket = (63 - count.leading_zeros() as usize).min(6);
                self.set(stat_bucket_bit(stat, bucket));
            }
        }
    }

    /// Ascending indices of every set bit.
    pub fn set_indices(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for (wi, w) in self.words.iter().enumerate() {
            let mut w = *w;
            while w != 0 {
                let b = w.trailing_zeros();
                out.push((wi * 64) as u32 + b);
                w &= w - 1;
            }
        }
        out
    }

    /// Sparse wire encoding: comma-separated hex indices (empty string for
    /// the empty map). A campaign sets a few thousand bits at most, so
    /// this stays far smaller than 16 KiB of dense hex.
    pub fn to_wire(&self) -> String {
        let indices = self.set_indices();
        let mut out = String::with_capacity(indices.len() * 5);
        for (i, idx) in indices.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{idx:x}"));
        }
        out
    }

    /// Decode [`CoverageMap::to_wire`] output.
    pub fn from_wire(s: &str) -> Result<CoverageMap, String> {
        let mut map = CoverageMap::new();
        let s = s.trim();
        if s.is_empty() {
            return Ok(map);
        }
        for part in s.split(',') {
            let idx =
                u32::from_str_radix(part, 16).map_err(|e| format!("bad coverage index {part:?}: {e}"))?;
            if idx as usize >= COVERAGE_BITS {
                return Err(format!("coverage index {idx} out of range"));
            }
            map.set(idx as usize);
        }
        Ok(map)
    }
}

/// Map an n-gram token window into the hashed (non-reserved) bit region.
fn ngram_bit(window: &[u16]) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ window.len() as u64;
    for &t in window {
        h ^= t as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    BRANCH_RESERVED + (h as usize % (COVERAGE_BITS - BRANCH_RESERVED))
}

/// Map a per-stat intensity bucket into the hashed region, in a domain
/// disjoint from the n-gram hashes (distinct seed constant).
fn stat_bucket_bit(stat: usize, bucket: usize) -> usize {
    let mut h: u64 = 0x57A7_B0C4_E700_0000 ^ (stat as u64) << 8 ^ bucket as u64;
    h = h.wrapping_mul(0x0000_0100_0000_01B3);
    h ^= h >> 29;
    BRANCH_RESERVED + (h as usize % (COVERAGE_BITS - BRANCH_RESERVED))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysplex_core::trace::TraceEvent;

    fn rec(seq: u64, system: u8, event: TraceEvent) -> TraceRecord {
        TraceRecord { seq, tod_us: seq, system, structure: 1, event }
    }

    #[test]
    fn merge_count_and_novel_agree() {
        let mut a = CoverageMap::new();
        a.set(3);
        a.set(100);
        let mut b = CoverageMap::new();
        b.set(100);
        b.set(5000);
        assert_eq!(a.count(), 2);
        assert_eq!(a.novel_bits(&b), 1);
        let novel = a.merge(&b);
        assert_eq!(novel, 1);
        assert_eq!(a.count(), 3);
        assert_eq!(a.novel_bits(&b), 0, "post-merge nothing is novel");
    }

    #[test]
    fn ngram_order_matters() {
        let fwd = vec![
            rec(1, 0, TraceEvent::ListEnqueue { header: 0, entry: 1 }),
            rec(2, 1, TraceEvent::ListClaim { header: 0, entry: 1 }),
            rec(3, 0, TraceEvent::BufCastout { page: 9 }),
        ];
        let rev = vec![
            rec(1, 0, TraceEvent::BufCastout { page: 9 }),
            rec(2, 1, TraceEvent::ListClaim { header: 0, entry: 1 }),
            rec(3, 0, TraceEvent::ListEnqueue { header: 0, entry: 1 }),
        ];
        let mut a = CoverageMap::new();
        a.add_trace(&fwd);
        let mut b = CoverageMap::new();
        b.add_trace(&rev);
        assert_ne!(a.digest(), b.digest(), "interleaving order must change the fingerprint");
    }

    #[test]
    fn payloads_do_not_perturb_ngrams() {
        // Coverage is about *which kinds in which order*, not payload
        // values: same-kind traces with different entries map identically,
        // which is what keeps the bitmap from saturating on noise.
        let a_recs = vec![
            rec(1, 0, TraceEvent::ListEnqueue { header: 0, entry: 1 }),
            rec(2, 1, TraceEvent::ListClaim { header: 0, entry: 1 }),
        ];
        let b_recs = vec![
            rec(1, 0, TraceEvent::ListEnqueue { header: 3, entry: 77 }),
            rec(2, 1, TraceEvent::ListClaim { header: 3, entry: 77 }),
        ];
        let mut a = CoverageMap::new();
        a.add_trace(&a_recs);
        let mut b = CoverageMap::new();
        b.add_trace(&b_recs);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn violation_arms_get_distinct_reserved_bits() {
        let vs = [
            Violation::LockExclusivity { structure: 1, entry: 2, holder: 0, granted: 1, seq: 3 },
            Violation::StaleRead { system: 1, block: 2, seq: 3 },
            Violation::DuplicateClaim { entry: 1, first_seq: 2, second_seq: 3 },
            Violation::UnclaimedEntry { entry: 1, enqueue_seq: 2 },
            Violation::RingAccounting { system: 1, retained: 2, snapshot_len: 3 },
            Violation::OrphanLockRecord { resource: vec![1], conn: 2 },
        ];
        let bits: Vec<usize> = vs.iter().map(violation_bit).collect();
        let mut sorted = bits.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), vs.len(), "every arm has its own bit");
        assert!(bits.iter().all(|&b| b < BRANCH_RESERVED), "arm bits live in the reserved region");
    }

    #[test]
    fn stat_intensity_buckets_distinguish_counts() {
        use crate::campaign::CampaignStats;
        let of = |fences: u64| {
            let mut m = CoverageMap::new();
            m.add_stats(&CampaignStats { fences, ..CampaignStats::default() });
            m
        };
        assert_eq!(of(1).digest(), of(1).digest());
        assert_ne!(of(1).digest(), of(8).digest(), "log2 buckets separate 1 from 8");
        assert_eq!(of(8).digest(), of(15).digest(), "same bucket, same bits");
        for fences in [1u64, 8] {
            assert!(of(fences).get(branch::FENCED), "threshold bit always set");
        }
    }

    #[test]
    fn wire_round_trips_sparse_maps() {
        let mut a = CoverageMap::new();
        for idx in [0usize, 63, 64, 4095, COVERAGE_BITS - 1] {
            a.set(idx);
        }
        let decoded = CoverageMap::from_wire(&a.to_wire()).unwrap();
        assert_eq!(decoded, a);
        assert_eq!(CoverageMap::from_wire("").unwrap(), CoverageMap::new());
        assert!(CoverageMap::from_wire("zzz").is_err());
        assert!(CoverageMap::from_wire("10000").is_err(), "index past the map rejected");
    }
}
