//! Seeded PRNG for the deterministic scheduler.
//!
//! SplitMix64 (Steele/Lea/Flood, "Fast splittable pseudorandom number
//! generators"): a tiny, statistically solid stream generator whose whole
//! state is one `u64` — exactly the property the harness needs, because a
//! campaign's entire schedule must be recoverable from a single printed
//! seed. No external crate involved; the environment is offline.

/// SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`). Modulo bias is irrelevant here:
    /// the harness needs reproducibility, not statistical perfection.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Split off an independent stream (e.g. one per campaign phase) so
    /// adding draws to one phase does not perturb another.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(0xDEADBEEF);
        let mut b = SplitMix64::new(0xDEADBEEF);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_answer_vector() {
        // Reference values for seed 1234567 from the published SplitMix64.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        assert_eq!(r.next_u64(), 9817491932198370423);
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut a = SplitMix64::new(42);
        let mut f1 = a.fork();
        let first = f1.next_u64();
        // Extra draws on the fork do not move the parent.
        let mut b = SplitMix64::new(42);
        let mut f2 = b.fork();
        for _ in 0..10 {
            a.next_u64();
        }
        assert_eq!(f2.next_u64(), first);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }
}
