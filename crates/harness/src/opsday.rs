//! Composed operations-day campaigns over real TCP.
//!
//! Where [`crate::campaign`] drives a virtual-clock sysplex from a
//! single thread, these campaigns run the **wire stack for real**:
//! member threads connect to a live [`SysplexServer`] over loopback TCP
//! (optionally through a per-member [`ChaosProxy`]) and drive
//! debit-credit traffic — lock, cache write, history enqueue, release —
//! while the coordinator composes operational misfortune on top:
//!
//! * [`rolling_restart`] — each member in turn departs cleanly and
//!   re-IPLs while the others keep committing. Capacity (systems with an
//!   `Active` heartbeat) must never drop below N−1.
//! * [`partition_heal`] — one member's link is partitioned until SFM
//!   fences it; the heal re-admits a fresh incarnation while the other
//!   members ride out seeded wire noise. Measures time-to-fence and
//!   time-to-readmit.
//! * [`restart_storm`] — two members crash at once (no goodbye, no
//!   detach); after SFM fences both, an ARM-style signal restarts them
//!   together and each recovers its own failed-persistent lock slot.
//!
//! Every scenario is named and seeded: the chaos plans, retry jitter,
//! and transaction streams all derive from one `u64`, and the plans are
//! recorded as copy-pasteable builder chains in the outcome. Retried
//! commands are at-least-once, so transaction keys are unique
//! (`system << 32 | seq`) and the verdict reconciles by key: an acked
//! transaction missing from the history structure is **lost** (must be
//! zero), an extra history entry for a key is a **duplicate** (allowed,
//! counted). The merged component trace must pass the oracle's
//! lock-exclusivity and accounting invariants, and the lock structure
//! must hold no orphan records once every incarnation's recovery has
//! run.

use crate::chaos::{ChaosPlan, ChaosProxy};
use crate::oracle::{self, OracleConfig};
use crate::rng::SplitMix64;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};
use sysplex_core::cache::{BlockName, CacheParams, WriteKind};
use sysplex_core::facility::CouplingFacility;
use sysplex_core::list::{ListParams, LockCondition, WritePosition};
use sysplex_core::lock::{DisconnectMode, LockMode, LockParams, LockStructure};
use sysplex_core::transport::{
    InProcessTransport, RemoteCacheConnection, RemoteListConnection, RemoteLockConnection,
};
use sysplex_core::{ConnId, RetryPolicy, SystemId};
use sysplex_services::heartbeat::HealthState;
use sysplex_services::monitor::Monitor;
use sysplex_services::sysplex::{Sysplex, SysplexConfig};
use sysplex_services::transport::{PulseHandle, RemoteSysplex, RemoteXcfMember, SysplexServer};

const GROUP: &str = "OPSDAY";
const LOCK_STRUCTURE: &str = "OPS_LOCK";
const CACHE_STRUCTURE: &str = "OPS_GBP";
const LIST_STRUCTURE: &str = "OPS_HIST";
const LIST_HEADERS: usize = 16;
/// Few branches on purpose: members must genuinely collide on the
/// branch lock for the exclusivity invariant to be load-bearing.
const BRANCHES: u64 = 4;
/// Wall-clock ceiling per member thread — generous for oversubscribed CI.
const MEMBER_DEADLINE: Duration = Duration::from_secs(120);
/// Ceiling on any single coordinator wait (fence, readmit, restart).
const WAIT_CEILING: Duration = Duration::from_secs(30);
/// Per-system trace-ring capacity. Drops past this are accounted, and
/// every oracle check stays lenient under them (rings retain newest).
const RING_CAPACITY: usize = 8192;

/// Knobs shared by all scenarios.
#[derive(Debug, Clone, Copy)]
pub struct OpsDayConfig {
    /// Root seed: chaos plans, retry jitter, and transaction streams all
    /// derive from it.
    pub seed: u64,
    /// Member count (the scenarios assume at least 3).
    pub members: u8,
    /// Committed-transaction quota each member must reach before the
    /// scenario is allowed to wrap up (members keep committing past it
    /// until the coordinator stops them).
    pub txns_per_member: u64,
}

impl Default for OpsDayConfig {
    fn default() -> Self {
        OpsDayConfig { seed: 0xDEC1DED, members: 3, txns_per_member: 40 }
    }
}

impl OpsDayConfig {
    /// The default shape with a specific seed.
    pub fn seeded(seed: u64) -> Self {
        OpsDayConfig { seed, ..OpsDayConfig::default() }
    }
}

/// The verdict and recovery metrics of one composed scenario.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario name (`rolling_restart`, `partition_heal`, `restart_storm`).
    pub name: String,
    /// The root seed the run derived everything from.
    pub seed: u64,
    /// Member count.
    pub members: u8,
    /// Unique transaction keys present in the history structure.
    pub committed: u64,
    /// Transactions the members saw commit acknowledgements for.
    pub acked: u64,
    /// Acked transactions missing from history — must be zero.
    pub lost: u64,
    /// Extra history entries for already-present keys (at-least-once
    /// retries after a lost response; reconciled away, never lost work).
    pub duplicates: u64,
    /// Re-admissions (clean restarts, crash re-IPLs, blip recoveries)
    /// across all members.
    pub reipls: u64,
    /// Partition/kill → SFM `Failed` state, in µs (0 when the scenario
    /// fences nobody).
    pub time_to_fence_us: u64,
    /// Heal/ARM/restart signal → heartbeat `Active` again, in µs.
    pub time_to_readmit_us: u64,
    /// Whether `Active` membership never dropped below the scenario's
    /// floor while the campaign ran.
    pub capacity_floor_ok: bool,
    /// Whether the trace oracle and structure checks all passed.
    pub oracle_clean: bool,
    /// Rendered oracle violations (empty when `oracle_clean`).
    pub violations: Vec<String>,
    /// Per-member chaos plans as copy-pasteable builder chains (empty
    /// when the scenario runs without wire faults).
    pub chaos_plan: String,
    /// Members in the merged SMF view (every system ever admitted).
    pub smf_members: u64,
    /// SMF interval records members shipped across the whole campaign.
    pub smf_records: u64,
    /// Whether the sysplex-wide merged report reconciled: every member's
    /// shipped counts balance internally and, where sound (books closed,
    /// no crashed incarnation), against the server's service clock.
    pub smf_reconciled: bool,
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl ScenarioOutcome {
    /// One schema-stable JSON object for the benchmark report splice.
    pub fn to_json_object(&self) -> String {
        let violations =
            self.violations.iter().map(|v| format!("\"{}\"", esc(v))).collect::<Vec<_>>().join(", ");
        format!(
            "{{\"scenario\": \"{}\", \"seed\": {}, \"members\": {}, \"committed\": {}, \
             \"acked\": {}, \"lost\": {}, \"duplicates\": {}, \"reipls\": {}, \
             \"time_to_fence_us\": {}, \"time_to_readmit_us\": {}, \"capacity_floor_ok\": {}, \
             \"oracle_clean\": {}, \"violations\": [{}], \"chaos_plan\": \"{}\", \
             \"smf_members\": {}, \"smf_records\": {}, \"smf_reconciled\": {}}}",
            esc(&self.name),
            self.seed,
            self.members,
            self.committed,
            self.acked,
            self.lost,
            self.duplicates,
            self.reipls,
            self.time_to_fence_us,
            self.time_to_readmit_us,
            self.capacity_floor_ok,
            self.oracle_clean,
            violations,
            esc(&self.chaos_plan),
            self.smf_members,
            self.smf_records,
            self.smf_reconciled,
        )
    }

    /// Whether the scenario met the operations-day bar.
    pub fn is_clean(&self) -> bool {
        self.lost == 0 && self.capacity_floor_ok && self.oracle_clean && self.smf_reconciled
    }

    /// Panic unless [`ScenarioOutcome::is_clean`]: nothing lost, the
    /// capacity floor held, and the oracle found no violations.
    pub fn assert_clean(&self) {
        assert_eq!(
            self.lost, 0,
            "{}: {} acked transaction(s) missing from history (seed {:#x})",
            self.name, self.lost, self.seed
        );
        assert!(
            self.capacity_floor_ok,
            "{}: capacity fell below the floor (seed {:#x})",
            self.name, self.seed
        );
        assert!(
            self.oracle_clean,
            "{}: oracle violations (seed {:#x}): {:?}",
            self.name, self.seed, self.violations
        );
        assert!(
            self.smf_reconciled,
            "{}: merged SMF report failed to reconcile (seed {:#x})",
            self.name, self.seed
        );
    }
}

/// Render outcomes as the JSON array the activity-report splice embeds.
pub fn scenarios_json(outcomes: &[ScenarioOutcome]) -> String {
    let items =
        outcomes.iter().map(|o| format!("    {}", o.to_json_object())).collect::<Vec<_>>().join(",\n");
    format!("[\n{items}\n  ]")
}

/// Run all three scenarios under one config.
pub fn run_all(config: &OpsDayConfig) -> Vec<ScenarioOutcome> {
    vec![rolling_restart(config), partition_heal(config), restart_storm(config)]
}

// ---------------------------------------------------------------------------
// Member: a thread driving debit-credit over the wire, surviving faults
// ---------------------------------------------------------------------------

#[derive(Default)]
struct MemberShared {
    /// Keys of transactions this member saw commit acks for.
    acked: Mutex<Vec<u64>>,
    /// Re-admissions performed (any kind).
    reipls: AtomicU64,
    /// Longest clean-restart outage this member measured, µs.
    restart_us_max: AtomicU64,
    /// Coordinator signal: crash now (no goodbye, no detach), then wait
    /// for `arm` before re-IPLing.
    kill: AtomicBool,
    /// Coordinator signal: restart cleanly now.
    restart: AtomicBool,
    /// ARM restart gate after a `kill`.
    arm: AtomicBool,
    /// Coordinator signal: wrap up and leave.
    stop: AtomicBool,
}

struct Session {
    remote: RemoteSysplex,
    _pulse: PulseHandle,
    xcf: Option<RemoteXcfMember>,
    lock: RemoteLockConnection,
    cache: RemoteCacheConnection,
    list: RemoteListConnection,
}

fn shutdown_clean(s: Session) {
    let _ = s.list.detach();
    let _ = s.cache.detach();
    let _ = s.lock.detach(DisconnectMode::Normal);
    if let Some(x) = s.xcf {
        let _ = x.leave();
    }
    drop(s._pulse);
    let _ = s.remote.goodbye();
}

/// IPL (or re-IPL) a member session: admit, attach structures, run
/// restart recovery for the previous incarnation's lock slot, join the
/// group, start the keepalive. Retries the whole sequence until
/// `deadline` — during a partition every attempt bounces until the heal.
fn ipl(
    addr: &str,
    system: SystemId,
    seed: u64,
    recover: Option<ConnId>,
    deadline: Instant,
) -> Option<Session> {
    let name = format!("SYS{:02}", system.0);
    let member_name = format!("MEM{:02}", system.0);
    while Instant::now() < deadline {
        let attempt = (|| -> Result<Session, ()> {
            let remote = RemoteSysplex::connect_resilient(
                addr,
                system,
                &name,
                100.0,
                RetryPolicy::seeded(seed).attempts(3, 2).backoff_ms(2, 40),
                Duration::from_millis(500),
            )
            .map_err(|_| ())?;
            let policy = Arc::new(RetryPolicy::seeded(seed ^ 0x5EED).attempts(3, 2).backoff_ms(2, 40));
            let lock = remote.connect_lock(LOCK_STRUCTURE).map_err(|_| ())?.with_policy(Arc::clone(&policy));
            let cache =
                remote.connect_cache(CACHE_STRUCTURE, 1024).map_err(|_| ())?.with_policy(Arc::clone(&policy));
            let list = remote
                .connect_list(LIST_STRUCTURE, LIST_HEADERS)
                .map_err(|_| ())?
                .with_policy(Arc::clone(&policy));
            // Restart recovery: the dead incarnation's slot turns
            // failed-persistent as soon as the server tears its session
            // down; wait for that, then purge its retained interest so
            // the plex stops serializing against a ghost.
            if let Some(prior) = recover {
                let parked_by = Instant::now() + Duration::from_secs(3);
                loop {
                    match lock.is_failed_persistent(prior) {
                        Ok(true) => {
                            lock.recovery_complete_for(prior).map_err(|_| ())?;
                            break;
                        }
                        Ok(false) if Instant::now() < parked_by => thread::sleep(Duration::from_millis(5)),
                        Ok(false) => break, // slot already freed cleanly
                        Err(_) => return Err(()),
                    }
                }
            }
            let xcf = remote.join(GROUP, &member_name).ok();
            let pulse = remote.keepalive(Duration::from_millis(50));
            Ok(Session { remote, _pulse: pulse, xcf, lock, cache, list })
        })();
        match attempt {
            Ok(s) => return Some(s),
            Err(()) => thread::sleep(Duration::from_millis(25)),
        }
    }
    None
}

enum TxnOutcome {
    Committed,
    /// The history record exists but the link died before every release
    /// acked: committed work, dead session.
    CommittedLinkDown,
    Aborted,
}

/// One debit-credit transaction: exclusive account/teller/branch locks in
/// ascending hashed-entry order, a changed-data page write, a uniquely
/// keyed history enqueue (the commit point), then release in reverse.
fn debit_credit(s: &Session, key: u64, rng: &mut SplitMix64) -> TxnOutcome {
    let branch = rng.below(BRANCHES);
    let teller = branch * 8 + rng.below(8);
    let account = branch * 64 + rng.below(64);
    let mut entries = vec![
        s.lock.hash_resource(format!("A{account}").as_bytes()),
        s.lock.hash_resource(format!("T{teller}").as_bytes()),
        s.lock.hash_resource(format!("B{branch}").as_bytes()),
    ];
    entries.sort_unstable();
    entries.dedup();

    let release_all = |held: &[usize]| {
        for &h in held.iter().rev() {
            let _ = s.lock.release_lock(h);
        }
    };

    let mut held: Vec<usize> = Vec::new();
    let spin_deadline = Instant::now() + WAIT_CEILING;
    for &entry in &entries {
        loop {
            match s.lock.request_lock(entry, LockMode::Exclusive) {
                Ok(r) if r.is_granted() => {
                    held.push(entry);
                    break;
                }
                Ok(_) if Instant::now() < spin_deadline => thread::sleep(Duration::from_millis(1)),
                _ => {
                    release_all(&held);
                    return TxnOutcome::Aborted;
                }
            }
        }
    }

    let mut page = [0u8; 128];
    page[..8].copy_from_slice(&key.to_le_bytes());
    let block = BlockName::from_parts(0, account);
    if s.cache.write_invalidate(block, &page, WriteKind::ChangedData).is_err() {
        release_all(&held);
        return TxnOutcome::Aborted;
    }
    let header = (branch % LIST_HEADERS as u64) as usize;
    if s.list.enqueue(header, key, &page[..32], WritePosition::Tail, LockCondition::None).is_err() {
        release_all(&held);
        return TxnOutcome::Aborted;
    }
    // Commit point: the history record is in the CF.
    let mut link_down = false;
    for &h in held.iter().rev() {
        if s.lock.release_lock(h).is_err() {
            link_down = true;
        }
    }
    if link_down {
        TxnOutcome::CommittedLinkDown
    } else {
        TxnOutcome::Committed
    }
}

fn member_main(addr: String, system: SystemId, seed: u64, shared: Arc<MemberShared>) {
    let mut rng = SplitMix64::new(seed);
    let deadline = Instant::now() + MEMBER_DEADLINE;
    let mut prior: Option<ConnId> = None;
    let mut session: Option<Session> = ipl(&addr, system, rng.next_u64(), None, deadline);
    let mut seq: u64 = 0;
    while Instant::now() < deadline && !shared.stop.load(Ordering::Acquire) {
        if shared.kill.swap(false, Ordering::AcqRel) {
            // Crash: no goodbye, no detach, pulses stop — SFM will fence
            // us. Park until the ARM signal, then re-IPL and recover.
            if let Some(s) = session.take() {
                prior = Some(s.lock.conn_id());
                drop(s);
            }
            while !shared.arm.swap(false, Ordering::AcqRel) {
                if shared.stop.load(Ordering::Acquire) || Instant::now() > deadline {
                    return;
                }
                thread::sleep(Duration::from_millis(5));
            }
            session = ipl(&addr, system, rng.next_u64(), prior.take(), deadline);
            shared.reipls.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        if shared.restart.swap(false, Ordering::AcqRel) {
            let t0 = Instant::now();
            if let Some(s) = session.take() {
                shutdown_clean(s);
            }
            session = ipl(&addr, system, rng.next_u64(), None, deadline);
            shared.reipls.fetch_add(1, Ordering::Relaxed);
            shared.restart_us_max.fetch_max(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
            continue;
        }
        let Some(s) = session.as_ref() else {
            session = ipl(&addr, system, rng.next_u64(), prior.take(), deadline);
            shared.reipls.fetch_add(1, Ordering::Relaxed);
            continue;
        };
        let key = ((system.0 as u64) << 32) | seq;
        match debit_credit(s, key, &mut rng) {
            TxnOutcome::Committed => {
                shared.acked.lock().unwrap().push(key);
                seq += 1;
                // Pace the stream so a campaign's trace volume stays in
                // the same order as the ring capacity.
                thread::sleep(Duration::from_millis(2));
            }
            TxnOutcome::CommittedLinkDown => {
                shared.acked.lock().unwrap().push(key);
                seq += 1;
                let s = session.take().expect("session present");
                prior = Some(s.lock.conn_id());
                drop(s);
            }
            TxnOutcome::Aborted => {
                // Could be a dead link or contention past the spin
                // ceiling; either way a fresh incarnation is the safe
                // recovery — the unacked key is retried under it.
                let s = session.take().expect("session present");
                prior = Some(s.lock.conn_id());
                drop(s);
            }
        }
    }
    if let Some(s) = session.take() {
        shutdown_clean(s);
    }
}

// ---------------------------------------------------------------------------
// Coordinator: rig, capacity sampling, scenario drivers, verdict
// ---------------------------------------------------------------------------

struct Rig {
    plex: Arc<Sysplex>,
    cf: Arc<CouplingFacility>,
    lock_structure: Arc<LockStructure>,
    server: SysplexServer,
}

fn rig(sfm_threshold: Duration) -> Rig {
    let mut config = SysplexConfig::functional("OPSPLEX");
    config.heartbeat.interval = Duration::from_millis(50);
    config.heartbeat.failure_threshold = sfm_threshold;
    config.heartbeat.auto_failure = true;
    let plex = Sysplex::new(config);
    plex.tracer.enable_with_capacity(RING_CAPACITY);
    let cf = plex.add_cf("CF01");
    let lock_structure =
        cf.allocate_lock_structure(LOCK_STRUCTURE, LockParams::with_entries(512)).expect("lock structure");
    cf.allocate_cache_structure(CACHE_STRUCTURE, CacheParams::store_in(512)).expect("cache structure");
    cf.allocate_list_structure(LIST_STRUCTURE, ListParams::with_headers(LIST_HEADERS))
        .expect("list structure");
    let server = SysplexServer::start(&plex, &cf, "127.0.0.1:0").expect("bind sysplex server");
    Rig { plex, cf, lock_structure, server }
}

struct Campaign {
    rig: Rig,
    config: OpsDayConfig,
    systems: Vec<SystemId>,
    shared: Vec<Arc<MemberShared>>,
    threads: Vec<thread::JoinHandle<()>>,
    proxies: Vec<ChaosProxy>,
    chaos_plan: String,
}

/// Stand up the rig and the member threads. With `plans`, each member
/// dials through its own [`ChaosProxy`] running the matching plan;
/// otherwise members dial the server directly.
fn launch(config: &OpsDayConfig, plans: Option<Vec<ChaosPlan>>, sfm_threshold: Duration) -> Campaign {
    let rig = rig(sfm_threshold);
    let server_addr = rig.server.local_addr();
    let mut rng = SplitMix64::new(config.seed);
    let mut systems = Vec::new();
    let mut shared_all = Vec::new();
    let mut threads = Vec::new();
    let mut proxies = Vec::new();
    let mut plan_lines = Vec::new();
    for m in 1..=config.members {
        let system = SystemId::new(m);
        systems.push(system);
        let addr = match &plans {
            Some(ps) => {
                let plan = ps[(m - 1) as usize].clone();
                plan_lines.push(format!("SYS{m:02}: {plan}"));
                let proxy = ChaosProxy::start(server_addr, plan).expect("start chaos proxy");
                let addr = proxy.addr().to_string();
                proxies.push(proxy);
                addr
            }
            None => server_addr.to_string(),
        };
        let shared = Arc::new(MemberShared::default());
        shared_all.push(Arc::clone(&shared));
        let seed = rng.next_u64();
        threads.push(
            thread::Builder::new()
                .name(format!("opsday-mem{m}"))
                .spawn(move || member_main(addr, system, seed, shared))
                .expect("spawn member"),
        );
    }
    Campaign {
        rig,
        config: *config,
        systems,
        shared: shared_all,
        threads,
        proxies,
        chaos_plan: plan_lines.join(" | "),
    }
}

/// Derive the per-member chaos plans [`partition_heal`] uses by default.
pub fn default_chaos_plans(seed: u64, members: u8) -> Vec<ChaosPlan> {
    let mut rng = SplitMix64::new(seed ^ 0xC4A0_5000);
    (0..members).map(|_| ChaosPlan::random(&mut rng.fork(), 400)).collect()
}

fn wait_all_state(plex: &Arc<Sysplex>, ids: &[SystemId], state: HealthState) -> Option<Duration> {
    let t0 = Instant::now();
    while t0.elapsed() < WAIT_CEILING {
        if ids.iter().all(|&id| plex.heartbeat.state_of(id) == Some(state)) {
            return Some(t0.elapsed());
        }
        thread::sleep(Duration::from_millis(2));
    }
    None
}

/// Block until every member's commit count reaches the config quota, so
/// a scenario never wraps up with trivially little traffic behind it.
fn wait_for_quota(campaign: &Campaign) {
    let deadline = Instant::now() + MEMBER_DEADLINE;
    while Instant::now() < deadline {
        let all_met = campaign
            .shared
            .iter()
            .all(|s| s.acked.lock().unwrap().len() as u64 >= campaign.config.txns_per_member);
        if all_met {
            return;
        }
        thread::sleep(Duration::from_millis(10));
    }
}

struct CapacitySampler {
    floor_ok: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    thread: thread::JoinHandle<()>,
}

/// Sample `Active` membership until stopped; trip if it ever falls below
/// `floor`.
fn sample_capacity(plex: &Arc<Sysplex>, systems: &[SystemId], floor: usize) -> CapacitySampler {
    let floor_ok = Arc::new(AtomicBool::new(true));
    let stop = Arc::new(AtomicBool::new(false));
    let thread = {
        let plex = Arc::clone(plex);
        let systems = systems.to_vec();
        let floor_ok = Arc::clone(&floor_ok);
        let stop = Arc::clone(&stop);
        thread::Builder::new()
            .name("opsday-capacity".into())
            .spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let active = systems
                        .iter()
                        .filter(|&&id| plex.heartbeat.state_of(id) == Some(HealthState::Active))
                        .count();
                    if active < floor {
                        floor_ok.store(false, Ordering::Release);
                    }
                    thread::sleep(Duration::from_millis(5));
                }
            })
            .expect("spawn capacity sampler")
    };
    CapacitySampler { floor_ok, stop, thread }
}

impl CapacitySampler {
    fn finish(self) -> bool {
        self.stop.store(true, Ordering::Release);
        let _ = self.thread.join();
        self.floor_ok.load(Ordering::Acquire)
    }
}

/// Stop the members, join them, quiesce the rig, reconcile history by
/// key, and run the oracle.
fn verdict(
    mut campaign: Campaign,
    name: &str,
    time_to_fence_us: u64,
    time_to_readmit_us: u64,
    capacity_floor_ok: bool,
) -> ScenarioOutcome {
    for s in &campaign.shared {
        s.stop.store(true, Ordering::Release);
    }
    for t in campaign.threads.drain(..) {
        let _ = t.join();
    }
    for p in &mut campaign.proxies {
        p.stop();
    }
    campaign.rig.server.stop();
    // Let session teardown threads drain before the quiescent checks.
    thread::sleep(Duration::from_millis(50));

    let mut acked: Vec<u64> = Vec::new();
    let mut reipls = 0;
    for s in &campaign.shared {
        acked.extend(s.acked.lock().unwrap().iter().copied());
        reipls += s.reipls.load(Ordering::Relaxed);
    }
    let scanner = RemoteListConnection::attach(
        Arc::new(InProcessTransport::new(&campaign.rig.cf)),
        LIST_STRUCTURE,
        LIST_HEADERS,
    )
    .expect("attach history scanner");
    let mut keys: Vec<u64> = Vec::new();
    for h in 0..LIST_HEADERS {
        for e in scanner.scan(h).expect("scan history") {
            keys.push(e.key);
        }
    }
    let _ = scanner.detach();
    let unique: HashSet<u64> = keys.iter().copied().collect();
    let duplicates = (keys.len() - unique.len()) as u64;
    let lost = acked.iter().filter(|k| !unique.contains(k)).count() as u64;

    let records = campaign.rig.plex.tracer.snapshot_all();
    let mut violations =
        oracle::check_trace(&records, OracleConfig { ready_header: 0, expect_drained: false });
    violations.extend(oracle::check_rings(&campaign.rig.plex.tracer));
    violations.extend(oracle::check_lock_structure(&campaign.rig.lock_structure));

    // Merge the SMF records every member shipped (each clean goodbye
    // flushes a final interval) with the server's service clock: the
    // campaign's observability verdict rides next to the oracle's.
    let rmf = Monitor::for_sysplex(&campaign.rig.plex).sysplex_report(campaign.rig.server.smf());
    let (smf_members, smf_records, smf_reconciled) = match &rmf.sysplex {
        Some(s) => {
            (s.members.len() as u64, s.members.iter().map(|m| m.records_shipped).sum(), s.reconciles())
        }
        None => (0, 0, false),
    };

    ScenarioOutcome {
        name: name.to_string(),
        seed: campaign.config.seed,
        members: campaign.config.members,
        committed: unique.len() as u64,
        acked: acked.len() as u64,
        lost,
        duplicates,
        reipls,
        time_to_fence_us,
        time_to_readmit_us,
        capacity_floor_ok,
        oracle_clean: violations.is_empty(),
        violations: violations.iter().map(|v| v.to_string()).collect(),
        chaos_plan: campaign.chaos_plan.clone(),
        smf_members,
        smf_records,
        smf_reconciled,
    }
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

/// Rolling member restart under live debit-credit traffic: each member
/// in turn departs cleanly and re-IPLs while the others keep committing.
/// `Active` capacity must never fall below N−1.
pub fn rolling_restart(config: &OpsDayConfig) -> ScenarioOutcome {
    let campaign = launch(config, None, Duration::from_secs(5));
    wait_all_state(&campaign.rig.plex, &campaign.systems, HealthState::Active).expect("members admitted");
    let sampler = sample_capacity(&campaign.rig.plex, &campaign.systems, config.members as usize - 1);
    for m in 0..config.members as usize {
        thread::sleep(Duration::from_millis(100));
        let before = campaign.shared[m].reipls.load(Ordering::Acquire);
        campaign.shared[m].restart.store(true, Ordering::Release);
        let deadline = Instant::now() + WAIT_CEILING;
        while campaign.shared[m].reipls.load(Ordering::Acquire) == before {
            assert!(Instant::now() < deadline, "member {m} never completed its rolling restart");
            thread::sleep(Duration::from_millis(5));
        }
    }
    let time_to_readmit_us =
        campaign.shared.iter().map(|s| s.restart_us_max.load(Ordering::Relaxed)).max().unwrap_or(0);
    wait_for_quota(&campaign);
    let capacity_floor_ok = sampler.finish();
    verdict(campaign, "rolling_restart", 0, time_to_readmit_us, capacity_floor_ok)
}

/// Network partition + heal through the wire-level chaos proxies: the
/// last member is partitioned until SFM fences it (time-to-fence), the
/// heal lets a fresh incarnation re-IPL (time-to-readmit), and the other
/// members ride out seeded background noise the whole time.
pub fn partition_heal(config: &OpsDayConfig) -> ScenarioOutcome {
    partition_heal_with_plans(config, default_chaos_plans(config.seed, config.members))
}

/// [`partition_heal`] with explicit per-member chaos plans — the entry
/// point the chaos-smoke shrinker re-runs with reduced plans.
pub fn partition_heal_with_plans(config: &OpsDayConfig, plans: Vec<ChaosPlan>) -> ScenarioOutcome {
    assert_eq!(plans.len(), config.members as usize, "one chaos plan per member");
    let campaign = launch(config, Some(plans), Duration::from_millis(1200));
    wait_all_state(&campaign.rig.plex, &campaign.systems, HealthState::Active).expect("members admitted");
    let sampler = sample_capacity(&campaign.rig.plex, &campaign.systems, config.members as usize - 2);
    thread::sleep(Duration::from_millis(200));

    let victim_idx = config.members as usize - 1;
    let victim = campaign.systems[victim_idx];
    let t_partition = Instant::now();
    campaign.proxies[victim_idx].partition();
    wait_all_state(&campaign.rig.plex, &[victim], HealthState::Failed)
        .expect("SFM fences the partitioned member");
    let time_to_fence_us = t_partition.elapsed().as_micros() as u64;
    // Hold the partition briefly so the fenced incarnation's reconnect
    // attempts demonstrably bounce, then heal.
    thread::sleep(Duration::from_millis(100));
    campaign.proxies[victim_idx].heal();
    let t_heal = Instant::now();
    wait_all_state(&campaign.rig.plex, &[victim], HealthState::Active).expect("healed member re-admitted");
    let time_to_readmit_us = t_heal.elapsed().as_micros() as u64;

    wait_for_quota(&campaign);
    let capacity_floor_ok = sampler.finish();
    verdict(campaign, "partition_heal", time_to_fence_us, time_to_readmit_us, capacity_floor_ok)
}

/// ARM-style restart storm: the last two members crash simultaneously
/// (no goodbye, no detach). SFM fences both; the ARM signal restarts
/// them together, and each recovers its own failed-persistent lock slot
/// before taking new work.
pub fn restart_storm(config: &OpsDayConfig) -> ScenarioOutcome {
    assert!(config.members >= 3, "restart_storm needs a survivor");
    let campaign = launch(config, None, Duration::from_millis(1200));
    wait_all_state(&campaign.rig.plex, &campaign.systems, HealthState::Active).expect("members admitted");
    let sampler = sample_capacity(&campaign.rig.plex, &campaign.systems, config.members as usize - 2);
    thread::sleep(Duration::from_millis(200));

    let victims = [config.members as usize - 2, config.members as usize - 1];
    let victim_ids: Vec<SystemId> = victims.iter().map(|&i| campaign.systems[i]).collect();
    let t_kill = Instant::now();
    for &i in &victims {
        campaign.shared[i].kill.store(true, Ordering::Release);
    }
    wait_all_state(&campaign.rig.plex, &victim_ids, HealthState::Failed)
        .expect("SFM fences both crashed members");
    let time_to_fence_us = t_kill.elapsed().as_micros() as u64;

    let t_arm = Instant::now();
    for &i in &victims {
        campaign.shared[i].arm.store(true, Ordering::Release);
    }
    wait_all_state(&campaign.rig.plex, &victim_ids, HealthState::Active)
        .expect("restart storm re-admits both members");
    let time_to_readmit_us = t_arm.elapsed().as_micros() as u64;

    wait_for_quota(&campaign);
    let capacity_floor_ok = sampler.finish();
    verdict(campaign, "restart_storm", time_to_fence_us, time_to_readmit_us, capacity_floor_ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(seed: u64) -> OpsDayConfig {
        OpsDayConfig { seed, members: 3, txns_per_member: 15 }
    }

    #[test]
    fn rolling_restart_keeps_capacity_and_loses_nothing() {
        let outcome = rolling_restart(&quick(0x0411ED));
        outcome.assert_clean();
        assert!(outcome.reipls >= 3, "every member restarted at least once");
        assert!(outcome.time_to_readmit_us > 0);
        assert!(outcome.acked >= 45, "every member reached its quota");
        assert_eq!(outcome.smf_members, 3, "every member in the merged SMF view");
        assert!(
            outcome.smf_records >= 6,
            "each restart and the final shutdown flush a final interval: {}",
            outcome.smf_records
        );
    }

    #[test]
    fn partition_heal_fences_then_readmits() {
        let outcome = partition_heal(&quick(0xFE11CE));
        outcome.assert_clean();
        assert!(outcome.time_to_fence_us > 0, "fence time measured");
        assert!(outcome.time_to_readmit_us > 0, "readmit time measured");
        assert!(!outcome.chaos_plan.is_empty(), "plans recorded for replay");
    }

    #[test]
    fn restart_storm_recovers_both_victims() {
        let outcome = restart_storm(&quick(0x570421));
        outcome.assert_clean();
        assert!(outcome.reipls >= 2, "both victims re-IPLed");
        assert!(outcome.time_to_fence_us > 0);
        assert!(outcome.time_to_readmit_us > 0);
    }

    #[test]
    fn chaos_plans_replay_deterministically() {
        let a = default_chaos_plans(0xC0FFEE, 3);
        let b = default_chaos_plans(0xC0FFEE, 3);
        assert_eq!(a, b, "same seed, same plans");
        let c = default_chaos_plans(0xC0FFEF, 3);
        assert_ne!(a, c, "different seed diverges");
    }

    #[test]
    fn outcome_json_is_schema_stable() {
        let o = ScenarioOutcome {
            name: "demo".into(),
            seed: 7,
            members: 3,
            committed: 10,
            acked: 10,
            lost: 0,
            duplicates: 1,
            reipls: 2,
            time_to_fence_us: 123,
            time_to_readmit_us: 456,
            capacity_floor_ok: true,
            oracle_clean: true,
            violations: vec![],
            chaos_plan: "SYS01: ChaosPlan::new()".into(),
            smf_members: 3,
            smf_records: 6,
            smf_reconciled: true,
        };
        let json = o.to_json_object();
        for key in [
            "\"scenario\"",
            "\"seed\"",
            "\"members\"",
            "\"committed\"",
            "\"acked\"",
            "\"lost\"",
            "\"duplicates\"",
            "\"reipls\"",
            "\"time_to_fence_us\"",
            "\"time_to_readmit_us\"",
            "\"capacity_floor_ok\"",
            "\"oracle_clean\"",
            "\"violations\"",
            "\"chaos_plan\"",
            "\"smf_members\": 3",
            "\"smf_records\": 6",
            "\"smf_reconciled\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(scenarios_json(&[o]).starts_with("[\n"));
    }
}
