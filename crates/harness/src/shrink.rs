//! Greedy schedule shrinking.
//!
//! When a seeded campaign violates an invariant, the raw fault plan is
//! rarely minimal — most scheduled faults are bystanders. The shrinker
//! re-runs the campaign with one fault removed at a time, keeps any
//! removal that still fails, and repeats until no single removal
//! preserves the failure. The result plus the seed is the copy-pasteable
//! repro printed for CI logs.
//!
//! Determinism makes this sound: removing a fault changes only the
//! schedule it fed, never an unrelated race, so "still fails without
//! fault i" is a stable property of `(seed, plan \ {i})`.

use crate::campaign::{CampaignOutcome, CampaignSpec};

/// Outcome of shrinking a failing campaign.
#[derive(Debug)]
pub struct ShrunkFailure {
    /// The minimized spec (same seed, reduced plan).
    pub spec: CampaignSpec,
    /// The outcome of the minimized run (still failing).
    pub outcome: CampaignOutcome,
    /// Campaign re-runs the shrinker spent.
    pub runs: usize,
}

impl ShrunkFailure {
    /// Human-readable repro block for test output / CI logs.
    pub fn report(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "campaign '{}' violated {} invariant(s); minimized to {} fault(s) in {} re-run(s)\n",
            self.spec.name,
            self.outcome.violations.len(),
            self.spec.plan.len(),
            self.runs,
        ));
        for v in &self.outcome.violations {
            s.push_str(&format!("  violation: {v}\n"));
        }
        s.push_str(&format!("  repro: {}\n", self.spec.repro()));
        s
    }
}

/// Greedily minimize the fault plan of a failing `spec`. `spec.run()`
/// must already produce violations; the returned spec fails with a plan
/// no larger (usually much smaller).
pub fn shrink(spec: &CampaignSpec) -> ShrunkFailure {
    let mut best = spec.clone();
    let mut outcome = best.run();
    assert!(!outcome.passed(), "shrink() needs a failing campaign");
    let mut runs = 1;
    loop {
        let mut reduced = false;
        let mut i = 0;
        while i < best.plan.len() {
            let mut candidate = best.clone();
            candidate.plan = best.plan.without(i);
            let candidate_outcome = candidate.run();
            runs += 1;
            if candidate_outcome.passed() {
                // This fault is load-bearing; keep it, try the next.
                i += 1;
            } else {
                best = candidate;
                outcome = candidate_outcome;
                reduced = true;
                // Same index now names the next fault.
            }
        }
        if !reduced {
            break;
        }
    }
    ShrunkFailure { spec: best, outcome, runs }
}

/// Run a campaign; on violation, shrink it and panic with the full repro
/// report. The standard entry point for campaign tests.
///
/// When `SYSPLEX_SHRINK_REPORT` names a file, the minimized repro is
/// also written there — CI uploads it as a build artifact.
pub fn run_checked(spec: CampaignSpec) -> CampaignOutcome {
    let outcome = spec.run();
    if outcome.passed() {
        return outcome;
    }
    let shrunk = shrink(&spec);
    if let Ok(path) = std::env::var("SYSPLEX_SHRINK_REPORT") {
        let _ = std::fs::write(&path, shrunk.report());
    }
    // The SYSPLEX_SEED replay path reconstructs the spec via `from_seed`,
    // which only matches specs that actually came from it — a mutated
    // corpus child must be replayed from the printed repro line instead.
    let replay_hint = if spec == CampaignSpec::from_seed(spec.seed) {
        format!("\nre-run with: SYSPLEX_SEED={:#x} cargo test --test campaigns", spec.seed)
    } else {
        "\nmutated spec: re-run by pasting the repro line above into a test".to_string()
    };
    panic!("deterministic campaign failed (seed {:#x})\n{}{replay_hint}", spec.seed, shrunk.report());
}
