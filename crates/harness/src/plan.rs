//! Fault-plan DSL.
//!
//! A [`FaultPlan`] is the complete list of scheduled misfortunes a
//! campaign will inflict, each pinned to a scheduler step. Plans compose
//! the existing coupling-link fault hook
//! ([`sysplex_core::connection::LinkFault`]) with the three sysplex-level
//! injection points the paper's recovery story revolves around:
//!
//! * **System stall** — a system stops pulsing its couple-data-set status
//!   record. Past the SFM failure threshold the heartbeat monitor fences
//!   it (§3.2), the campaign crashes its data-sharing member, and a peer
//!   recovers its retained locks (§2.5).
//! * **Structure loss** — the group's CF structures are lost and rebuilt
//!   into a fresh facility (§3.3 "Multiple CF's can be connected for
//!   availability"), or, if duplexing is active, failed over.
//! * **CDS primary failure** — the primary couple data set volume dies and
//!   the duplexed pair hot-switches to the alternate.
//!
//! Plans print as copy-pasteable Rust (see [`FaultPlan::fmt`]) so a
//! failing campaign's minimized schedule can be pasted straight into a
//! regression test.

use crate::rng::SplitMix64;

/// One scheduled misfortune.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Delay the next CF command by the given number of microseconds.
    LinkDelayUs(u64),
    /// Time out the next CF command (command-quiesce path).
    LinkTimeout,
    /// Interface-control check on the next CF command.
    InterfaceControlCheck,
    /// `system` stops heartbeating for `steps` scheduler steps. Long
    /// stalls cross the SFM failure threshold and end in a fence; short
    /// ones are near-misses that must NOT fence.
    SystemStall {
        /// Raw system id of the victim.
        system: u8,
        /// Stall length in scheduler steps.
        steps: u32,
    },
    /// Lose the group's CF structures: rebuild into a fresh CF, or fail
    /// over to the duplexed secondary when duplexing is active.
    StructureLoss,
    /// Kill the primary couple data set; the pair hot-switches.
    CdsPrimaryFailure,
    /// Double the CF lock table online (§13 adaptive resize) while lock
    /// traffic is live: a quiesced rehash that must neither lose nor
    /// duplicate any held or retained lock.
    LockTableGrow,
}

/// An ordered schedule of `(step, fault)` pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<(u64, Fault)>,
}

impl FaultPlan {
    /// The empty plan (fault-free campaign).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Builder: schedule `fault` at `step`.
    pub fn at(mut self, step: u64, fault: Fault) -> Self {
        self.faults.push((step, fault));
        self.faults.sort_by_key(|(s, _)| *s);
        self
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The raw schedule, ordered by step.
    pub fn faults(&self) -> &[(u64, Fault)] {
        &self.faults
    }

    /// Faults scheduled at exactly `step`, in insertion order.
    pub fn at_step(&self, step: u64) -> impl Iterator<Item = Fault> + '_ {
        self.faults.iter().filter(move |(s, _)| *s == step).map(|(_, f)| f).copied()
    }

    /// The plan with the fault at `index` removed (shrinking).
    pub fn without(&self, index: usize) -> FaultPlan {
        let mut faults = self.faults.clone();
        faults.remove(index);
        FaultPlan { faults }
    }

    /// Derive a random plan from `rng` for a campaign of `steps` steps
    /// over `members` systems. The mix skews toward the interesting
    /// faults: one likely fatal stall, some near-miss stalls, link noise,
    /// and the occasional structure/CDS loss. System 0 is never stalled —
    /// the campaign always keeps a recovery coordinator alive.
    pub fn random(rng: &mut SplitMix64, steps: u64, members: u8) -> FaultPlan {
        let mut plan = FaultPlan::new();
        let span = steps.max(2);
        // Link noise: 0-3 transient faults.
        for _ in 0..rng.below(4) {
            let fault = match rng.below(3) {
                0 => Fault::LinkDelayUs(50 + rng.below(500)),
                1 => Fault::LinkTimeout,
                _ => Fault::InterfaceControlCheck,
            };
            plan = plan.at(rng.below(span), fault);
        }
        // Stalls: up to members-1 victims, fatal (past threshold) or
        // near-miss, scheduled early enough that the fence and recovery
        // play out inside the campaign.
        if members > 1 {
            for _ in 0..rng.below(members as u64) {
                let system = 1 + rng.below(members as u64 - 1) as u8;
                let fatal = rng.chance(1, 2);
                // Fatal stalls land well past the campaign's fence
                // threshold (60 steps); near-misses stay well short of it.
                let stall_steps = if fatal { 90 + rng.below(60) as u32 } else { 1 + rng.below(12) as u32 };
                plan =
                    plan.at(rng.below(span * 2 / 3 + 1), Fault::SystemStall { system, steps: stall_steps });
            }
        }
        if rng.chance(1, 3) {
            plan = plan.at(rng.below(span), Fault::StructureLoss);
        }
        if rng.chance(1, 3) {
            plan = plan.at(rng.below(span), Fault::CdsPrimaryFailure);
        }
        if rng.chance(1, 3) {
            plan = plan.at(rng.below(span), Fault::LockTableGrow);
        }
        plan
    }
}

impl FaultPlan {
    /// Parse the [`Display`](FaultPlan::fmt) builder-chain rendering back
    /// into a plan. `parse(p.to_string()) == Ok(p)` for every plan — the
    /// round trip is what makes printed repros and corpus files a real
    /// persistence format rather than a log line.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut rest = s.trim().strip_prefix("FaultPlan::new()").ok_or("missing FaultPlan::new() prefix")?;
        let mut plan = FaultPlan::new();
        while !rest.is_empty() {
            rest = rest.strip_prefix(".at(").ok_or_else(|| format!("expected .at(, got {rest:?}"))?;
            // Find the matching close paren: fault payloads may nest one
            // level, e.g. `Fault::LinkDelayUs(137)`.
            let mut depth = 1usize;
            let close = rest
                .char_indices()
                .find(|&(_, c)| {
                    match c {
                        '(' => depth += 1,
                        ')' => depth -= 1,
                        _ => {}
                    }
                    c == ')' && depth == 0
                })
                .map(|(i, _)| i)
                .ok_or("unbalanced parens in .at(...)")?;
            let (inner, after) = rest.split_at(close);
            rest = &after[1..];
            let (step, fault) =
                inner.split_once(", ").ok_or_else(|| format!("malformed .at args {inner:?}"))?;
            let step: u64 = step.trim().parse().map_err(|e| format!("bad step {step:?}: {e}"))?;
            plan = plan.at(step, parse_fault(fault.trim())?);
        }
        Ok(plan)
    }
}

fn parse_fault(s: &str) -> Result<Fault, String> {
    let body = s.strip_prefix("Fault::").ok_or_else(|| format!("expected Fault::, got {s:?}"))?;
    match body {
        "LinkTimeout" => return Ok(Fault::LinkTimeout),
        "InterfaceControlCheck" => return Ok(Fault::InterfaceControlCheck),
        "StructureLoss" => return Ok(Fault::StructureLoss),
        "CdsPrimaryFailure" => return Ok(Fault::CdsPrimaryFailure),
        "LockTableGrow" => return Ok(Fault::LockTableGrow),
        _ => {}
    }
    if let Some(us) = body.strip_prefix("LinkDelayUs(").and_then(|b| b.strip_suffix(')')) {
        return Ok(Fault::LinkDelayUs(us.trim().parse().map_err(|e| format!("bad delay {us:?}: {e}"))?));
    }
    if let Some(fields) = body.strip_prefix("SystemStall {").and_then(|b| b.strip_suffix('}')) {
        let mut system: Option<u8> = None;
        let mut steps: Option<u32> = None;
        for field in fields.split(',') {
            let (key, value) =
                field.split_once(':').ok_or_else(|| format!("malformed stall field {field:?}"))?;
            match key.trim() {
                "system" => {
                    system = Some(value.trim().parse().map_err(|e| format!("bad system: {e}"))?);
                }
                "steps" => steps = Some(value.trim().parse().map_err(|e| format!("bad steps: {e}"))?),
                other => return Err(format!("unknown stall field {other:?}")),
            }
        }
        return Ok(Fault::SystemStall {
            system: system.ok_or("stall missing system")?,
            steps: steps.ok_or("stall missing steps")?,
        });
    }
    Err(format!("unknown fault {s:?}"))
}

impl std::fmt::Display for FaultPlan {
    /// Copy-pasteable builder chain: `FaultPlan::new().at(12,
    /// Fault::SystemStall { system: 1, steps: 44 })...`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FaultPlan::new()")?;
        for (step, fault) in &self.faults {
            write!(f, ".at({step}, Fault::{fault:?})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_orders_by_step() {
        let p = FaultPlan::new()
            .at(30, Fault::LinkTimeout)
            .at(5, Fault::CdsPrimaryFailure)
            .at(12, Fault::StructureLoss);
        let steps: Vec<u64> = p.faults().iter().map(|(s, _)| *s).collect();
        assert_eq!(steps, vec![5, 12, 30]);
    }

    #[test]
    fn at_step_filters() {
        let p = FaultPlan::new().at(3, Fault::LinkTimeout).at(3, Fault::InterfaceControlCheck);
        assert_eq!(p.at_step(3).count(), 2);
        assert_eq!(p.at_step(4).count(), 0);
    }

    #[test]
    fn display_is_copy_pasteable_builder_syntax() {
        let p = FaultPlan::new().at(12, Fault::SystemStall { system: 1, steps: 44 });
        assert_eq!(p.to_string(), "FaultPlan::new().at(12, Fault::SystemStall { system: 1, steps: 44 })");
    }

    #[test]
    fn random_plans_are_reproducible_and_spare_system_zero() {
        let a = FaultPlan::random(&mut SplitMix64::new(99), 200, 4);
        let b = FaultPlan::random(&mut SplitMix64::new(99), 200, 4);
        assert_eq!(a, b);
        for seed in 0..50u64 {
            let p = FaultPlan::random(&mut SplitMix64::new(seed), 200, 4);
            for (_, f) in p.faults() {
                if let Fault::SystemStall { system, .. } = f {
                    assert_ne!(*system, 0, "system 0 must stay alive to coordinate recovery");
                }
            }
        }
    }

    #[test]
    fn display_parse_round_trips() {
        let p = FaultPlan::new()
            .at(0, Fault::LinkDelayUs(137))
            .at(7, Fault::SystemStall { system: 2, steps: 95 })
            .at(7, Fault::LinkTimeout)
            .at(12, Fault::InterfaceControlCheck)
            .at(40, Fault::StructureLoss)
            .at(151, Fault::LockTableGrow)
            .at(199, Fault::CdsPrimaryFailure);
        assert_eq!(FaultPlan::parse(&p.to_string()), Ok(p));
        assert_eq!(FaultPlan::parse("FaultPlan::new()"), Ok(FaultPlan::new()));
        assert_eq!(FaultPlan::parse("  FaultPlan::new()  "), Ok(FaultPlan::new()));
    }

    #[test]
    fn parse_rejects_garbage_without_panicking() {
        for bad in [
            "",
            "FaultPlan::new()garbage",
            "FaultPlan::new().at(",
            "FaultPlan::new().at()",
            "FaultPlan::new().at(1, Fault::Nonsense)",
            "FaultPlan::new().at(x, Fault::LinkTimeout)",
            "FaultPlan::new().at(1, Fault::SystemStall { system: 1 })",
            "FaultPlan::new().at(1, Fault::LinkDelayUs(no))",
            "FaultPlan::new().at(1, Fault::LinkTimeout",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn without_removes_exactly_one() {
        let p = FaultPlan::new().at(1, Fault::LinkTimeout).at(2, Fault::StructureLoss);
        let q = p.without(0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.faults()[0], (2, Fault::StructureLoss));
    }
}
