//! The deterministic campaign driver.
//!
//! A campaign builds a whole sysplex — Sysplex Timer, CFs, couple data
//! sets, heartbeat monitor, a data-sharing group, and a shared work queue
//! — on a **virtual** clock, then runs a seeded workload from a single
//! driver thread. Each scheduler step advances virtual time by 1 ms,
//! pulses the heartbeats of every live (non-stalled) system, applies any
//! faults the [`FaultPlan`] schedules for that step, and runs one
//! PRNG-chosen workload action. Because the driver is the only thread
//! initiating operations (CF commands — including async-converted ones —
//! complete before returning to the caller) and every timeout is measured
//! against the virtual timer, two runs with the same seed produce the
//! same merged trace, event for event.
//!
//! Failure choreography inside a campaign is the paper's: a stalled
//! system misses heartbeats, crosses the SFM failure threshold, is
//! fenced; the driver then crashes its data-sharing member and has the
//! lowest-numbered survivor run peer recovery and requeue the dead
//! consumer's claimed work. Structure loss triggers a rebuild into a
//! fresh CF (or a duplex failover), and a CDS primary failure
//! hot-switches the couple-data-set pair.

use crate::oracle::{self, OracleConfig, Violation};
use crate::plan::{Fault, FaultPlan};
use crate::rng::SplitMix64;
use std::sync::Arc;
use std::time::Duration;
use sysplex_core::connection::LinkFault;
use sysplex_core::trace::{TraceEvent, TraceRecord};
use sysplex_core::{ConnId, SystemId};
use sysplex_dasd::volume::{IoModel, Volume};
use sysplex_db::database::{Database, Txn};
use sysplex_db::group::{DataSharingGroup, GroupConfig};
use sysplex_services::heartbeat::HeartbeatConfig;
use sysplex_services::sysplex::{Sysplex, SysplexConfig};
use sysplex_services::system::SystemConfig;
use sysplex_services::timer::SysplexTimer;
use sysplex_subsys::workq::{queue_params, SharedQueue};

/// Scheduler step length in virtual microseconds.
const STEP_US: u64 = 1_000;
/// Heartbeat sweep cadence, in steps.
const SWEEP_EVERY: u64 = 3;
/// SFM failure threshold, in steps. Stalls well past this fence; stalls
/// well short of it must not. Single workload actions may burn tens of
/// virtual milliseconds in lock-wait parking, so the threshold leaves
/// ample slack above the worst single action.
pub const FENCE_THRESHOLD_STEPS: u64 = 60;
/// Record keys the workload hammers.
const KEYS: u64 = 16;

/// A fully-specified campaign: everything needed to reproduce a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Campaign name (test / report labelling).
    pub name: String,
    /// Seed driving every scheduling decision.
    pub seed: u64,
    /// Number of systems IPLed into the sysplex.
    pub members: u8,
    /// Scheduler steps to run.
    pub steps: u64,
    /// Scheduled faults.
    pub plan: FaultPlan,
    /// Enable CF structure duplexing at start (structure loss then
    /// exercises failover instead of rebuild).
    pub duplex: bool,
}

impl CampaignSpec {
    /// Derive a whole campaign — topology, duplexing, fault schedule —
    /// from a single seed. This is the replayable unit: publishing the
    /// seed publishes the campaign.
    pub fn from_seed(seed: u64) -> CampaignSpec {
        let mut rng = SplitMix64::new(seed);
        let members = 2 + rng.below(3) as u8;
        let steps = 400;
        let duplex = rng.chance(1, 4);
        let plan = FaultPlan::random(&mut rng, steps, members);
        CampaignSpec { name: format!("seed-{seed:#x}"), seed, members, steps, plan, duplex }
    }

    /// A fault-free baseline campaign.
    pub fn baseline(seed: u64) -> CampaignSpec {
        CampaignSpec {
            name: format!("baseline-{seed:#x}"),
            seed,
            members: 3,
            steps: 300,
            plan: FaultPlan::new(),
            duplex: false,
        }
    }

    /// One-line reproduction recipe for a failing campaign.
    pub fn repro(&self) -> String {
        format!(
            "CampaignSpec {{ name: {:?}.into(), seed: {:#x}, members: {}, steps: {}, plan: {}, \
             duplex: {} }}.run()",
            self.name, self.seed, self.members, self.steps, self.plan, self.duplex
        )
    }

    /// Run the campaign to completion and check every oracle invariant.
    pub fn run(&self) -> CampaignOutcome {
        Driver::new(self).run()
    }

    /// One-line wire encoding for the sweep worker pipe and corpus files:
    /// `name;seed;members;steps;duplex;plan-display`. Names must not
    /// contain `;` (the engine's generated names never do).
    pub fn to_wire(&self) -> String {
        debug_assert!(!self.name.contains(';'), "spec names must not contain ';'");
        format!(
            "{};{:#x};{};{};{};{}",
            self.name, self.seed, self.members, self.steps, self.duplex, self.plan
        )
    }

    /// Decode [`CampaignSpec::to_wire`] output.
    pub fn from_wire(s: &str) -> Result<CampaignSpec, String> {
        let mut parts = s.trim().splitn(6, ';');
        let mut next = |what: &str| parts.next().ok_or_else(|| format!("spec line missing {what}"));
        let name = next("name")?.to_string();
        let seed_s = next("seed")?;
        let seed = seed_s
            .strip_prefix("0x")
            .ok_or_else(|| format!("seed {seed_s:?} missing 0x"))
            .and_then(|h| u64::from_str_radix(h, 16).map_err(|e| format!("bad seed {seed_s:?}: {e}")))?;
        let members: u8 = next("members")?.parse().map_err(|e| format!("bad members: {e}"))?;
        let steps: u64 = next("steps")?.parse().map_err(|e| format!("bad steps: {e}"))?;
        let duplex: bool = next("duplex")?.parse().map_err(|e| format!("bad duplex: {e}"))?;
        let plan = FaultPlan::parse(next("plan")?)?;
        if members < 2 {
            return Err(format!("campaigns need at least two systems, got {members}"));
        }
        Ok(CampaignSpec { name, seed, members, steps, plan, duplex })
    }
}

/// Counts of what a campaign actually exercised.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignStats {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transactions (lock timeouts, injected faults).
    pub aborts: u64,
    /// Work items enqueued.
    pub enqueues: u64,
    /// Work items claimed.
    pub claims: u64,
    /// Systems fenced by the heartbeat monitor.
    pub fences: u64,
    /// Peer recoveries completed.
    pub recoveries: u64,
    /// Structure rebuilds into a fresh CF.
    pub rebuilds: u64,
    /// Duplex failovers.
    pub failovers: u64,
    /// Couple-data-set hot switches.
    pub cds_switches: u64,
    /// Online lock-table resizes (adaptive-growth fault).
    pub resizes: u64,
    /// Faults actually applied.
    pub faults_applied: u64,
}

/// Everything a campaign run produced.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// The spec that ran (for repro printing).
    pub spec: CampaignSpec,
    /// Oracle violations (empty = the run upheld every invariant).
    pub violations: Vec<Violation>,
    /// The causally-ordered merged trace.
    pub records: Vec<TraceRecord>,
    /// Digest of the canonical trace (see [`CampaignOutcome::canonical_lines`]).
    pub digest: u64,
    /// Activity counters.
    pub stats: CampaignStats,
}

impl CampaignOutcome {
    /// True when no invariant was violated.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The canonical (replay-comparable) rendering of the merged trace:
    /// one line per record, with the single wall-clock-dependent payload
    /// (`CmdCompleted::latency_ns`) masked so bit-for-bit comparison is
    /// meaningful across runs.
    pub fn canonical_lines(&self) -> Vec<String> {
        self.records.iter().map(canonical_line).collect()
    }
}

fn canonical_line(r: &TraceRecord) -> String {
    let event = match r.event {
        TraceEvent::CmdCompleted { class, converted_async, .. } => {
            TraceEvent::CmdCompleted { class, converted_async, latency_ns: 0 }
        }
        e => e,
    };
    format!("seq={} tod={} sys={} structure={} {:?}", r.seq, r.tod_us, r.system, r.structure, event)
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

struct Member {
    id: SystemId,
    db: Arc<Database>,
    queue: SharedQueue,
    queue_slot: ConnId,
    live: bool,
    /// Steps of stall remaining (0 = pulsing normally).
    stalled_for: u32,
    /// Transaction deliberately left open across a stall, so a fence
    /// leaves retained locks for peer recovery to release.
    open_txn: Option<Txn>,
}

struct Driver<'a> {
    spec: &'a CampaignSpec,
    timer: Arc<SysplexTimer>,
    plex: Arc<Sysplex>,
    group: Arc<DataSharingGroup>,
    members: Vec<Member>,
    rng: SplitMix64,
    stats: CampaignStats,
    /// Monotonic name counter for replacement CFs / CDS volumes.
    next_name: u32,
    /// Name of the CF currently hosting the group's lock structure —
    /// resizes must allocate the grown table on the same facility.
    lock_cf: String,
}

impl<'a> Driver<'a> {
    fn new(spec: &'a CampaignSpec) -> Driver<'a> {
        assert!(spec.members >= 2, "campaigns need at least two systems");
        let timer = SysplexTimer::new_virtual();
        let mut config = SysplexConfig::functional("HARNESS");
        config.heartbeat = HeartbeatConfig {
            interval: Duration::from_micros(2 * STEP_US),
            failure_threshold: Duration::from_micros(FENCE_THRESHOLD_STEPS * STEP_US),
            auto_failure: true,
        };
        let plex = Sysplex::with_timer(config, Arc::clone(&timer));
        plex.tracer.enable_with_capacity(1 << 15);
        let cf = plex.add_cf("CF01");

        let mut gc = GroupConfig::default();
        // Short deadlock-breaker: a blocked transaction burns bounded
        // virtual time (1 ms per retry) before timing out.
        gc.db.lock_timeout = Duration::from_millis(5);
        let group = DataSharingGroup::new(gc, &cf, plex.farm.clone(), plex.timer.clone(), plex.xcf.clone())
            .expect("group allocation");
        let queue_list =
            cf.allocate_list_structure("HARNESS_WORKQ", queue_params()).expect("work queue allocation");

        let mut members = Vec::new();
        for i in 0..spec.members {
            let id = SystemId::new(i);
            plex.ipl(SystemConfig::cmos(id, 1));
            let db = group.add_member(id).expect("member join");
            let queue =
                SharedQueue::open(&queue_list, cf.subchannel().with_system(id)).expect("queue attach");
            let queue_slot = queue.slot();
            members.push(Member { id, db, queue, queue_slot, live: true, stalled_for: 0, open_txn: None });
        }
        if spec.duplex {
            let cf2 = plex.add_cf("CF02");
            group.enable_duplexing(&cf2).expect("duplex establish");
        }
        Driver {
            spec,
            timer,
            plex,
            group,
            members,
            rng: SplitMix64::new(spec.seed ^ 0xA5A5_A5A5_5A5A_5A5A),
            stats: CampaignStats::default(),
            next_name: 3,
            lock_cf: "CF01".to_string(),
        }
    }

    fn run(mut self) -> CampaignOutcome {
        for step in 0..self.spec.steps {
            self.timer.advance(Duration::from_micros(STEP_US));
            let faults: Vec<Fault> = self.spec.plan.at_step(step).collect();
            for fault in faults {
                self.apply_fault(fault);
            }
            self.pulse();
            if step % SWEEP_EVERY == 0 {
                self.sweep();
            }
            self.workload_action();
        }
        self.wind_down();
        self.verdict()
    }

    // ----- per-step machinery -----

    /// Heartbeat every live, non-stalled system; tick stall counters and
    /// commit the held-open transaction of a stall that ends short of the
    /// failure threshold (a near-miss: the system resumes unharmed).
    fn pulse(&mut self) {
        for m in &mut self.members {
            if !m.live {
                continue;
            }
            if m.stalled_for > 0 {
                m.stalled_for -= 1;
                if m.stalled_for == 0 {
                    if let Some(mut txn) = m.open_txn.take() {
                        match m.db.commit(&mut txn) {
                            Ok(()) => self.stats.commits += 1,
                            Err(_) => self.stats.aborts += 1,
                        }
                    }
                }
                continue;
            }
            let _ = self.plex.heartbeat.pulse(m.id);
        }
    }

    /// One SFM sweep; newly fenced systems get the full §2.5 treatment:
    /// crash the member, peer-recover its retained locks on the lowest
    /// live survivor, requeue its claimed work items.
    fn sweep(&mut self) {
        for id in self.plex.heartbeat.check_once() {
            self.stats.fences += 1;
            let Some(idx) = self.members.iter().position(|m| m.id == id) else { continue };
            self.members[idx].live = false;
            self.members[idx].stalled_for = 0;
            // The open transaction dies with the system; its locks are now
            // retained in the CF.
            drop(self.members[idx].open_txn.take());
            let dead_slot = self.members[idx].queue_slot;
            let failed = self.group.crash_member(id);
            let Some(survivor) = self.members.iter().find(|m| m.live) else { continue };
            if let Some(failed) = failed {
                if self.group.recover_on(survivor.id, &failed).is_ok() {
                    self.stats.recoveries += 1;
                }
            }
            let _ = survivor.queue.requeue_orphans(dead_slot);
        }
    }

    fn apply_fault(&mut self, fault: Fault) {
        match fault {
            Fault::LinkDelayUs(us) => {
                if let Some(cf) = self.plex.cf("CF01") {
                    cf.inject_fault(LinkFault::Delay(Duration::from_micros(us)));
                    self.stats.faults_applied += 1;
                }
            }
            Fault::LinkTimeout => {
                if let Some(cf) = self.plex.cf("CF01") {
                    cf.inject_fault(LinkFault::Timeout);
                    self.stats.faults_applied += 1;
                }
            }
            Fault::InterfaceControlCheck => {
                if let Some(cf) = self.plex.cf("CF01") {
                    cf.inject_fault(LinkFault::InterfaceControlCheck);
                    self.stats.faults_applied += 1;
                }
            }
            Fault::SystemStall { system, steps } => {
                let live_unstalled = self.members.iter().filter(|m| m.live && m.stalled_for == 0).count();
                if let Some(m) =
                    self.members.iter_mut().find(|m| m.id.0 == system && m.live && m.stalled_for == 0)
                {
                    // Never stall the last two healthy systems: recovery
                    // needs a coordinator and the workload needs a member.
                    if live_unstalled <= 2 {
                        return;
                    }
                    // Leave a transaction open across the stall so a fence
                    // retains locks for peer recovery to clean up.
                    let mut txn = m.db.begin();
                    let key = 1_000 + system as u64;
                    if m.db.write(&mut txn, key, Some(b"stall-holdout")).is_ok() {
                        m.open_txn = Some(txn);
                    } else {
                        let _ = m.db.abort(&mut txn);
                    }
                    m.stalled_for = steps;
                    self.stats.faults_applied += 1;
                }
            }
            Fault::StructureLoss => {
                if self.group.is_duplexed() {
                    if self.group.cf_failover().is_ok() {
                        self.stats.failovers += 1;
                        self.stats.faults_applied += 1;
                        // The duplexed secondaries were established on CF02
                        // at IPL; promotion moves the lock structure there.
                        self.lock_cf = "CF02".to_string();
                    }
                } else {
                    let name = format!("CF{:02}", self.next_name);
                    self.next_name += 1;
                    let fresh = self.plex.add_cf(&name);
                    if self.group.rebuild_into(&fresh).is_ok() {
                        self.stats.rebuilds += 1;
                        self.stats.faults_applied += 1;
                        self.lock_cf = name;
                    }
                }
            }
            Fault::LockTableGrow => {
                // Double the table on its hosting CF, capped so a mutation
                // lineage stacking grows cannot balloon the allocation.
                let new_entries = (self.group.lock_entries() * 2).min(1 << 16);
                if new_entries > self.group.lock_entries() {
                    if let Some(cf) = self.plex.cf(&self.lock_cf) {
                        // Fails (harmlessly) while a fenced member's state
                        // is still failed-persistent: rebuild requires the
                        // group be recovered first.
                        if self.group.resize_lock_table(&cf, new_entries).is_ok() {
                            self.stats.resizes += 1;
                            self.stats.faults_applied += 1;
                        }
                    }
                }
            }
            Fault::CdsPrimaryFailure => {
                if self.plex.cds.pair().hot_switch().is_ok() {
                    self.stats.cds_switches += 1;
                    self.stats.faults_applied += 1;
                    let name = format!("CDS{:02}", self.next_name);
                    self.next_name += 1;
                    let fresh = Arc::new(Volume::new(&name, 1024, IoModel::instant()));
                    let _ = self.plex.cds.pair().replace_alternate(fresh);
                }
            }
        }
    }

    /// One PRNG-chosen workload action on a PRNG-chosen healthy member.
    fn workload_action(&mut self) {
        let healthy: Vec<usize> = (0..self.members.len())
            .filter(|&i| self.members[i].live && self.members[i].stalled_for == 0)
            .collect();
        if healthy.is_empty() {
            return;
        }
        let m = healthy[self.rng.below(healthy.len() as u64) as usize];
        let action = self.rng.below(100);
        match action {
            // Update transaction: 1-2 writes, then commit.
            0..=44 => {
                let key = self.rng.below(KEYS);
                let value = self.rng.next_u64().to_be_bytes();
                let db = Arc::clone(&self.members[m].db);
                let mut txn = db.begin();
                let mut ok = db.write(&mut txn, key, Some(&value)).is_ok();
                if ok && self.rng.chance(1, 3) {
                    let key2 = self.rng.below(KEYS);
                    ok = db.write(&mut txn, key2, Some(&value)).is_ok();
                }
                if !ok {
                    // The failed write left the txn open; abort releases
                    // its locks. A failed commit cleans up after itself.
                    let _ = db.abort(&mut txn);
                    self.stats.aborts += 1;
                } else if db.commit(&mut txn).is_ok() {
                    self.stats.commits += 1;
                } else {
                    self.stats.aborts += 1;
                }
            }
            // Read transaction.
            45..=59 => {
                let key = self.rng.below(KEYS);
                let db = Arc::clone(&self.members[m].db);
                let mut txn = db.begin();
                if db.read(&mut txn, key).is_err() {
                    let _ = db.abort(&mut txn);
                    self.stats.aborts += 1;
                } else if db.commit(&mut txn).is_ok() {
                    self.stats.commits += 1;
                } else {
                    self.stats.aborts += 1;
                }
            }
            // Enqueue a work item.
            60..=71 => {
                let priority = self.rng.below(8);
                let payload = self.rng.next_u64().to_be_bytes();
                if self.members[m].queue.put(priority, &payload).is_ok() {
                    self.stats.enqueues += 1;
                }
            }
            // Claim (and immediately complete) a work item.
            72..=83 => {
                if let Ok(Some(item)) = self.members[m].queue.take() {
                    self.stats.claims += 1;
                    let _ = self.members[m].queue.complete(&item);
                }
            }
            // Castout sweep.
            84..=89 => {
                let _ = self.members[m].db.buffers().castout(8);
            }
            // Idle step.
            _ => {}
        }
    }

    /// Quiesce: end open transactions, run a final sweep, drain the work
    /// queue, cast out, and let the structures settle for the oracle.
    fn wind_down(&mut self) {
        // Let any in-progress stall either expire or cross the threshold.
        for _ in 0..(FENCE_THRESHOLD_STEPS + 2 * SWEEP_EVERY) {
            self.timer.advance(Duration::from_micros(STEP_US));
            self.pulse();
            self.sweep();
        }
        for m in &mut self.members {
            if let Some(mut txn) = m.open_txn.take() {
                if m.live {
                    match m.db.commit(&mut txn) {
                        Ok(()) => self.stats.commits += 1,
                        Err(_) => self.stats.aborts += 1,
                    }
                }
            }
        }
        // Drain ready work so every enqueued entry ends up claimed. Link
        // faults scheduled near the end of the run can still be armed on
        // the queue's CF (after a rebuild migrates the lock/cache traffic
        // away, nothing else consumes them); each is one-shot, so a
        // bounded retry — a real consumer's answer to a timed-out claim —
        // rides them out instead of abandoning the backlog. Found by the
        // coverage-guided sweep, seed 0x15792635cdd1887b.
        if let Some(coordinator) = self.members.iter().find(|m| m.live) {
            let mut retries = crate::mutate::MAX_FAULTS + 2;
            loop {
                match coordinator.queue.take() {
                    Ok(Some(item)) => {
                        self.stats.claims += 1;
                        let _ = coordinator.queue.complete(&item);
                    }
                    Ok(None) => break,
                    Err(_) if retries > 0 => retries -= 1,
                    Err(_) => break,
                }
            }
            let _ = coordinator.db.buffers().castout(usize::MAX >> 1);
        }
    }

    fn verdict(self) -> CampaignOutcome {
        let records = self.plex.tracer.snapshot_all();
        let mut violations =
            oracle::check_trace(&records, OracleConfig { ready_header: 0, expect_drained: true });
        violations.extend(oracle::check_rings(&self.plex.tracer));
        violations.extend(oracle::check_lock_structure(&self.group.lock_structure()));
        let mut digest_input = Vec::new();
        for r in &records {
            digest_input.extend_from_slice(canonical_line(r).as_bytes());
            digest_input.push(b'\n');
        }
        let digest = fnv1a64(&digest_input);
        // Planned teardown keeps Drop-order sanitizers happy.
        for m in &self.members {
            if m.live {
                self.plex.remove_planned(m.id);
            }
        }
        CampaignOutcome { spec: self.spec.clone(), violations, records, digest, stats: self.stats }
    }
}

// ---------------------------------------------------------------------------
// Coverage-guided sweep engine
// ---------------------------------------------------------------------------

/// Knobs for a [`SweepEngine`].
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Seed of the engine's own decision stream (spec generation, corpus
    /// picks, mutation draws). Publishing it makes the whole sweep
    /// replayable, not just individual campaigns.
    pub base_seed: u64,
    /// Corpus capacity; the lowest-yield entry is evicted past this.
    pub corpus_cap: usize,
    /// `1/fresh_every` of generated specs are fresh `from_seed` draws
    /// even when the corpus is hot, so mutation lineages never fully
    /// starve exploration. `1` disables guidance entirely (pure random
    /// sampling — the control arm the bench compares against).
    pub fresh_every: u64,
}

impl SweepConfig {
    /// Coverage-guided defaults.
    pub fn guided(base_seed: u64) -> SweepConfig {
        SweepConfig { base_seed, corpus_cap: 64, fresh_every: 4 }
    }

    /// Pure-random control: every spec is a fresh seed, coverage is still
    /// tracked (for the distinct-bits comparison) but never steers.
    pub fn random(base_seed: u64) -> SweepConfig {
        SweepConfig { base_seed, corpus_cap: 64, fresh_every: 1 }
    }
}

/// A corpus entry: a spec that discovered coverage nobody else had.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The interesting spec.
    pub spec: CampaignSpec,
    /// Bits this campaign was first to set (its mutation energy).
    pub novel_bits: usize,
    /// Children mutated from it so far (energy decays with use).
    pub children: u32,
}

impl CorpusEntry {
    /// Mutation-pick weight: high-yield entries breed more, but every
    /// child bred halves the appetite so a one-hit wonder cannot
    /// monopolize the sweep.
    fn energy(&self) -> u64 {
        ((self.novel_bits as u64) / (1 + self.children as u64)).max(1)
    }
}

/// The coverage-guided campaign scheduler.
///
/// The engine is single-threaded bookkeeping; parallelism comes from
/// running the specs it hands out wherever the caller likes — inline (the
/// root `campaigns.rs` sweep), or across worker processes pulling specs
/// on demand (the `campaign_sweep` example, one worker per core). Each
/// result is fed back via [`SweepEngine::record`]; specs whose coverage
/// contained novel bits join the corpus and future specs are biased
/// toward mutating them.
#[derive(Debug)]
pub struct SweepEngine {
    config: SweepConfig,
    rng: SplitMix64,
    global: crate::coverage::CoverageMap,
    corpus: Vec<CorpusEntry>,
    campaigns: u64,
}

impl SweepEngine {
    /// A fresh engine.
    pub fn new(config: SweepConfig) -> SweepEngine {
        assert!(config.fresh_every >= 1, "fresh_every is a chance denominator");
        assert!(config.corpus_cap >= 1);
        SweepEngine {
            rng: SplitMix64::new(config.base_seed ^ 0x5EED_E261_E000_0000),
            config,
            global: crate::coverage::CoverageMap::new(),
            corpus: Vec::new(),
            campaigns: 0,
        }
    }

    /// The next spec to run: a mutation of an energy-weighted corpus pick,
    /// or a fresh seeded draw when the corpus is dry (or the exploration
    /// coin says so).
    pub fn next_spec(&mut self) -> CampaignSpec {
        if self.corpus.is_empty() || self.rng.chance(1, self.config.fresh_every) {
            return CampaignSpec::from_seed(self.rng.next_u64());
        }
        let total: u64 = self.corpus.iter().map(CorpusEntry::energy).sum();
        let mut pick = self.rng.below(total);
        let mut idx = self.corpus.len() - 1;
        for (i, entry) in self.corpus.iter().enumerate() {
            let e = entry.energy();
            if pick < e {
                idx = i;
                break;
            }
            pick -= e;
        }
        let donor_idx = self.rng.below(self.corpus.len() as u64) as usize;
        self.corpus[idx].children += 1;
        let parent = self.corpus[idx].spec.clone();
        let donor = if donor_idx != idx { Some(self.corpus[donor_idx].spec.clone()) } else { None };
        crate::mutate::mutate_spec(&mut self.rng, &parent, donor.as_ref())
    }

    /// Feed back one campaign's coverage. Returns the number of novel bits
    /// it contributed; any novelty admits the spec to the corpus.
    pub fn record(&mut self, spec: &CampaignSpec, coverage: &crate::coverage::CoverageMap) -> usize {
        self.campaigns += 1;
        let novel = self.global.merge(coverage);
        if novel > 0 {
            self.corpus.push(CorpusEntry { spec: spec.clone(), novel_bits: novel, children: 0 });
            if self.corpus.len() > self.config.corpus_cap {
                let evict = self
                    .corpus
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.energy())
                    .map(|(i, _)| i)
                    .expect("corpus non-empty");
                self.corpus.remove(evict);
            }
        }
        novel
    }

    /// Distinct coverage accumulated across every recorded campaign.
    pub fn coverage(&self) -> &crate::coverage::CoverageMap {
        &self.global
    }

    /// The current corpus, in admission order.
    pub fn corpus(&self) -> &[CorpusEntry] {
        &self.corpus
    }

    /// Campaigns recorded so far.
    pub fn campaigns(&self) -> u64 {
        self.campaigns
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SweepConfig {
        &self.config
    }
}

#[cfg(test)]
mod engine_tests {
    use super::*;
    use crate::coverage::CoverageMap;

    #[test]
    fn spec_wire_round_trips() {
        let spec = CampaignSpec::from_seed(0xFACE);
        assert_eq!(CampaignSpec::from_wire(&spec.to_wire()), Ok(spec));
        let mutant = crate::mutate::mutate_spec(
            &mut SplitMix64::new(5),
            &CampaignSpec::from_seed(0xFACE),
            Some(&CampaignSpec::from_seed(0xCAFE)),
        );
        assert_eq!(CampaignSpec::from_wire(&mutant.to_wire()), Ok(mutant));
        assert!(CampaignSpec::from_wire("x;0x1;1;100;false;FaultPlan::new()").is_err(), "members >= 2");
        assert!(CampaignSpec::from_wire("nonsense").is_err());
    }

    #[test]
    fn engine_spec_stream_is_deterministic() {
        let run = |base: u64| {
            let mut engine = SweepEngine::new(SweepConfig::guided(base));
            let mut specs = Vec::new();
            for i in 0..8u64 {
                let spec = engine.next_spec();
                // Synthetic coverage: every third campaign finds novelty.
                let mut cov = CoverageMap::new();
                cov.set(100 + (i % 3) as usize * 7 + i as usize);
                engine.record(&spec, &cov);
                specs.push(spec.to_wire());
            }
            specs
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn novelty_admits_to_corpus_and_duplicates_do_not() {
        let mut engine = SweepEngine::new(SweepConfig::guided(7));
        let spec = engine.next_spec();
        let mut cov = CoverageMap::new();
        cov.set(500);
        assert_eq!(engine.record(&spec, &cov), 1);
        assert_eq!(engine.corpus().len(), 1);
        // Same coverage again: no novelty, no admission.
        assert_eq!(engine.record(&spec, &cov), 0);
        assert_eq!(engine.corpus().len(), 1);
        assert_eq!(engine.campaigns(), 2);
        assert_eq!(engine.coverage().count(), 1);
    }

    #[test]
    fn corpus_eviction_respects_cap() {
        let mut engine =
            SweepEngine::new(SweepConfig { base_seed: 1, corpus_cap: 4, fresh_every: 1_000_000 });
        for i in 0..20usize {
            let spec = engine.next_spec();
            let mut cov = CoverageMap::new();
            cov.set(1000 + i);
            engine.record(&spec, &cov);
            assert!(engine.corpus().len() <= 4);
        }
        assert_eq!(engine.corpus().len(), 4);
        assert_eq!(engine.coverage().count(), 20, "eviction never loses global coverage");
    }

    #[test]
    fn random_config_never_draws_from_corpus() {
        let mut engine = SweepEngine::new(SweepConfig::random(9));
        for i in 0..30usize {
            let spec = engine.next_spec();
            assert!(spec.name.starts_with("seed-"), "pure-random mode mutates nothing, got {}", spec.name);
            let mut cov = CoverageMap::new();
            cov.set(2000 + i);
            engine.record(&spec, &cov);
        }
    }
}
