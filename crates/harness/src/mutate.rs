//! Seeded plan mutation: the generation side of coverage-guided sweeps.
//!
//! `CampaignSpec::from_seed` samples the schedule space blindly; once a
//! campaign has proven interesting (it set coverage bits nobody else
//! had), the engine wants its *neighbors* — same spec, slightly different
//! misfortunes. The mutators here produce those neighbors while keeping
//! every invariant `FaultPlan::random` guarantees:
//!
//! * system 0 is never stalled (recovery always has a coordinator);
//! * stall victims stay inside the member range;
//! * stalls are either decisively fatal (well past the fence threshold)
//!   or decisive near-misses (well short of it), never straddling;
//! * plans never exceed [`MAX_FAULTS`] scheduled faults;
//! * fault steps stay inside the campaign's step span.
//!
//! Everything is driven by the caller's [`SplitMix64`], so a mutated
//! child is as replayable as a seeded parent: the spec itself (printed by
//! `CampaignSpec::repro`) is the reproduction unit.

use crate::campaign::CampaignSpec;
use crate::plan::{Fault, FaultPlan};
use crate::rng::SplitMix64;

/// Hard cap on scheduled faults per plan. Mutation adds faults one splice
/// or insertion at a time; without a cap a hot corpus lineage grows
/// unboundedly and every child spends its whole run in recovery.
pub const MAX_FAULTS: usize = 24;

/// Fatal stalls land well past the campaign fence threshold (60 steps);
/// near-misses stay well short of it. Mirrors `FaultPlan::random`.
const FATAL_STALL_MIN: u32 = 90;

/// Derive one random fault, honoring the plan-generation constraints.
pub fn random_fault(rng: &mut SplitMix64, members: u8) -> Fault {
    match rng.below(7) {
        0 => Fault::LinkDelayUs(50 + rng.below(500)),
        1 => Fault::LinkTimeout,
        2 => Fault::InterfaceControlCheck,
        3 if members > 1 => {
            let system = 1 + rng.below(members as u64 - 1) as u8;
            let fatal = rng.chance(1, 2);
            let steps = if fatal { FATAL_STALL_MIN + rng.below(60) as u32 } else { 1 + rng.below(12) as u32 };
            Fault::SystemStall { system, steps }
        }
        3 => Fault::LinkTimeout,
        4 => Fault::StructureLoss,
        5 => Fault::LockTableGrow,
        _ => Fault::CdsPrimaryFailure,
    }
}

/// Drop one scheduled fault at random. No-op on empty plans.
pub fn drop_fault(rng: &mut SplitMix64, plan: &FaultPlan) -> FaultPlan {
    if plan.is_empty() {
        return plan.clone();
    }
    plan.without(rng.below(plan.len() as u64) as usize)
}

/// Retime one scheduled fault to a fresh step in `0..span`. No-op on
/// empty plans.
pub fn shift_fault(rng: &mut SplitMix64, plan: &FaultPlan, span: u64) -> FaultPlan {
    if plan.is_empty() {
        return plan.clone();
    }
    let idx = rng.below(plan.len() as u64) as usize;
    let (_, fault) = plan.faults()[idx];
    plan.without(idx).at(rng.below(span.max(1)), fault)
}

/// Insert one fresh random fault at a random step.
pub fn add_fault(rng: &mut SplitMix64, plan: &FaultPlan, span: u64, members: u8) -> FaultPlan {
    let fault = random_fault(rng, members);
    plan.clone().at(rng.below(span.max(1)), fault)
}

/// Splice: keep the base plan and graft a random subset of the donor's
/// scheduled faults onto it (each with an independent coin flip, at their
/// original steps). Crossing two interesting lineages reaches fault
/// *combinations* neither seed would sample on its own.
pub fn splice(rng: &mut SplitMix64, base: &FaultPlan, donor: &FaultPlan) -> FaultPlan {
    let mut out = base.clone();
    for &(step, fault) in donor.faults() {
        if rng.chance(1, 2) {
            out = out.at(step, fault);
        }
    }
    out
}

/// Trim a plan back under [`MAX_FAULTS`] by dropping random faults.
fn enforce_cap(rng: &mut SplitMix64, mut plan: FaultPlan) -> FaultPlan {
    while plan.len() > MAX_FAULTS {
        plan = plan.without(rng.below(plan.len() as u64) as usize);
    }
    plan
}

/// Mutate `parent` into a child spec: 1-3 stacked plan mutations, with an
/// occasional duplex flip or workload reseed. `donor` (another corpus
/// entry, when the engine has one) enables the splice mutator.
pub fn mutate_spec(
    rng: &mut SplitMix64,
    parent: &CampaignSpec,
    donor: Option<&CampaignSpec>,
) -> CampaignSpec {
    let mut child = parent.clone();
    let span = child.steps.max(2);
    let rounds = 1 + rng.below(3);
    for _ in 0..rounds {
        let choice = rng.below(if donor.is_some() { 6 } else { 5 });
        child.plan = match choice {
            0 => drop_fault(rng, &child.plan),
            1 => shift_fault(rng, &child.plan, span),
            2 | 3 => add_fault(rng, &child.plan, span, child.members),
            4 => {
                // Non-plan mutations: flip duplexing (structure loss then
                // exercises failover instead of rebuild), reseed the
                // workload stream under the same fault schedule, or admit
                // another member. Coverage tokens are (system, kind)
                // pairs, so each extra member opens a whole token
                // subspace; growth only, so stall victims stay in range.
                match rng.below(3) {
                    0 => child.duplex = !child.duplex,
                    1 => child.seed = rng.next_u64(),
                    _ => child.members = (child.members + 1).min(4),
                }
                child.plan
            }
            _ => splice(rng, &child.plan, &donor.expect("choice 5 only offered with a donor").plan),
        };
    }
    child.plan = enforce_cap(rng, child.plan);
    // Half of all children also reseed the workload stream. What the
    // corpus contributes is the fault *plan*; a fresh seed replays that
    // plan against a brand-new interleaving, so mutation explores
    // plan × schedule space instead of re-walking the parent's trace
    // with one extra misfortune.
    if rng.chance(1, 2) {
        child.seed = rng.next_u64();
    }
    child.name = format!("mut-{:#x}-{:x}", parent.seed, rng.next_u64() & 0xFFFF);
    child
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parent(seed: u64) -> CampaignSpec {
        CampaignSpec::from_seed(seed)
    }

    #[test]
    fn mutation_is_deterministic() {
        let p = parent(77);
        let d = parent(78);
        let a = mutate_spec(&mut SplitMix64::new(9), &p, Some(&d));
        let b = mutate_spec(&mut SplitMix64::new(9), &p, Some(&d));
        assert_eq!(a, b);
    }

    #[test]
    fn mutants_respect_plan_invariants() {
        for seed in 0..200u64 {
            let mut rng = SplitMix64::new(seed);
            let p = parent(seed ^ 0xABCD);
            let d = parent(seed ^ 0x1234);
            let mut spec = p.clone();
            // Chain mutations to stress accumulation (splice can only grow).
            for _ in 0..6 {
                spec = mutate_spec(&mut rng, &spec, Some(&d));
            }
            assert!(spec.plan.len() <= MAX_FAULTS, "cap enforced, got {}", spec.plan.len());
            assert!(spec.members >= 2);
            for &(step, fault) in spec.plan.faults() {
                assert!(step < spec.steps * 2, "steps stay near the campaign span");
                if let Fault::SystemStall { system, steps } = fault {
                    assert_ne!(system, 0, "system 0 must stay alive to coordinate recovery");
                    assert!(
                        steps >= FATAL_STALL_MIN || steps <= 12,
                        "stalls are decisively fatal or decisive near-misses, got {steps}"
                    );
                }
            }
        }
    }

    #[test]
    fn drop_and_shift_preserve_length_invariants() {
        let mut rng = SplitMix64::new(1);
        let p = FaultPlan::new().at(5, Fault::LinkTimeout).at(9, Fault::StructureLoss);
        assert_eq!(drop_fault(&mut rng, &p).len(), 1);
        assert_eq!(shift_fault(&mut rng, &p, 100).len(), 2);
        let empty = FaultPlan::new();
        assert!(drop_fault(&mut rng, &empty).is_empty());
        assert!(shift_fault(&mut rng, &empty, 100).is_empty());
    }

    #[test]
    fn splice_only_grows_from_donor_faults() {
        let mut rng = SplitMix64::new(3);
        let base = FaultPlan::new().at(1, Fault::LinkTimeout);
        let donor = FaultPlan::new().at(2, Fault::StructureLoss).at(3, Fault::CdsPrimaryFailure);
        let out = splice(&mut rng, &base, &donor);
        assert!(out.len() >= base.len() && out.len() <= base.len() + donor.len());
        assert_eq!(out.at_step(1).count(), 1, "base faults always survive");
    }
}
