//! Wire-level fault injection: a chaos proxy for SPLX frame streams.
//!
//! The campaign harness injects faults *above* the wire — [`crate::plan`]
//! drives the in-process link-fault hook. This module injects them *in*
//! the wire: a [`ChaosProxy`] sits between a TCP member and the sysplex
//! server, parses the SPLX framing (magic + version + length prefix), and
//! applies a seeded [`ChaosPlan`] of [`WireFault`]s to individual frames —
//! delay, drop, duplicate, truncate mid-frame, garble the payload, stall
//! the link, or partition the member outright.
//!
//! Frames are counted by a single proxy-global index across both
//! directions. A member's RPC stream is strictly lockstep (request frame,
//! response frame, request frame, ...), so with one proxy per member the
//! index sequence — and therefore the fault schedule — is deterministic
//! at the plan level: the same `ChaosPlan` hits the same frames. What the
//! *victim does about it* (retry, reconnect, back off) is the system
//! under test.
//!
//! Plans mirror the [`crate::plan::FaultPlan`] DSL: built with
//! [`ChaosPlan::at`], shrunk with [`ChaosPlan::without`], derived from a
//! [`SplitMix64`] seed with [`ChaosPlan::random`], and printed as a
//! copy-pasteable builder chain.

use crate::rng::SplitMix64;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};
use sysplex_core::wire::{parse_frame_header, FRAME_HEADER_BYTES};

/// One misfortune applied to a single SPLX frame in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Hold the frame for the given milliseconds, then forward it.
    DelayMs(u64),
    /// Swallow the frame. The victim's command times out and retries;
    /// retried commands are at-least-once (see `RetryPolicy`'s caveat).
    Drop,
    /// Forward the frame twice. The duplicate response desynchronizes a
    /// naive request/response stream; `TcpTransport` heals by draining
    /// stale input before each call.
    Duplicate,
    /// Forward the header and half the body, then kill the connection —
    /// the receiver sees EOF mid-frame (a dead peer, not a clean close).
    Truncate,
    /// XOR the body so framing survives but the payload fails to decode:
    /// the receiver reports an interface control check.
    Garble,
    /// Stall the link (both directions) for the given milliseconds. The
    /// frame is forwarded after the stall passes.
    StallMs(u64),
    /// Partition the member for the given milliseconds: swallow the
    /// frame, kill every connection, and refuse new ones until the
    /// deadline passes.
    PartitionMs(u64),
}

/// An ordered schedule of `(frame_index, fault)` pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    faults: Vec<(u64, WireFault)>,
}

impl ChaosPlan {
    /// The empty plan (faithful proxy).
    pub fn new() -> Self {
        ChaosPlan::default()
    }

    /// Builder: schedule `fault` for the `frame`-th frame through the
    /// proxy (both directions share one counter).
    pub fn at(mut self, frame: u64, fault: WireFault) -> Self {
        self.faults.push((frame, fault));
        self.faults.sort_by_key(|(f, _)| *f);
        self
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The raw schedule, ordered by frame index.
    pub fn faults(&self) -> &[(u64, WireFault)] {
        &self.faults
    }

    /// Faults scheduled for exactly frame `frame`, in insertion order.
    pub fn at_frame(&self, frame: u64) -> impl Iterator<Item = WireFault> + '_ {
        self.faults.iter().filter(move |(f, _)| *f == frame).map(|(_, f)| f).copied()
    }

    /// The plan with the fault at `index` removed (shrinking).
    pub fn without(&self, index: usize) -> ChaosPlan {
        let mut faults = self.faults.clone();
        faults.remove(index);
        ChaosPlan { faults }
    }

    /// Derive a random plan from `rng` for roughly `frames` frames of
    /// traffic. The mix skews toward survivable noise — delays, drops,
    /// duplicates, garbles — plus the occasional stall and at most one
    /// partition, scheduled in the first two-thirds so the heal and
    /// re-admission play out inside the campaign.
    pub fn random(rng: &mut SplitMix64, frames: u64) -> ChaosPlan {
        let mut plan = ChaosPlan::new();
        let span = frames.max(4);
        for _ in 0..(2 + rng.below(6)) {
            let fault = match rng.below(5) {
                0 => WireFault::DelayMs(1 + rng.below(20)),
                1 => WireFault::Drop,
                2 => WireFault::Duplicate,
                3 => WireFault::Garble,
                _ => WireFault::Truncate,
            };
            plan = plan.at(rng.below(span), fault);
        }
        if rng.chance(1, 2) {
            plan = plan.at(rng.below(span), WireFault::StallMs(5 + rng.below(40)));
        }
        if rng.chance(1, 2) {
            plan = plan.at(rng.below(span * 2 / 3 + 1), WireFault::PartitionMs(30 + rng.below(120)));
        }
        plan
    }
}

impl std::fmt::Display for ChaosPlan {
    /// Copy-pasteable builder chain: `ChaosPlan::new().at(12,
    /// WireFault::Drop)...`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChaosPlan::new()")?;
        for (frame, fault) in &self.faults {
            write!(f, ".at({frame}, WireFault::{fault:?})")?;
        }
        Ok(())
    }
}

struct ProxyShared {
    plan: ChaosPlan,
    upstream: SocketAddr,
    epoch: Instant,
    /// Proxy-global frame counter, both directions.
    frames: AtomicU64,
    /// Link-stall deadline in ms since `epoch` (0 = no stall).
    stall_until_ms: AtomicU64,
    /// Partition deadline in ms since `epoch` (0 = none scheduled).
    partition_until_ms: AtomicU64,
    /// Operator-held partition ([`ChaosProxy::partition`]).
    manual_partition: AtomicBool,
    stop: AtomicBool,
    /// Faults actually applied, with the frame they hit.
    applied: Mutex<Vec<(u64, WireFault)>>,
    /// Clones of every live stream, for shutdown on stop/partition.
    conns: Mutex<Vec<TcpStream>>,
}

impl ProxyShared {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn partitioned(&self) -> bool {
        self.manual_partition.load(Ordering::Relaxed)
            || self.now_ms() < self.partition_until_ms.load(Ordering::Relaxed)
    }

    /// Block while a link stall is in force.
    fn wait_stall(&self) {
        loop {
            if self.stop.load(Ordering::Relaxed) {
                return;
            }
            let deadline = self.stall_until_ms.load(Ordering::Relaxed);
            let now = self.now_ms();
            if now >= deadline {
                return;
            }
            thread::sleep(Duration::from_millis((deadline - now).min(5)));
        }
    }

    /// Kill every tracked connection (the streams' pump threads exit on
    /// the resulting read/write errors).
    fn sever_all(&self) {
        for stream in self.conns.lock().unwrap().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// A fault-injecting TCP proxy for SPLX frame streams.
///
/// `start` binds an ephemeral loopback port; point one member's
/// `RemoteSysplex`/`TcpTransport` at [`ChaosProxy::addr`] instead of the
/// real server and the plan's faults land on that member's wire. Stop it
/// with [`ChaosProxy::stop`] (also runs on drop).
pub struct ChaosProxy {
    addr: SocketAddr,
    shared: Arc<ProxyShared>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Start a proxy forwarding to `upstream` under `plan`.
    pub fn start(upstream: SocketAddr, plan: ChaosPlan) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            plan,
            upstream,
            epoch: Instant::now(),
            frames: AtomicU64::new(0),
            stall_until_ms: AtomicU64::new(0),
            partition_until_ms: AtomicU64::new(0),
            manual_partition: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            applied: Mutex::new(Vec::new()),
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = thread::Builder::new()
            .name("chaos-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn chaos accept thread");
        Ok(ChaosProxy { addr, shared, accept_thread: Some(accept_thread) })
    }

    /// The proxy's listen address — hand this to the member.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Frames seen so far (both directions).
    pub fn frames(&self) -> u64 {
        self.shared.frames.load(Ordering::Relaxed)
    }

    /// Faults actually applied, with the frame index each one hit.
    pub fn applied(&self) -> Vec<(u64, WireFault)> {
        self.shared.applied.lock().unwrap().clone()
    }

    /// Hold the member in a partition until [`ChaosProxy::heal`]:
    /// existing connections die, new ones are refused.
    pub fn partition(&self) {
        self.shared.manual_partition.store(true, Ordering::Relaxed);
        self.shared.sever_all();
    }

    /// Release an operator-held partition.
    pub fn heal(&self) {
        self.shared.manual_partition.store(false, Ordering::Relaxed);
        self.shared.partition_until_ms.store(0, Ordering::Relaxed);
    }

    /// True while a manual or scheduled partition is in force.
    pub fn is_partitioned(&self) -> bool {
        self.shared.partitioned()
    }

    /// Stop the proxy: kill all connections and join the accept loop.
    pub fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.sever_all();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ProxyShared>) {
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((client, _)) => {
                // A partitioned member's dial succeeds at the TCP level
                // and dies immediately — the classic half-open blip that
                // exercises the reconnect backoff, not a connection
                // refusal it could special-case.
                if shared.partitioned() {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                }
                let upstream = match TcpStream::connect(shared.upstream) {
                    Ok(s) => s,
                    Err(_) => {
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    }
                };
                let _ = client.set_nodelay(true);
                let _ = upstream.set_nodelay(true);
                let (c2, u2) = match (client.try_clone(), upstream.try_clone()) {
                    (Ok(c), Ok(u)) => (c, u),
                    _ => continue,
                };
                {
                    let mut conns = shared.conns.lock().unwrap();
                    if let (Ok(c), Ok(u)) = (client.try_clone(), upstream.try_clone()) {
                        conns.push(c);
                        conns.push(u);
                    }
                }
                let s1 = Arc::clone(&shared);
                let s2 = Arc::clone(&shared);
                let _ =
                    thread::Builder::new().name("chaos-up".into()).spawn(move || pump(s1, client, upstream));
                let _ = thread::Builder::new().name("chaos-down".into()).spawn(move || pump(s2, u2, c2));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return,
        }
    }
}

/// Forward frames `src` → `dst`, applying the plan's faults. Exits (and
/// severs both streams) on stream error, partition, or a killing fault.
fn pump(shared: Arc<ProxyShared>, mut src: TcpStream, mut dst: TcpStream) {
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        let mut header = [0u8; FRAME_HEADER_BYTES];
        if src.read_exact(&mut header).is_err() {
            break;
        }
        let len = match parse_frame_header(&header) {
            Ok(len) => len,
            Err(_) => break,
        };
        let mut body = vec![0u8; len];
        if src.read_exact(&mut body).is_err() {
            break;
        }
        let index = shared.frames.fetch_add(1, Ordering::Relaxed);

        shared.wait_stall();
        if shared.partitioned() {
            break;
        }

        let mut forward = true;
        let mut duplicate = false;
        let mut truncate = false;
        let mut kill = false;
        for fault in shared.plan.at_frame(index) {
            shared.applied.lock().unwrap().push((index, fault));
            match fault {
                WireFault::DelayMs(ms) => thread::sleep(Duration::from_millis(ms)),
                WireFault::Drop => forward = false,
                WireFault::Duplicate => duplicate = true,
                WireFault::Truncate => truncate = true,
                WireFault::Garble => {
                    for byte in body.iter_mut() {
                        *byte ^= 0xA5;
                    }
                }
                WireFault::StallMs(ms) => {
                    shared.stall_until_ms.store(shared.now_ms() + ms, Ordering::Relaxed);
                }
                WireFault::PartitionMs(ms) => {
                    shared.partition_until_ms.store(shared.now_ms() + ms, Ordering::Relaxed);
                    forward = false;
                    kill = true;
                }
            }
        }
        // A stall scheduled on this very frame delays it too.
        shared.wait_stall();

        if truncate {
            let _ = dst.write_all(&header).and_then(|_| dst.write_all(&body[..len / 2]));
            let _ = dst.flush();
            forward = false;
            kill = true;
        }
        if forward {
            if dst.write_all(&header).and_then(|_| dst.write_all(&body)).is_err() {
                break;
            }
            if duplicate {
                let _ = dst.write_all(&header).and_then(|_| dst.write_all(&body));
            }
            let _ = dst.flush();
        }
        if kill {
            break;
        }
    }
    // Tear down the pair: a mid-stream exit here must look like a dead
    // peer to both ends, and on partition the other pump must exit too.
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
    if shared.partitioned() {
        shared.sever_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use sysplex_core::facility::{CfConfig, CouplingFacility};
    use sysplex_core::lock::{LockMode, LockParams};
    use sysplex_core::transport::{
        serve_cf_stream, CfTransport, InProcessTransport, RemoteLockConnection, TcpTransport,
    };
    use sysplex_core::CfError;

    /// One-shot CF server: accept TCP sessions and serve the wire
    /// protocol against a real facility until the listener is dropped.
    fn spawn_cf_server() -> (SocketAddr, StdArc<CouplingFacility>) {
        let cf = CouplingFacility::new(CfConfig::named("CF-CHAOS"));
        cf.allocate_lock_structure("CHAOS_LOCK", LockParams::with_entries(64)).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let served = StdArc::clone(&cf);
        thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                let cf = StdArc::clone(&served);
                thread::spawn(move || {
                    let per_conn = InProcessTransport::new(&cf);
                    let _ = serve_cf_stream(&per_conn, stream);
                });
            }
        });
        (addr, cf)
    }

    #[test]
    fn display_is_copy_pasteable_builder_syntax() {
        let p = ChaosPlan::new().at(12, WireFault::Drop).at(3, WireFault::DelayMs(5));
        assert_eq!(p.to_string(), "ChaosPlan::new().at(3, WireFault::DelayMs(5)).at(12, WireFault::Drop)");
    }

    #[test]
    fn random_plans_are_reproducible() {
        let a = ChaosPlan::random(&mut SplitMix64::new(77), 100);
        let b = ChaosPlan::random(&mut SplitMix64::new(77), 100);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn without_removes_exactly_one() {
        let p = ChaosPlan::new().at(1, WireFault::Drop).at(2, WireFault::Garble);
        let q = p.without(0);
        assert_eq!(q.faults(), &[(2, WireFault::Garble)]);
    }

    #[test]
    fn faithful_proxy_passes_commands_through() {
        let (addr, _cf) = spawn_cf_server();
        let proxy = ChaosProxy::start(addr, ChaosPlan::new()).unwrap();
        let transport = TcpTransport::connect(proxy.addr()).unwrap();
        let transport: StdArc<dyn CfTransport> = StdArc::new(transport);
        let lock = RemoteLockConnection::attach(transport, "CHAOS_LOCK").unwrap();
        let entry = lock.hash_resource(b"RES-1");
        assert!(lock.request_lock(entry, LockMode::Exclusive).unwrap().is_granted());
        assert!(proxy.frames() >= 4, "attach + request, each a round trip");
    }

    #[test]
    fn garbled_frame_surfaces_as_interface_control_check() {
        let (addr, _cf) = spawn_cf_server();
        // Frames 0..=3: attach round trip + first request round trip.
        // Garble frame 5 — the response to the second request.
        let plan = ChaosPlan::new().at(5, WireFault::Garble);
        let proxy = ChaosProxy::start(addr, plan).unwrap();
        let transport = TcpTransport::connect(proxy.addr()).unwrap();
        let transport: StdArc<dyn CfTransport> = StdArc::new(transport);
        let lock = RemoteLockConnection::attach(StdArc::clone(&transport), "CHAOS_LOCK").unwrap();
        lock.request_lock(lock.hash_resource(b"RES-A"), LockMode::Exclusive).unwrap();
        let err = lock.request_lock(lock.hash_resource(b"RES-B"), LockMode::Exclusive).unwrap_err();
        assert!(matches!(err, CfError::InterfaceControlCheck(_)), "got {err:?}");
        assert_eq!(proxy.applied(), vec![(5, WireFault::Garble)]);
    }

    #[test]
    fn partition_kills_and_heal_restores() {
        let (addr, _cf) = spawn_cf_server();
        let proxy = ChaosProxy::start(addr, ChaosPlan::new()).unwrap();
        let transport = StdArc::new(TcpTransport::connect(proxy.addr()).unwrap());
        let t: StdArc<dyn CfTransport> = StdArc::clone(&transport) as _;
        let lock = RemoteLockConnection::attach(t, "CHAOS_LOCK").unwrap();
        proxy.partition();
        assert!(proxy.is_partitioned());
        let err = lock.request_lock(lock.hash_resource(b"RES-P"), LockMode::Exclusive);
        assert!(err.is_err(), "partitioned link must fault");
        proxy.heal();
        assert!(!proxy.is_partitioned());
        // The old TcpTransport's stream is dead; a fresh dial through the
        // healed proxy works again.
        let t2: StdArc<dyn CfTransport> = StdArc::new(TcpTransport::connect(proxy.addr()).unwrap());
        let lock2 = RemoteLockConnection::attach(t2, "CHAOS_LOCK").unwrap();
        assert!(lock2.request_lock(lock2.hash_resource(b"RES-Q"), LockMode::Exclusive).unwrap().is_granted());
    }

    #[test]
    fn dropped_response_then_retry_recovers_with_policy() {
        let (addr, _cf) = spawn_cf_server();
        // Drop frame 3 (the response to the first lock request); the
        // retry policy's next attempt must succeed and the stale-input
        // drain must keep the stream in sync afterwards.
        let plan = ChaosPlan::new().at(3, WireFault::Drop);
        let proxy = ChaosProxy::start(addr, plan).unwrap();
        let transport = TcpTransport::connect(proxy.addr()).unwrap();
        transport.set_read_timeout(Some(Duration::from_millis(150))).unwrap();
        let transport: StdArc<dyn CfTransport> = StdArc::new(transport);
        let policy = StdArc::new(sysplex_core::RetryPolicy::seeded(0xBEEF).backoff_ms(1, 4));
        let lock = RemoteLockConnection::attach(StdArc::clone(&transport), "CHAOS_LOCK")
            .unwrap()
            .with_policy(policy);
        assert!(lock.request_lock(lock.hash_resource(b"RES-R"), LockMode::Exclusive).unwrap().is_granted());
        assert!(lock.request_lock(lock.hash_resource(b"RES-S"), LockMode::Exclusive).unwrap().is_granted());
        assert_eq!(proxy.applied(), vec![(3, WireFault::Drop)]);
    }
}
