//! Deterministic sysplex simulation harness.
//!
//! The paper's availability claims — fail-stop fencing on missed
//! heartbeats, peer recovery of retained locks, structure rebuild,
//! couple-data-set duplexing — are exercised elsewhere by integration
//! tests with hand-picked schedules. This crate generalizes them into
//! **seeded fault campaigns**: a virtual Sysplex Timer replaces wall
//! clocks, a SplitMix64-driven scheduler replaces thread timing, and a
//! trace oracle replaces per-test assertions. One `u64` seed fully
//! determines a campaign; a failing seed replays bit-for-bit and its
//! fault plan shrinks to a minimal copy-pasteable repro.
//!
//! The pieces:
//!
//! * [`rng::SplitMix64`] — the seeded decision stream.
//! * [`plan::FaultPlan`] — the fault-schedule DSL (link faults, system
//!   stalls, structure loss, CDS primary failure).
//! * [`campaign::CampaignSpec`] — builds a virtual-clock sysplex and runs
//!   the seeded workload/fault schedule from a single driver thread.
//! * [`oracle`] — five machine-verified invariants over the merged trace
//!   and final structure state.
//! * [`shrink`] — greedy fault-plan minimization and the
//!   [`shrink::run_checked`] test entry point.
//! * [`coverage`] — the campaign coverage signal: trace n-grams, oracle
//!   branches, and recovery-path branches hashed into a fixed
//!   [`coverage::CoverageMap`].
//! * [`mutate`] — seeded splice/shift/drop/add plan mutators that turn an
//!   interesting spec into its schedule-space neighbors.
//! * [`campaign::SweepEngine`] — the coverage-guided scheduler: maintains
//!   a corpus of novelty-finding specs and biases generation toward
//!   mutating them; workers pull specs and push coverage back.
//! * [`opsday`] — composed operations-day scenarios over real TCP
//!   (rolling restart, partition + heal, ARM restart storm), with
//!   recovery-time metrics and a lost-transaction reconciliation.
//!
//! Replaying a CI failure: the panic message names the seed; run
//! `CampaignSpec::from_seed(seed).run()` (or paste the printed minimized
//! spec) in any test and the identical trace comes back.

pub mod campaign;
pub mod chaos;
pub mod coverage;
pub mod mutate;
pub mod opsday;
pub mod oracle;
pub mod plan;
pub mod rng;
pub mod shrink;

pub use campaign::{CampaignOutcome, CampaignSpec, CampaignStats, CorpusEntry, SweepConfig, SweepEngine};
pub use chaos::{ChaosPlan, ChaosProxy, WireFault};
pub use coverage::{violation_bit, CoverageMap};
pub use opsday::{
    default_chaos_plans, partition_heal, partition_heal_with_plans, restart_storm, rolling_restart, run_all,
    scenarios_json, OpsDayConfig, ScenarioOutcome,
};
pub use oracle::{OracleConfig, Violation};
pub use plan::{Fault, FaultPlan};
pub use rng::SplitMix64;
pub use shrink::{run_checked, shrink as shrink_plan, ShrunkFailure};
