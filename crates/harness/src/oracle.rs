//! Trace oracle: machine-verifiable invariants over merged trace streams.
//!
//! The oracle replays the causally-ordered merge of every system's trace
//! ring ([`Tracer::snapshot_all`]) and checks five invariants that the
//! paper's correctness story rests on:
//!
//! 1. **Lock exclusivity** — between grant and release, an exclusive
//!    lock-table entry has exactly one holder ([`Violation::LockExclusivity`]).
//! 2. **No stale fast-path reads** — after a block's cross-invalidate, no
//!    system sees its local validity bit as valid without re-registering
//!    ([`Violation::StaleRead`]).
//! 3. **Exactly-once claiming** — a list entry leaves the ready header at
//!    most once, and (for drained campaigns) every enqueued entry is
//!    eventually claimed ([`Violation::DuplicateClaim`], [`Violation::UnclaimedEntry`]).
//! 4. **Ring accounting** — each ring's `retained == emitted - dropped`
//!    and its snapshot decodes exactly `retained` records
//!    ([`Violation::RingAccounting`]).
//! 5. **Recovery completeness** — every persistent lock record belongs to
//!    a connector that is attached or failed-persistent awaiting recovery;
//!    completed recoveries leak nothing ([`Violation::OrphanLockRecord`]).
//!
//! The trace checks assume the causal merge of a single-driver (or
//! quiesced) run: events appear in `seq` order and `seq` order is the
//! operation order. That is exactly what the campaign driver produces.

use std::collections::HashMap;
use sysplex_core::lock::LockStructure;
use sysplex_core::trace::{TraceEvent, TraceRecord, Tracer};

/// One invariant violation, with enough context to debug from the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Invariant 1: an incompatible lock grant while the entry was held.
    LockExclusivity {
        /// Interned structure id.
        structure: u32,
        /// Lock-table entry.
        entry: u64,
        /// Connector already holding the entry.
        holder: u8,
        /// Connector that was (wrongly) granted.
        granted: u8,
        /// Sequence number of the offending grant.
        seq: u64,
    },
    /// Invariant 2: a fast-path read of a block after its cross-invalidate
    /// with no re-registration in between.
    StaleRead {
        /// System that read stale data.
        system: u8,
        /// Block-name digest.
        block: u64,
        /// Sequence number of the stale local-vector check.
        seq: u64,
    },
    /// Invariant 3: a ready-header entry claimed twice.
    DuplicateClaim {
        /// Entry id.
        entry: u64,
        /// Sequence number of the first claim.
        first_seq: u64,
        /// Sequence number of the duplicate claim.
        second_seq: u64,
    },
    /// Invariant 3 (drained campaigns): an enqueued entry never claimed.
    UnclaimedEntry {
        /// Entry id.
        entry: u64,
        /// Sequence number of the enqueue.
        enqueue_seq: u64,
    },
    /// Invariant 4: a trace ring's books don't balance.
    RingAccounting {
        /// System id of the ring.
        system: u8,
        /// `emitted - dropped` per the counters.
        retained: u64,
        /// Records actually decodable from the ring.
        snapshot_len: u64,
    },
    /// Invariant 5: a persistent lock record owned by a connector that is
    /// neither attached nor awaiting recovery.
    OrphanLockRecord {
        /// Resource name bytes.
        resource: Vec<u8>,
        /// Raw connector id owning the orphan.
        conn: u8,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::LockExclusivity { structure, entry, holder, granted, seq } => write!(
                f,
                "lock exclusivity: entry {entry} of structure {structure} granted to conn {granted} \
                 while held by conn {holder} (seq {seq})"
            ),
            Violation::StaleRead { system, block, seq } => write!(
                f,
                "stale read: system {system} saw block {block:#x} locally valid after its \
                 cross-invalidate (seq {seq})"
            ),
            Violation::DuplicateClaim { entry, first_seq, second_seq } => write!(
                f,
                "duplicate claim: list entry {entry} claimed at seq {first_seq} and again at seq \
                 {second_seq}"
            ),
            Violation::UnclaimedEntry { entry, enqueue_seq } => {
                write!(f, "unclaimed entry: list entry {entry} (enqueued at seq {enqueue_seq}) never claimed")
            }
            Violation::RingAccounting { system, retained, snapshot_len } => write!(
                f,
                "ring accounting: system {system} retained counter says {retained} but snapshot \
                 decodes {snapshot_len} records"
            ),
            Violation::OrphanLockRecord { resource, conn } => write!(
                f,
                "orphan lock record: resource {resource:02x?} owned by conn {conn}, which is neither \
                 active nor failed-persistent"
            ),
        }
    }
}

/// How the trace checks interpret list traffic.
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleConfig {
    /// The list header that holds ready (unclaimed) work. Claims from any
    /// other header are recovery requeues and reset the claim state.
    pub ready_header: u64,
    /// When true, every entry enqueued on the ready header must have been
    /// claimed by the end of the trace (the campaign drained its queues).
    pub expect_drained: bool,
}

/// Run invariants 1-3 over a causally-ordered record stream.
pub fn check_trace(records: &[TraceRecord], config: OracleConfig) -> Vec<Violation> {
    let mut violations = Vec::new();
    check_lock_exclusivity(records, &mut violations);
    check_no_stale_reads(records, &mut violations);
    check_claim_once(records, config, &mut violations);
    violations
}

/// Invariant 1. Holder sets are reconstructed from grant/release events
/// only, so untraced interest (recovery override, rebuild repopulation)
/// makes the check lenient, never false-positive.
fn check_lock_exclusivity(records: &[TraceRecord], out: &mut Vec<Violation>) {
    // (structure, entry) -> conn -> holds exclusively
    let mut held: HashMap<(u32, u64), HashMap<u8, bool>> = HashMap::new();
    for r in records {
        match r.event {
            // A local re-grant is a grant for exclusivity purposes: the
            // IRLM served it from cached sole CF interest, so it claims
            // exactly what a CF-synchronous grant claims and must be held
            // to the same invariant.
            TraceEvent::LockGrant { entry, conn, exclusive }
            | TraceEvent::LockLocalRegrant { entry, conn, exclusive } => {
                let holders = held.entry((r.structure, entry)).or_default();
                let conflict =
                    holders.iter().find(|(c, ex)| **c != conn && (exclusive || **ex)).map(|(c, _)| *c);
                if let Some(holder) = conflict {
                    out.push(Violation::LockExclusivity {
                        structure: r.structure,
                        entry,
                        holder,
                        granted: conn,
                        seq: r.seq,
                    });
                }
                holders.insert(conn, exclusive);
            }
            TraceEvent::LockRelease { entry: u64::MAX, conn } => {
                // Release-all: normal detach or recovery completion.
                for ((s, _), holders) in held.iter_mut() {
                    if *s == r.structure {
                        holders.remove(&conn);
                    }
                }
            }
            TraceEvent::LockRelease { entry, conn } => {
                if let Some(holders) = held.get_mut(&(r.structure, entry)) {
                    holders.remove(&conn);
                }
            }
            _ => {}
        }
    }
}

/// Invariant 2. A cross-invalidate of block B by system W makes B stale
/// for every other system until that system re-registers; a local-vector
/// check that still reports "valid" in the stale window is a violation.
/// Coherency is a per-structure protocol, so all state is keyed by
/// (structure, block): a duplexed secondary's mirror writes invalidate
/// only readers registered on the secondary, not the primary's. Checks
/// with an unknown block digest (0) are skipped.
fn check_no_stale_reads(records: &[TraceRecord], out: &mut Vec<Violation>) {
    // (structure, block) -> (xi seq, writing system)
    let mut last_xi: HashMap<(u32, u64), (u64, u8)> = HashMap::new();
    // (structure, system, block) -> registration seq
    let mut last_reg: HashMap<(u32, u8, u64), u64> = HashMap::new();
    for r in records {
        match r.event {
            TraceEvent::CrossInvalidate { block, .. } => {
                last_xi.insert((r.structure, block), (r.seq, r.system));
            }
            TraceEvent::CacheRegister { block, .. } => {
                last_reg.insert((r.structure, r.system, block), r.seq);
            }
            TraceEvent::LocalVectorCheck { block, valid: true } if block != 0 => {
                if let Some(&(xi_seq, writer)) = last_xi.get(&(r.structure, block)) {
                    let registered_after =
                        last_reg.get(&(r.structure, r.system, block)).is_some_and(|&reg| reg > xi_seq);
                    if writer != r.system && !registered_after {
                        out.push(Violation::StaleRead { system: r.system, block, seq: r.seq });
                    }
                }
            }
            _ => {}
        }
    }
}

/// Invariant 3. Entry ids are never reused, so a ready-header entry may
/// be claimed at most once — unless a recovery requeue (a claim from an
/// in-flight header) put it back first.
fn check_claim_once(records: &[TraceRecord], config: OracleConfig, out: &mut Vec<Violation>) {
    // entry -> seq of its live claim (None = on the ready list)
    let mut claimed: HashMap<u64, Option<u64>> = HashMap::new();
    let mut enqueued: Vec<(u64, u64)> = Vec::new(); // (entry, seq)
    for r in records {
        match r.event {
            TraceEvent::ListEnqueue { header, entry } if header == config.ready_header => {
                enqueued.push((entry, r.seq));
            }
            TraceEvent::ListClaim { header, entry } if entry != 0 => {
                if header == config.ready_header {
                    if let Some(Some(first_seq)) = claimed.insert(entry, Some(r.seq)) {
                        out.push(Violation::DuplicateClaim { entry, first_seq, second_seq: r.seq });
                    }
                } else {
                    // Claim off an in-flight header: a peer requeued the
                    // dead consumer's work back to ready.
                    claimed.insert(entry, None);
                }
            }
            _ => {}
        }
    }
    if config.expect_drained {
        for (entry, enqueue_seq) in enqueued {
            if !matches!(claimed.get(&entry), Some(Some(_))) {
                out.push(Violation::UnclaimedEntry { entry, enqueue_seq });
            }
        }
    }
}

/// Invariant 4: per-ring accounting, checked against live counters. Only
/// meaningful when the sysplex is quiescent (no emitter mid-push).
pub fn check_rings(tracer: &Tracer) -> Vec<Violation> {
    let mut out = Vec::new();
    for system in tracer.active_systems() {
        let retained = tracer.retained(system);
        if retained != tracer.emitted(system) - tracer.dropped(system) {
            out.push(Violation::RingAccounting { system, retained, snapshot_len: u64::MAX });
            continue;
        }
        let snapshot_len = tracer.snapshot(system).len() as u64;
        if snapshot_len != retained {
            out.push(Violation::RingAccounting { system, retained, snapshot_len });
        }
    }
    out
}

/// Invariant 5: persistent record data vs connector state. After every
/// recovery completes, no record may belong to a connector that is
/// neither attached nor failed-persistent.
pub fn check_lock_structure(lock: &LockStructure) -> Vec<Violation> {
    let live = lock.active_mask() | lock.failed_persistent_mask();
    lock.records_snapshot()
        .into_iter()
        .filter(|(_, conn, _)| live & (1u32 << *conn) == 0)
        .map(|(resource, conn, _)| Violation::OrphanLockRecord { resource, conn })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, system: u8, structure: u32, event: TraceEvent) -> TraceRecord {
        TraceRecord { seq, tod_us: seq, system, structure, event }
    }

    #[test]
    fn clean_lock_sequence_passes() {
        let records = vec![
            rec(1, 0, 7, TraceEvent::LockGrant { entry: 9, conn: 0, exclusive: true }),
            rec(2, 0, 7, TraceEvent::LockRelease { entry: 9, conn: 0 }),
            rec(3, 1, 7, TraceEvent::LockGrant { entry: 9, conn: 1, exclusive: true }),
            rec(4, 1, 7, TraceEvent::LockRelease { entry: u64::MAX, conn: 1 }),
            rec(5, 0, 7, TraceEvent::LockGrant { entry: 9, conn: 0, exclusive: false }),
            rec(6, 1, 7, TraceEvent::LockGrant { entry: 9, conn: 1, exclusive: false }),
        ];
        assert!(check_trace(&records, OracleConfig::default()).is_empty());
    }

    #[test]
    fn double_exclusive_grant_is_flagged() {
        let records = vec![
            rec(1, 0, 7, TraceEvent::LockGrant { entry: 3, conn: 0, exclusive: true }),
            rec(2, 1, 7, TraceEvent::LockGrant { entry: 3, conn: 1, exclusive: true }),
        ];
        let v = check_trace(&records, OracleConfig::default());
        assert!(matches!(v.as_slice(), [Violation::LockExclusivity { entry: 3, holder: 0, granted: 1, .. }]));
    }

    #[test]
    fn shared_grant_during_exclusive_is_flagged_but_not_vice_versa_after_release() {
        let records = vec![
            rec(1, 0, 7, TraceEvent::LockGrant { entry: 3, conn: 0, exclusive: true }),
            rec(2, 1, 7, TraceEvent::LockGrant { entry: 3, conn: 1, exclusive: false }),
        ];
        assert_eq!(check_trace(&records, OracleConfig::default()).len(), 1);
    }

    #[test]
    fn local_regrant_is_held_to_the_exclusivity_invariant() {
        // Lazy release retains the hold; a local re-grant by the same
        // conn is clean.
        let good = vec![
            rec(1, 0, 7, TraceEvent::LockGrant { entry: 3, conn: 0, exclusive: true }),
            rec(2, 0, 7, TraceEvent::LockLazyRelease { entry: 3, conn: 0 }),
            rec(3, 0, 7, TraceEvent::LockLocalRegrant { entry: 3, conn: 0, exclusive: true }),
            rec(4, 0, 7, TraceEvent::LockRelease { entry: 3, conn: 0 }),
        ];
        assert!(check_trace(&good, OracleConfig::default()).is_empty());

        // A re-grant claiming an entry someone else holds exclusively is
        // exactly as damning as a double CF grant.
        let bad = vec![
            rec(1, 0, 7, TraceEvent::LockGrant { entry: 3, conn: 0, exclusive: true }),
            rec(2, 1, 7, TraceEvent::LockLocalRegrant { entry: 3, conn: 1, exclusive: true }),
        ];
        let v = check_trace(&bad, OracleConfig::default());
        assert!(matches!(v.as_slice(), [Violation::LockExclusivity { holder: 0, granted: 1, .. }]));
    }

    #[test]
    fn same_conn_upgrade_is_not_a_conflict() {
        let records = vec![
            rec(1, 0, 7, TraceEvent::LockGrant { entry: 3, conn: 0, exclusive: false }),
            rec(2, 0, 7, TraceEvent::LockGrant { entry: 3, conn: 0, exclusive: true }),
        ];
        assert!(check_trace(&records, OracleConfig::default()).is_empty());
    }

    #[test]
    fn stale_read_detected_and_reregistration_clears_it() {
        let bad = vec![
            rec(1, 1, 5, TraceEvent::CacheRegister { block: 0xAA, hit: true }),
            rec(2, 0, 5, TraceEvent::CrossInvalidate { block: 0xAA, invalidated: 1 }),
            rec(3, 1, 5, TraceEvent::LocalVectorCheck { block: 0xAA, valid: true }),
        ];
        let v = check_trace(&bad, OracleConfig::default());
        assert!(matches!(v.as_slice(), [Violation::StaleRead { system: 1, block: 0xAA, .. }]));

        let good = vec![
            rec(1, 1, 5, TraceEvent::CacheRegister { block: 0xAA, hit: true }),
            rec(2, 0, 5, TraceEvent::CrossInvalidate { block: 0xAA, invalidated: 1 }),
            rec(3, 1, 5, TraceEvent::CacheRegister { block: 0xAA, hit: true }),
            rec(4, 1, 5, TraceEvent::LocalVectorCheck { block: 0xAA, valid: true }),
        ];
        assert!(check_trace(&good, OracleConfig::default()).is_empty());
    }

    #[test]
    fn writers_own_check_is_not_stale() {
        let records = vec![
            rec(1, 0, 5, TraceEvent::CrossInvalidate { block: 0xBB, invalidated: 0 }),
            rec(2, 0, 5, TraceEvent::LocalVectorCheck { block: 0xBB, valid: true }),
        ];
        assert!(check_trace(&records, OracleConfig::default()).is_empty());
    }

    #[test]
    fn duplicate_claim_detected_requeue_resets() {
        let cfg = OracleConfig::default();
        let dup = vec![
            rec(1, 0, 2, TraceEvent::ListEnqueue { header: 0, entry: 10 }),
            rec(2, 1, 2, TraceEvent::ListClaim { header: 0, entry: 10 }),
            rec(3, 2, 2, TraceEvent::ListClaim { header: 0, entry: 10 }),
        ];
        let v = check_trace(&dup, cfg);
        assert!(matches!(v.as_slice(), [Violation::DuplicateClaim { entry: 10, .. }]));

        // Requeue from a dead consumer's in-flight header legitimizes a
        // second ready-header claim.
        let requeued = vec![
            rec(1, 0, 2, TraceEvent::ListEnqueue { header: 0, entry: 10 }),
            rec(2, 1, 2, TraceEvent::ListClaim { header: 0, entry: 10 }),
            rec(3, 2, 2, TraceEvent::ListClaim { header: 4, entry: 10 }),
            rec(4, 2, 2, TraceEvent::ListClaim { header: 0, entry: 10 }),
        ];
        assert!(check_trace(&requeued, cfg).is_empty());
    }

    #[test]
    fn drained_campaign_requires_every_entry_claimed() {
        let cfg = OracleConfig { ready_header: 0, expect_drained: true };
        let records = vec![
            rec(1, 0, 2, TraceEvent::ListEnqueue { header: 0, entry: 10 }),
            rec(2, 0, 2, TraceEvent::ListEnqueue { header: 0, entry: 11 }),
            rec(3, 1, 2, TraceEvent::ListClaim { header: 0, entry: 10 }),
        ];
        let v = check_trace(&records, cfg);
        assert!(matches!(v.as_slice(), [Violation::UnclaimedEntry { entry: 11, .. }]));
    }

    #[test]
    fn failed_claims_are_ignored() {
        let records = vec![rec(1, 0, 2, TraceEvent::ListClaim { header: 0, entry: 0 })];
        assert!(check_trace(&records, OracleConfig::default()).is_empty());
    }
}
