//! Named campaigns: the hand-picked schedules the old integration tests
//! used (failover, structure rebuild, duplexing, CDS hot-switch),
//! re-expressed as scripted fault plans under the deterministic driver
//! so the trace oracle — not per-test assertions — judges the outcome.

use sysplex_harness::{run_checked, CampaignSpec, Fault, FaultPlan};

fn spec(name: &str, seed: u64, members: u8, steps: u64, plan: FaultPlan, duplex: bool) -> CampaignSpec {
    CampaignSpec { name: name.into(), seed, members, steps, plan, duplex }
}

#[test]
fn campaign_fence_and_peer_recovery() {
    // One system stalls past the SFM threshold (60 steps): the heartbeat
    // monitor must fence it and a surviving peer must recover its
    // retained locks, while a second, near-miss stall must NOT fence.
    let plan = FaultPlan::new()
        .at(40, Fault::SystemStall { system: 1, steps: 120 })
        .at(55, Fault::SystemStall { system: 2, steps: 6 });
    let outcome = run_checked(spec("fence-and-recovery", 0xFA11, 3, 400, plan, false));
    assert_eq!(outcome.stats.fences, 1, "exactly the fatal stall fences: {:?}", outcome.stats);
    assert_eq!(outcome.stats.recoveries, 1, "survivor recovers the fenced peer");
    assert!(outcome.stats.commits > 0, "survivors keep committing through the fence");
}

#[test]
fn campaign_structure_rebuild() {
    // Simplex CF dies mid-workload: the group rebuilds its structures
    // into a freshly added facility from in-storage state and the
    // workload carries on against the new structure.
    let plan = FaultPlan::new().at(120, Fault::StructureLoss);
    let outcome = run_checked(spec("structure-rebuild", 0x4EB1, 3, 400, plan, false));
    assert_eq!(outcome.stats.rebuilds, 1, "{:?}", outcome.stats);
    assert_eq!(outcome.stats.fences, 0, "a CF loss must not fence any system");
    assert!(outcome.stats.commits > 20);
}

#[test]
fn campaign_duplexing_failover() {
    // Duplexed pair: losing the primary fails over to the hot secondary
    // instead of rebuilding.
    let plan = FaultPlan::new().at(120, Fault::StructureLoss);
    let outcome = run_checked(spec("duplex-failover", 0xD0B1, 3, 400, plan, true));
    assert_eq!(outcome.stats.failovers, 1, "{:?}", outcome.stats);
    assert_eq!(outcome.stats.rebuilds, 0, "duplexing replaces the rebuild");
    assert!(outcome.stats.commits > 20);
}

#[test]
fn campaign_cds_hot_switch() {
    // Primary couple data set dies twice; each failure hot-switches to
    // the alternate and re-duplexes onto a replacement volume, with no
    // effect on heartbeats (no spurious fence).
    let plan = FaultPlan::new().at(80, Fault::CdsPrimaryFailure).at(220, Fault::CdsPrimaryFailure);
    let outcome = run_checked(spec("cds-hot-switch", 0xCD50, 2, 400, plan, false));
    assert_eq!(outcome.stats.cds_switches, 2, "{:?}", outcome.stats);
    assert_eq!(outcome.stats.fences, 0);
}

#[test]
fn campaign_link_noise_is_survivable() {
    // Transient link faults (delay, timeout, interface-control check) are
    // absorbed by the subchannel retry path without losing data or
    // fencing anyone.
    let plan = FaultPlan::new()
        .at(30, Fault::LinkDelayUs(400))
        .at(90, Fault::LinkTimeout)
        .at(150, Fault::InterfaceControlCheck);
    let outcome = run_checked(spec("link-noise", 0x11CC, 3, 300, plan, false));
    assert_eq!(outcome.stats.faults_applied, 3, "{:?}", outcome.stats);
    assert_eq!(outcome.stats.fences, 0);
    assert!(outcome.stats.commits > 20);
}

#[test]
fn campaign_kitchen_sink() {
    // Everything at once on a duplexed 4-way: fence + peer recovery,
    // CF failover, CDS hot-switch, and link noise in one run, with the
    // oracle checking the merged trace end to end.
    let plan = FaultPlan::new()
        .at(25, Fault::LinkTimeout)
        .at(50, Fault::SystemStall { system: 3, steps: 130 })
        .at(140, Fault::StructureLoss)
        .at(200, Fault::CdsPrimaryFailure)
        .at(260, Fault::SystemStall { system: 1, steps: 8 });
    let outcome = run_checked(spec("kitchen-sink", 0x51CC, 4, 450, plan, true));
    assert_eq!(outcome.stats.fences, 1, "{:?}", outcome.stats);
    assert_eq!(outcome.stats.recoveries, 1);
    assert_eq!(outcome.stats.failovers, 1);
    assert_eq!(outcome.stats.cds_switches, 1);
    assert!(outcome.stats.commits > 20);
}
