//! A campaign is a pure function of its seed: running the same spec
//! twice must produce bit-identical merged traces (ISSUE acceptance
//! criterion). The canonical trace masks the single wall-clock-derived
//! payload field (`CmdCompleted::latency_ns`), so any surviving
//! difference is a real scheduling divergence.

use sysplex_harness::CampaignSpec;

#[test]
fn baseline_campaign_is_fault_free_and_passes_oracle() {
    let outcome = CampaignSpec::baseline(0xB05E).run();
    assert!(outcome.passed(), "violations: {:?}", outcome.violations);
    assert!(outcome.stats.commits > 20, "workload barely ran: {:?}", outcome.stats);
    assert_eq!(outcome.stats.fences, 0, "fault-free run must not fence anyone");
    assert!(!outcome.records.is_empty());
}

#[test]
fn same_seed_replays_bit_for_bit() {
    let a = CampaignSpec::from_seed(0xD5EED).run();
    let b = CampaignSpec::from_seed(0xD5EED).run();
    assert_eq!(a.digest, b.digest, "same seed, different trace digest");

    // Diff the canonical lines so a determinism regression names the
    // first diverging record instead of just two hashes.
    let (la, lb) = (a.canonical_lines(), b.canonical_lines());
    for (i, (x, y)) in la.iter().zip(lb.iter()).enumerate() {
        assert_eq!(x, y, "traces diverge at record {i}");
    }
    assert_eq!(la.len(), lb.len(), "traces have different lengths");
    assert_eq!(a.stats, b.stats, "same seed, different campaign stats");
}

#[test]
fn different_seeds_diverge() {
    let a = CampaignSpec::baseline(1).run();
    let b = CampaignSpec::baseline(2).run();
    // Same (empty) fault plan, different workload stream: the traces
    // must differ or the seed isn't actually feeding the scheduler.
    assert_ne!(a.digest, b.digest);
}

#[test]
fn seeded_specs_are_reproducible() {
    // from_seed derives members/steps/duplex/plan from the seed alone.
    let a = CampaignSpec::from_seed(42);
    let b = CampaignSpec::from_seed(42);
    assert_eq!(a.members, b.members);
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.duplex, b.duplex);
    assert_eq!(a.plan, b.plan);
}
