//! Negative tests: prove each oracle invariant actually fires.
//!
//! A trace oracle that never fails is worthless, so every invariant gets
//! a known-bad run built from the `test-hooks`-gated fault hooks in the
//! CF structures themselves (this crate's dev-dependency on itself turns
//! the feature on). Each test drives the *real* structure code through a
//! protocol violation the hardware model normally forbids, then asserts
//! the oracle convicts it.

use sysplex_core::cache::{BlockName, CacheParams, WriteKind};
use sysplex_core::lock::{DisconnectMode, LockMode, LockParams};
use sysplex_core::trace::TraceEvent;
use sysplex_core::{CacheConnection, CfConfig, CouplingFacility, LockConnection, SystemId, Tracer};
use sysplex_harness::oracle::{check_lock_structure, check_rings, check_trace, OracleConfig};
use sysplex_harness::Violation;

fn cf() -> std::sync::Arc<CouplingFacility> {
    let cf = CouplingFacility::new(CfConfig::named("CFNEG"));
    cf.tracer().enable();
    cf
}

/// Invariant (a): two exclusive grants on one lock entry.
#[test]
fn oracle_convicts_double_exclusive_grant() {
    let cf = cf();
    let lock = cf.allocate_lock_structure("LOCK1", LockParams::with_entries(64)).unwrap();
    let a = LockConnection::attach(&lock, cf.subchannel().with_system(SystemId(0))).unwrap();
    let b = LockConnection::attach(&lock, cf.subchannel().with_system(SystemId(1))).unwrap();

    a.request_lock(5, LockMode::Exclusive).unwrap();
    // Sanity: without the hook the structure correctly blocks conn b, so
    // a clean trace passes.
    assert!(check_trace(&cf.tracer().snapshot_all(), OracleConfig::default()).is_empty());

    // Arm the known-bad path: the lock table grants regardless of
    // existing incompatible interest (a broken compatibility matrix).
    lock.arm_force_grant();
    b.request_lock(5, LockMode::Exclusive).unwrap();

    let violations = check_trace(&cf.tracer().snapshot_all(), OracleConfig::default());
    assert!(
        violations.iter().any(|v| matches!(v, Violation::LockExclusivity { entry: 5, .. })),
        "expected a LockExclusivity violation, got {violations:?}"
    );
}

/// Invariant (b): a cross-invalidate that fails to flip the reader's
/// local vector bit leaves a stale fast-path read behind.
#[test]
fn oracle_convicts_stale_read_after_lost_xi() {
    let cf = cf();
    let cache = cf.allocate_cache_structure("CACHE1", CacheParams::store_in(64)).unwrap();
    let writer = CacheConnection::attach(&cache, cf.subchannel().with_system(SystemId(0)), 16).unwrap();
    let reader = CacheConnection::attach(&cache, cf.subchannel().with_system(SystemId(1)), 16).unwrap();
    let name = BlockName::from_bytes(b"BLK1");

    writer.write_invalidate(name, b"v1", WriteKind::CleanData).unwrap();
    reader.register_read(name, 3).unwrap();
    assert!(reader.is_valid_block(3, name));
    assert!(check_trace(&cf.tracer().snapshot_all(), OracleConfig::default()).is_empty());

    // Arm the known-bad path: the next write's cross-invalidate is
    // recorded in the directory (and traced) but never reaches the
    // reader's local vector — a lost XI signal.
    cache.arm_lose_xi();
    writer.write_invalidate(name, b"v2", WriteKind::CleanData).unwrap();

    // The reader's fast path still says "valid": a stale read.
    assert!(reader.is_valid_block(3, name), "hook should have kept the bit set");
    let violations = check_trace(&cf.tracer().snapshot_all(), OracleConfig::default());
    assert!(
        violations.iter().any(|v| matches!(v, Violation::StaleRead { system: 1, .. })),
        "expected a StaleRead violation, got {violations:?}"
    );
}

/// Invariant (c): one ready-list entry dispatched to two consumers.
/// The known-bad schedule: a consumer "returns" its claimed entry with a
/// bare move instead of the claim protocol, so the next claim_first
/// hands the same entry out a second time with no requeue on record.
#[test]
fn oracle_convicts_double_claim() {
    use sysplex_core::list::{DequeueEnd, ListParams, LockCondition, WritePosition};
    use sysplex_core::ListConnection;

    let cf = cf();
    let list = cf.allocate_list_structure("LIST1", ListParams::with_headers(4)).unwrap();
    let conn = ListConnection::attach(&list, cf.subchannel().with_system(SystemId(0)), 8).unwrap();

    let id = conn.enqueue(0, 1, b"work", WritePosition::Tail, LockCondition::None).unwrap();
    let claimed = conn.claim_first(0, 1, DequeueEnd::Head, WritePosition::Tail, LockCondition::None).unwrap();
    assert_eq!(claimed.unwrap().id, id);

    // Known-bad: sneak the entry back onto the ready header with a raw
    // move (no traced claim from the in-flight header), then claim again.
    conn.move_to(id, 0, WritePosition::Tail, LockCondition::None).unwrap();
    let again = conn.claim_first(0, 1, DequeueEnd::Head, WritePosition::Tail, LockCondition::None).unwrap();
    assert_eq!(again.unwrap().id, id);

    let violations = check_trace(&cf.tracer().snapshot_all(), OracleConfig::default());
    assert!(
        violations.iter().any(|v| matches!(v, Violation::DuplicateClaim { .. })),
        "expected a DuplicateClaim violation, got {violations:?}"
    );
}

/// Invariant (c), drained flavor: an enqueued entry nobody ever claims.
#[test]
fn oracle_convicts_unclaimed_entry_when_drain_expected() {
    use sysplex_core::list::{ListParams, LockCondition, WritePosition};
    use sysplex_core::ListConnection;

    let cf = cf();
    let list = cf.allocate_list_structure("LIST2", ListParams::with_headers(4)).unwrap();
    let conn = ListConnection::attach(&list, cf.subchannel().with_system(SystemId(0)), 8).unwrap();
    conn.enqueue(0, 1, b"orphan", WritePosition::Tail, LockCondition::None).unwrap();

    let config = OracleConfig { ready_header: 0, expect_drained: true };
    let violations = check_trace(&cf.tracer().snapshot_all(), config);
    assert!(
        violations.iter().any(|v| matches!(v, Violation::UnclaimedEntry { .. })),
        "expected an UnclaimedEntry violation, got {violations:?}"
    );
}

/// Invariant (d): ring retention accounting. A torn slot (writer died
/// mid-store) makes the decoded snapshot shorter than the retained
/// counter claims.
#[test]
fn oracle_convicts_torn_trace_slot() {
    let tracer = Tracer::new();
    tracer.enable();
    for i in 0..5u64 {
        tracer.emit(2, 1, TraceEvent::ListEnqueue { header: 0, entry: i + 1 });
    }
    assert!(check_rings(&tracer).is_empty(), "intact ring must pass");

    tracer.poison_slot(2, 1);
    let violations = check_rings(&tracer);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::RingAccounting { system: 2, retained: 5, snapshot_len: 4 })),
        "expected a RingAccounting violation, got {violations:?}"
    );
}

/// Invariant (e): post-recovery lock-structure consistency. A recovery
/// that frees the dead peer's slot but leaks its record data leaves
/// orphan records owned by a connector that no longer exists.
#[test]
fn oracle_convicts_leaky_recovery() {
    let cf = cf();
    let lock = cf.allocate_lock_structure("LOCK2", LockParams::with_entries(64)).unwrap();
    let survivor = LockConnection::attach(&lock, cf.subchannel().with_system(SystemId(0))).unwrap();
    let victim = LockConnection::attach(&lock, cf.subchannel().with_system(SystemId(1))).unwrap();

    let entry = victim.hash_resource(b"RES1");
    victim.request_lock(entry, LockMode::Exclusive).unwrap();
    victim.write_lock_record(b"RES1", LockMode::Exclusive, b"txn").unwrap();
    // System failure: interest and records are retained failed-persistent.
    victim.detach(DisconnectMode::Abnormal).unwrap();
    assert!(check_lock_structure(&lock).is_empty(), "failed-persistent records are legitimate");

    // Known-bad: recovery completion frees the slot but leaks the
    // records instead of purging them.
    lock.arm_leaky_recovery();
    survivor.recovery_complete_for(victim.conn_id()).unwrap();

    let violations = check_lock_structure(&lock);
    assert!(
        violations.iter().any(|v| matches!(v, Violation::OrphanLockRecord { .. })),
        "expected an OrphanLockRecord violation, got {violations:?}"
    );
}
