//! Deterministic interleaving tests.
//!
//! The old suite probed these races with sleeps and hoped the scheduler
//! cooperated. Here every ordering is driven explicitly: the trace ring's
//! seqlock is exercised through wrap-around and a simulated torn writer
//! (the `test-hooks` poison), and the list claim path is walked through
//! both sides of the claim-vs-delete and claim-vs-claim races, with the
//! trace oracle auditing the result.

use sysplex_core::list::{DequeueEnd, ListParams, LockCondition, WritePosition};
use sysplex_core::trace::TraceEvent;
use sysplex_core::{CfConfig, CouplingFacility, ListConnection, SystemId, Tracer};
use sysplex_harness::oracle::{check_rings, check_trace, OracleConfig};

// ---------------------------------------------------------------- ring --

/// Wrap-around keeps exactly the newest `capacity` records, in order,
/// with `retained == emitted - dropped` intact.
#[test]
fn ring_wrap_keeps_newest_records_in_order() {
    let tracer = Tracer::new();
    tracer.enable_with_capacity(8);
    for i in 0..20u64 {
        tracer.emit(0, 1, TraceEvent::ListEnqueue { header: 0, entry: i + 1 });
    }
    assert_eq!(tracer.emitted(0), 20);
    assert_eq!(tracer.dropped(0), 12);
    assert_eq!(tracer.retained(0), 8);

    let snap = tracer.snapshot(0);
    assert_eq!(snap.len(), 8, "snapshot holds exactly the resident window");
    let entries: Vec<u64> = snap
        .iter()
        .map(|r| match r.event {
            TraceEvent::ListEnqueue { entry, .. } => entry,
            other => panic!("unexpected event {other:?}"),
        })
        .collect();
    assert_eq!(entries, (13..=20).collect::<Vec<u64>>(), "oldest survivor is entry 13");
    assert!(check_rings(&tracer).is_empty());
}

/// A reader that holds a position across a writer wrap must see the slot
/// rejected, not a torn mix of old and new words. The poison hook pins
/// the seqlock in its mid-write (odd stamp) state — exactly what a
/// concurrent reader can observe — and the snapshot must skip it while
/// decoding every intact neighbor.
#[test]
fn torn_slot_is_skipped_without_garbling_neighbors() {
    let tracer = Tracer::new();
    tracer.enable_with_capacity(8);
    for i in 0..6u64 {
        tracer.emit(1, 1, TraceEvent::ListEnqueue { header: 0, entry: i + 1 });
    }
    tracer.poison_slot(1, 2); // the slot holding entry 3 is mid-write

    let snap = tracer.snapshot(1);
    let entries: Vec<u64> = snap
        .iter()
        .map(|r| match r.event {
            TraceEvent::ListEnqueue { entry, .. } => entry,
            other => panic!("unexpected event {other:?}"),
        })
        .collect();
    assert_eq!(entries, vec![1, 2, 4, 5, 6], "only the torn record is missing");
    // And the accounting invariant catches the loss.
    assert_eq!(check_rings(&tracer).len(), 1);
}

/// Sequence numbers survive the wrap: the merged view stays causally
/// ordered even when each ring lost a different amount of history.
#[test]
fn wrapped_rings_merge_in_causal_order() {
    let tracer = Tracer::new();
    tracer.enable_with_capacity(8);
    // Interleave two systems; system 0 emits 3x as much and wraps.
    for i in 0..12u64 {
        tracer.emit(0, 1, TraceEvent::ListEnqueue { header: 0, entry: 100 + i });
        tracer.emit(0, 1, TraceEvent::ListEnqueue { header: 0, entry: 200 + i });
        tracer.emit(0, 1, TraceEvent::ListEnqueue { header: 0, entry: 300 + i });
        tracer.emit(1, 1, TraceEvent::ListEnqueue { header: 0, entry: 400 + i });
    }
    let merged = tracer.snapshot_all();
    assert!(merged.windows(2).all(|w| w[0].seq < w[1].seq), "merge must be seq-sorted");
    assert_eq!(merged.len() as u64, tracer.retained(0) + tracer.retained(1));
}

// ---------------------------------------------------------------- list --

fn list_fixture() -> (std::sync::Arc<CouplingFacility>, ListConnection, ListConnection) {
    let cf = CouplingFacility::new(CfConfig::named("CFIL"));
    cf.tracer().enable();
    let list = cf.allocate_list_structure("Q", ListParams::with_headers(4)).unwrap();
    let a = ListConnection::attach(&list, cf.subchannel().with_system(SystemId(0)), 8).unwrap();
    let b = ListConnection::attach(&list, cf.subchannel().with_system(SystemId(1)), 8).unwrap();
    (cf, a, b)
}

fn claim(conn: &ListConnection) -> Option<u64> {
    conn.claim_first(0, 1, DequeueEnd::Head, WritePosition::Tail, LockCondition::None)
        .unwrap()
        .map(|e| e.id.0)
}

/// Ordering 1: the delete wins the race. The claimer must see an empty
/// ready list, not a dangling claim on a dead entry.
#[test]
fn delete_then_claim_yields_none() {
    let (cf, a, b) = list_fixture();
    let id = a.enqueue(0, 1, b"x", WritePosition::Tail, LockCondition::None).unwrap();
    a.delete(id, LockCondition::None).unwrap();
    assert_eq!(claim(&b), None, "claim after delete must find nothing");
    assert!(check_trace(&cf.tracer().snapshot_all(), OracleConfig::default()).is_empty());
}

/// Ordering 2: the claim wins. The loser's delete of the moved entry
/// still resolves (the entry id is global, not per-header), and the
/// entry is gone exactly once.
#[test]
fn claim_then_delete_resolves_cleanly() {
    let (cf, a, b) = list_fixture();
    let id = a.enqueue(0, 1, b"x", WritePosition::Tail, LockCondition::None).unwrap();
    assert_eq!(claim(&b), Some(id.0));
    a.delete(id, LockCondition::None).unwrap();
    assert_eq!(a.structure().entry_count(), 0);
    // A later delete of the same id must fail, not spin or double-free.
    assert!(a.delete(id, LockCondition::None).is_err());
    assert!(check_trace(&cf.tracer().snapshot_all(), OracleConfig::default()).is_empty());
}

/// Claim-vs-claim: two consumers racing for two entries get one each,
/// a third claim gets nothing, and the oracle sees no double dispatch.
#[test]
fn competing_claims_get_distinct_entries() {
    let (cf, a, b) = list_fixture();
    let id1 = a.enqueue(0, 1, b"one", WritePosition::Tail, LockCondition::None).unwrap();
    let id2 = a.enqueue(0, 2, b"two", WritePosition::Tail, LockCondition::None).unwrap();

    let got_a = claim(&a).unwrap();
    let got_b = claim(&b).unwrap();
    assert_ne!(got_a, got_b, "one entry dispatched to two consumers");
    assert_eq!(
        {
            let mut v = vec![got_a, got_b];
            v.sort_unstable();
            v
        },
        vec![id1.0.min(id2.0), id1.0.max(id2.0)]
    );
    assert_eq!(claim(&a), None, "nothing left to claim");
    assert!(check_trace(&cf.tracer().snapshot_all(), OracleConfig::default()).is_empty());
}

/// The recovery requeue ordering: victim claims, dies; a peer requeues
/// from the victim's in-flight header; the re-claim of the same entry is
/// NOT a duplicate dispatch (the requeue resets the oracle's claim state).
#[test]
fn requeue_then_reclaim_is_not_a_duplicate() {
    let (cf, a, b) = list_fixture();
    let id = a.enqueue(0, 1, b"x", WritePosition::Tail, LockCondition::None).unwrap();
    assert_eq!(claim(&b), Some(id.0)); // b claims onto header 1... and dies.

    // Peer recovery: move the orphan back to ready via the claim
    // protocol (traced claim from the in-flight header), then re-claim.
    let recovered =
        a.claim_first(1, 0, DequeueEnd::Head, WritePosition::Tail, LockCondition::None).unwrap().unwrap();
    assert_eq!(recovered.id, id);
    assert_eq!(claim(&a), Some(id.0));

    let violations = check_trace(&cf.tracer().snapshot_all(), OracleConfig::default());
    assert!(violations.is_empty(), "requeue must reset claim state: {violations:?}");
}
