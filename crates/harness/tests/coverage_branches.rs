//! Oracle-branch coverage: each known-bad path lights its own bit.
//!
//! The coverage map reserves one bit per oracle-violation arm (DESIGN.md
//! §12). If two arms ever hashed to the same bit — or an arm stopped
//! lighting its bit at all — the guided sweep would go blind to a whole
//! class of bug while still reporting healthy coverage. So this mirrors
//! the `oracle_negative` known-bad runs (built from the `test-hooks`
//! fault hooks) and asserts every one of them lights exactly its own
//! oracle-branch bit, and that the bits are pairwise distinct.

use sysplex_core::cache::{BlockName, CacheParams, WriteKind};
use sysplex_core::lock::{DisconnectMode, LockMode, LockParams};
use sysplex_core::trace::TraceEvent;
use sysplex_core::{CacheConnection, CfConfig, CouplingFacility, LockConnection, SystemId, Tracer};
use sysplex_harness::coverage::{branch, BRANCH_RESERVED};
use sysplex_harness::oracle::{check_lock_structure, check_rings, check_trace, OracleConfig};
use sysplex_harness::{CoverageMap, Violation};

const ORACLE_BRANCHES: [(&str, usize); 6] = [
    ("LockExclusivity", branch::LOCK_EXCLUSIVITY),
    ("StaleRead", branch::STALE_READ),
    ("DuplicateClaim", branch::DUPLICATE_CLAIM),
    ("UnclaimedEntry", branch::UNCLAIMED_ENTRY),
    ("RingAccounting", branch::RING_ACCOUNTING),
    ("OrphanLockRecord", branch::ORPHAN_LOCK_RECORD),
];

/// Which of the six oracle-branch bits a violation list lights.
fn lit(violations: &[Violation]) -> Vec<&'static str> {
    assert!(!violations.is_empty(), "known-bad run must convict");
    let mut map = CoverageMap::new();
    map.add_violations(violations);
    ORACLE_BRANCHES.iter().filter(|(_, bit)| map.get(*bit)).map(|(name, _)| *name).collect()
}

fn cf() -> std::sync::Arc<CouplingFacility> {
    let cf = CouplingFacility::new(CfConfig::named("CFCOV"));
    cf.tracer().enable();
    cf
}

#[test]
fn oracle_branch_bits_are_distinct_and_reserved() {
    for (i, (name_a, bit_a)) in ORACLE_BRANCHES.iter().enumerate() {
        assert!(*bit_a < BRANCH_RESERVED, "{name_a} bit must live in the reserved branch range");
        for (name_b, bit_b) in &ORACLE_BRANCHES[i + 1..] {
            assert_ne!(bit_a, bit_b, "{name_a} and {name_b} collide");
        }
    }
}

#[test]
fn force_grant_lights_only_lock_exclusivity() {
    let cf = cf();
    let lock = cf.allocate_lock_structure("LOCK1", LockParams::with_entries(64)).unwrap();
    let a = LockConnection::attach(&lock, cf.subchannel().with_system(SystemId(0))).unwrap();
    let b = LockConnection::attach(&lock, cf.subchannel().with_system(SystemId(1))).unwrap();
    a.request_lock(5, LockMode::Exclusive).unwrap();
    lock.arm_force_grant();
    b.request_lock(5, LockMode::Exclusive).unwrap();

    let violations = check_trace(&cf.tracer().snapshot_all(), OracleConfig::default());
    assert_eq!(lit(&violations), ["LockExclusivity"]);
}

#[test]
fn lost_xi_lights_only_stale_read() {
    let cf = cf();
    let cache = cf.allocate_cache_structure("CACHE1", CacheParams::store_in(64)).unwrap();
    let writer = CacheConnection::attach(&cache, cf.subchannel().with_system(SystemId(0)), 16).unwrap();
    let reader = CacheConnection::attach(&cache, cf.subchannel().with_system(SystemId(1)), 16).unwrap();
    let name = BlockName::from_bytes(b"BLK1");
    writer.write_invalidate(name, b"v1", WriteKind::CleanData).unwrap();
    reader.register_read(name, 3).unwrap();
    cache.arm_lose_xi();
    writer.write_invalidate(name, b"v2", WriteKind::CleanData).unwrap();
    // The stale fast-path read is what the oracle convicts.
    assert!(reader.is_valid_block(3, name), "hook should have kept the bit set");

    let violations = check_trace(&cf.tracer().snapshot_all(), OracleConfig::default());
    assert_eq!(lit(&violations), ["StaleRead"]);
}

#[test]
fn raw_move_double_claim_lights_only_duplicate_claim() {
    use sysplex_core::list::{DequeueEnd, ListParams, LockCondition, WritePosition};
    use sysplex_core::ListConnection;

    let cf = cf();
    let list = cf.allocate_list_structure("LIST1", ListParams::with_headers(4)).unwrap();
    let conn = ListConnection::attach(&list, cf.subchannel().with_system(SystemId(0)), 8).unwrap();
    let id = conn.enqueue(0, 1, b"work", WritePosition::Tail, LockCondition::None).unwrap();
    conn.claim_first(0, 1, DequeueEnd::Head, WritePosition::Tail, LockCondition::None).unwrap();
    conn.move_to(id, 0, WritePosition::Tail, LockCondition::None).unwrap();
    conn.claim_first(0, 1, DequeueEnd::Head, WritePosition::Tail, LockCondition::None).unwrap();

    let violations = check_trace(&cf.tracer().snapshot_all(), OracleConfig::default());
    assert_eq!(lit(&violations), ["DuplicateClaim"]);
}

#[test]
fn undrained_entry_lights_only_unclaimed_entry() {
    use sysplex_core::list::{ListParams, LockCondition, WritePosition};
    use sysplex_core::ListConnection;

    let cf = cf();
    let list = cf.allocate_list_structure("LIST2", ListParams::with_headers(4)).unwrap();
    let conn = ListConnection::attach(&list, cf.subchannel().with_system(SystemId(0)), 8).unwrap();
    conn.enqueue(0, 1, b"orphan", WritePosition::Tail, LockCondition::None).unwrap();

    let config = OracleConfig { ready_header: 0, expect_drained: true };
    let violations = check_trace(&cf.tracer().snapshot_all(), config);
    assert_eq!(lit(&violations), ["UnclaimedEntry"]);
}

#[test]
fn poisoned_slot_lights_only_ring_accounting() {
    let tracer = Tracer::new();
    tracer.enable();
    for i in 0..5u64 {
        tracer.emit(2, 1, TraceEvent::ListEnqueue { header: 0, entry: i + 1 });
    }
    tracer.poison_slot(2, 1);
    assert_eq!(lit(&check_rings(&tracer)), ["RingAccounting"]);
}

#[test]
fn leaky_recovery_lights_only_orphan_lock_record() {
    let cf = cf();
    let lock = cf.allocate_lock_structure("LOCK2", LockParams::with_entries(64)).unwrap();
    let survivor = LockConnection::attach(&lock, cf.subchannel().with_system(SystemId(0))).unwrap();
    let victim = LockConnection::attach(&lock, cf.subchannel().with_system(SystemId(1))).unwrap();
    let entry = victim.hash_resource(b"RES1");
    victim.request_lock(entry, LockMode::Exclusive).unwrap();
    victim.write_lock_record(b"RES1", LockMode::Exclusive, b"txn").unwrap();
    victim.detach(DisconnectMode::Abnormal).unwrap();
    lock.arm_leaky_recovery();
    survivor.recovery_complete_for(victim.conn_id()).unwrap();

    assert_eq!(lit(&check_lock_structure(&lock)), ["OrphanLockRecord"]);
}
