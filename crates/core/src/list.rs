//! CF list structures (§3.3.3).
//!
//! A list structure holds a program-specified number of *list headers*.
//! Entries are created when first written and queued to a header in
//! LIFO/FIFO order or in collating sequence by key, can carry a data block,
//! and can be read, updated, deleted, or **moved between headers
//! atomically** — no software multi-system serialization is needed for
//! queue manipulation. This is the substrate for shared work queues,
//! inter-system message passing, and shared control-block state (VTAM
//! generic resources, IMS shared queues, JES2 checkpoint...).
//!
//! Two auxiliary mechanisms from the paper are reproduced:
//!
//! * **Serialized lists** — an optional array of lock entries. Mainline
//!   commands can be made *conditional* on a lock being free; a recovery
//!   process needing a static view sets the lock, causing mainline
//!   operations to be rejected with [`CfError::LockHeld`] rather than
//!   forcing every mainline request to acquire/release the lock.
//! * **List transition monitoring** — a connector registers interest in a
//!   header; when the header goes empty→non-empty the CF sets a bit in the
//!   connector's list-notification vector (and pulses its wakeup event),
//!   "providing an indication observed via local system polling that there
//!   is work to be processed". No interrupt reaches the target.

use crate::bitvec::BitVector;
use crate::error::{CfError, CfResult};
use crate::hashing::hash_to_slot;
use crate::stats::Counter;
use crate::swapcell::SwapCell;
use crate::types::{ConnId, MAX_CONNECTORS};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Allocation-time geometry of a list structure.
#[derive(Debug, Clone)]
pub struct ListParams {
    /// Number of list headers.
    pub headers: usize,
    /// Number of serializing lock entries (0 = unserialised structure).
    pub lock_entries: usize,
    /// Maximum number of list entries across all headers.
    pub max_entries: usize,
}

impl ListParams {
    /// `headers` headers, no lock entries, a generous entry budget.
    pub fn with_headers(headers: usize) -> Self {
        ListParams { headers, lock_entries: 0, max_entries: headers.max(1) * 4096 }
    }

    /// Add serializing lock entries.
    pub fn with_locks(mut self, lock_entries: usize) -> Self {
        self.lock_entries = lock_entries;
        self
    }
}

/// Where a write places the new entry within the target header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePosition {
    /// Push at the head (LIFO when paired with head dequeue).
    Head,
    /// Push at the tail (FIFO when paired with head dequeue).
    Tail,
    /// Insert in ascending key collating sequence (FIFO within equal keys).
    Keyed,
}

/// Which end a dequeue takes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DequeueEnd {
    /// Take the head entry.
    Head,
    /// Take the tail entry.
    Tail,
}

/// Condition attached to a mainline command on a serialized list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockCondition {
    /// Execute unconditionally.
    None,
    /// Execute only while lock entry `index` is **free** (mainline side of
    /// the §3.3.3 recovery protocol).
    LockFree(usize),
    /// Execute only while the issuer itself holds lock entry `index`
    /// (recovery side).
    HeldBySelf(usize),
}

/// A unique, never-reused entry identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntryId(pub u64);

/// A read-only view of a list entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryView {
    /// Entry identity.
    pub id: EntryId,
    /// Collating key.
    pub key: u64,
    /// Attached data block.
    pub data: Vec<u8>,
    /// Header the entry is currently queued to.
    pub header: usize,
    /// Version, incremented on every update.
    pub version: u64,
}

#[derive(Debug)]
struct StoredEntry {
    id: EntryId,
    key: u64,
    data: Vec<u8>,
    version: u64,
}

#[derive(Debug)]
struct MonitorReg {
    conn: ConnId,
    vector: Arc<BitVector>,
    vector_index: u32,
    event: Arc<ConnEvent>,
}

#[derive(Debug, Default)]
struct Header {
    entries: VecDeque<StoredEntry>,
    monitors: Vec<MonitorReg>,
}

/// Per-connection wakeup event: lets an emulated system block on "any
/// monitored list went non-empty" instead of spinning on its vector.
#[derive(Debug, Default)]
pub struct ConnEvent {
    gen: Mutex<u64>,
    cv: Condvar,
}

impl ConnEvent {
    /// Current generation (pass to [`ConnEvent::wait_newer`]).
    pub fn generation(&self) -> u64 {
        *self.gen.lock()
    }

    fn pulse(&self) {
        *self.gen.lock() += 1;
        self.cv.notify_all();
    }

    /// Wait until the generation exceeds `seen` or the timeout elapses.
    /// Returns true when a new pulse arrived.
    pub fn wait_newer(&self, seen: u64, timeout: Duration) -> bool {
        let mut gen = self.gen.lock();
        if *gen > seen {
            return true;
        }
        self.cv.wait_for(&mut gen, timeout);
        *gen > seen
    }
}

/// One connector's attachment to a list structure.
#[derive(Debug, Clone)]
pub struct ListConnection {
    /// Connector slot in the structure.
    pub id: ConnId,
    /// List-notification vector: bit set = monitored header non-empty.
    pub vector: Arc<BitVector>,
    /// Wakeup event pulsed on every empty→non-empty transition of a
    /// monitored header.
    pub event: Arc<ConnEvent>,
}

/// Counters published by a list structure.
#[derive(Debug, Default)]
pub struct ListStats {
    /// Entries written.
    pub writes: Counter,
    /// Entries deleted (including dequeues).
    pub deletes: Counter,
    /// Atomic moves between headers.
    pub moves: Counter,
    /// Dequeue commands that returned an entry.
    pub dequeues: Counter,
    /// Empty→non-empty transition signals delivered.
    pub transitions: Counter,
    /// Mainline commands rejected by a held serializing lock.
    pub lock_rejections: Counter,
}

/// Per-connector notification state held by the structure.
type ConnVectors = Mutex<[Option<(Arc<BitVector>, Arc<ConnEvent>)>; MAX_CONNECTORS]>;

/// Number of entry-index shards. Power of two so `hash_to_slot`'s
/// multiply-shift reduction spreads entry ids evenly; keeps concurrent
/// writers on different headers from serializing on one index mutex.
const INDEX_SHARDS: usize = 16;

/// A CF list structure.
#[derive(Debug)]
pub struct ListStructure {
    name: String,
    headers: Box<[Mutex<Header>]>,
    /// Serializing lock entries: 0 = free, otherwise connector slot + 1.
    locks: Box<[AtomicU32]>,
    /// Entry id -> current header, sharded by entry-id hash (maintained
    /// after header mutation; shard locks are leaf locks, taken either
    /// under the owning header lock or in their own statement).
    index: Box<[Mutex<HashMap<EntryId, usize>>]>,
    vectors: ConnVectors,
    active: AtomicU32,
    next_entry_id: AtomicU64,
    entry_count: AtomicU64,
    max_entries: usize,
    /// Component tracer plus this structure's interned id, wired by the
    /// owning facility so transition signals show up in the trace.
    /// A [`SwapCell`] keeps the unattached hot-path cost at one atomic load.
    trace: SwapCell<(Arc<crate::trace::Tracer>, u32)>,
    /// Published counters.
    pub stats: ListStats,
}

impl ListStructure {
    /// Build a standalone structure (facilities use this; also handy in tests).
    pub fn new(name: &str, params: &ListParams) -> CfResult<Self> {
        if params.headers == 0 {
            return Err(CfError::BadParameter("list structure needs at least one header"));
        }
        let headers = (0..params.headers).map(|_| Mutex::new(Header::default())).collect();
        let locks = (0..params.lock_entries).map(|_| AtomicU32::new(0)).collect();
        Ok(ListStructure {
            name: name.to_string(),
            headers,
            locks,
            index: (0..INDEX_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            vectors: Mutex::new(std::array::from_fn(|_| None)),
            active: AtomicU32::new(0),
            next_entry_id: AtomicU64::new(1),
            entry_count: AtomicU64::new(0),
            max_entries: params.max_entries,
            trace: SwapCell::new(),
            stats: ListStats::default(),
        })
    }

    /// Route transition-signal trace events to `tracer` under structure
    /// id `sid` (called by the allocating facility).
    pub fn set_tracer(&self, tracer: Arc<crate::trace::Tracer>, sid: u32) {
        self.trace.store((tracer, sid));
    }

    /// Shard of the entry index covering `id`.
    #[inline]
    fn index_shard(&self, id: EntryId) -> &Mutex<HashMap<EntryId, usize>> {
        &self.index[hash_to_slot(&id.0.to_le_bytes(), INDEX_SHARDS)]
    }

    /// Structure name as allocated in the facility.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of list headers.
    pub fn header_count(&self) -> usize {
        self.headers.len()
    }

    /// Number of serializing lock entries.
    pub fn lock_entry_count(&self) -> usize {
        self.locks.len()
    }

    /// Attach a connector, allocating a list-notification vector of
    /// `vector_len` bits.
    pub fn connect(&self, vector_len: usize) -> CfResult<ListConnection> {
        if vector_len == 0 {
            return Err(CfError::BadParameter("vector must have at least one bit"));
        }
        let mut vectors = self.vectors.lock();
        let slot = (0..MAX_CONNECTORS).find(|&i| vectors[i].is_none()).ok_or(CfError::NoConnectorSlots)?;
        let vector = Arc::new(BitVector::new(vector_len));
        let event = Arc::new(ConnEvent::default());
        vectors[slot] = Some((Arc::clone(&vector), Arc::clone(&event)));
        self.active.fetch_or(1 << slot, Ordering::AcqRel);
        Ok(ListConnection { id: ConnId::from_raw(slot as u8), vector, event })
    }

    #[inline]
    fn check_active(&self, conn: ConnId) -> CfResult<()> {
        if self.active.load(Ordering::Relaxed) & conn.mask() == 0 {
            Err(CfError::BadConnector)
        } else {
            Ok(())
        }
    }

    #[inline]
    fn check_header(&self, header: usize) -> CfResult<()> {
        if header >= self.headers.len() {
            Err(CfError::BadParameter("header index out of range"))
        } else {
            Ok(())
        }
    }

    fn check_condition(&self, conn: ConnId, cond: LockCondition) -> CfResult<()> {
        match cond {
            LockCondition::None => Ok(()),
            LockCondition::LockFree(idx) => {
                let raw = self
                    .locks
                    .get(idx)
                    .ok_or(CfError::BadParameter("lock entry index out of range"))?
                    .load(Ordering::Acquire);
                if raw == 0 {
                    Ok(())
                } else {
                    self.stats.lock_rejections.incr();
                    Err(CfError::LockHeld { holder: ConnId::from_raw((raw - 1) as u8) })
                }
            }
            LockCondition::HeldBySelf(idx) => {
                let raw = self
                    .locks
                    .get(idx)
                    .ok_or(CfError::BadParameter("lock entry index out of range"))?
                    .load(Ordering::Acquire);
                if raw == conn.raw() as u32 + 1 {
                    Ok(())
                } else {
                    Err(CfError::NotLockHolder)
                }
            }
        }
    }

    /// Signal monitors after an empty→non-empty transition (header mutex
    /// must be held by the caller).
    fn signal_transition(&self, header_idx: usize, header: &Header) {
        for m in &header.monitors {
            m.vector.set(m.vector_index as usize);
            m.event.pulse();
            self.stats.transitions.incr();
        }
        if !header.monitors.is_empty() {
            // One relaxed-cost atomic load when no tracer is attached.
            if let Some((tracer, sid)) = self.trace.load() {
                tracer.emit(
                    crate::trace::TRACE_SYSTEM_CF,
                    *sid,
                    crate::trace::TraceEvent::ListTransition { header: header_idx as u64 },
                );
            }
        }
    }

    fn signal_empty(&self, header: &Header) {
        for m in &header.monitors {
            m.vector.clear(m.vector_index as usize);
        }
    }

    /// Create a new entry on `header`.
    pub fn write_entry(
        &self,
        conn: &ListConnection,
        header: usize,
        key: u64,
        data: &[u8],
        position: WritePosition,
        cond: LockCondition,
    ) -> CfResult<EntryId> {
        self.check_active(conn.id)?;
        self.check_header(header)?;
        self.check_condition(conn.id, cond)?;
        if self.entry_count.load(Ordering::Relaxed) as usize >= self.max_entries {
            return Err(CfError::StructureFull);
        }
        let id = EntryId(self.next_entry_id.fetch_add(1, Ordering::Relaxed));
        let entry = StoredEntry { id, key, data: data.to_vec(), version: 1 };
        let mut h = self.headers[header].lock();
        let was_empty = h.entries.is_empty();
        match position {
            WritePosition::Head => h.entries.push_front(entry),
            WritePosition::Tail => h.entries.push_back(entry),
            WritePosition::Keyed => {
                // Ascending key order, FIFO among equal keys.
                let pos = h.entries.partition_point(|e| e.key <= key);
                h.entries.insert(pos, entry);
            }
        }
        self.entry_count.fetch_add(1, Ordering::Relaxed);
        self.stats.writes.incr();
        if was_empty {
            self.signal_transition(header, &h);
        }
        // Publish the location while the header is still locked: a consumer
        // woken by the transition signal may claim (move) this entry the
        // instant the lock drops, and its index update must not be
        // overwritten by ours.
        self.index_shard(id).lock().insert(id, header);
        Ok(id)
    }

    /// Replace the data (and key) of an existing entry, with an optional
    /// version check for optimistic concurrency.
    pub fn update_entry(
        &self,
        conn: &ListConnection,
        id: EntryId,
        key: u64,
        data: &[u8],
        expected_version: Option<u64>,
        cond: LockCondition,
    ) -> CfResult<u64> {
        self.check_active(conn.id)?;
        self.check_condition(conn.id, cond)?;
        loop {
            let header = *self.index_shard(id).lock().get(&id).ok_or(CfError::NoSuchEntry)?;
            let mut h = self.headers[header].lock();
            let Some(pos) = h.entries.iter().position(|e| e.id == id) else {
                continue; // moved between index read and header lock; retry
            };
            let e = &mut h.entries[pos];
            if let Some(exp) = expected_version {
                if e.version != exp {
                    return Err(CfError::VersionMismatch { expected: exp, found: e.version });
                }
            }
            e.key = key;
            e.data = data.to_vec();
            e.version += 1;
            return Ok(e.version);
        }
    }

    /// Read an entry by identity.
    pub fn read_entry(&self, conn: &ListConnection, id: EntryId) -> CfResult<EntryView> {
        self.check_active(conn.id)?;
        loop {
            let header = *self.index_shard(id).lock().get(&id).ok_or(CfError::NoSuchEntry)?;
            let h = self.headers[header].lock();
            if let Some(e) = h.entries.iter().find(|e| e.id == id) {
                return Ok(EntryView {
                    id: e.id,
                    key: e.key,
                    data: e.data.clone(),
                    header,
                    version: e.version,
                });
            }
        }
    }

    /// Delete an entry by identity.
    pub fn delete_entry(&self, conn: &ListConnection, id: EntryId, cond: LockCondition) -> CfResult<()> {
        self.check_active(conn.id)?;
        self.check_condition(conn.id, cond)?;
        loop {
            let header = *self.index_shard(id).lock().get(&id).ok_or(CfError::NoSuchEntry)?;
            let mut h = self.headers[header].lock();
            let Some(pos) = h.entries.iter().position(|e| e.id == id) else {
                continue;
            };
            h.entries.remove(pos);
            if h.entries.is_empty() {
                self.signal_empty(&h);
            }
            self.index_shard(id).lock().remove(&id);
            drop(h);
            self.entry_count.fetch_sub(1, Ordering::Relaxed);
            self.stats.deletes.incr();
            return Ok(());
        }
    }

    /// Atomically move an entry to another header. The entry is never
    /// observable on zero or two headers: both header mutexes are held
    /// (in index order) for the transfer.
    pub fn move_entry(
        &self,
        conn: &ListConnection,
        id: EntryId,
        to_header: usize,
        position: WritePosition,
        cond: LockCondition,
    ) -> CfResult<()> {
        self.check_active(conn.id)?;
        self.check_header(to_header)?;
        self.check_condition(conn.id, cond)?;
        loop {
            let from_header = *self.index_shard(id).lock().get(&id).ok_or(CfError::NoSuchEntry)?;
            if from_header == to_header {
                return Ok(());
            }
            let (lo, hi) =
                if from_header < to_header { (from_header, to_header) } else { (to_header, from_header) };
            let mut h_lo = self.headers[lo].lock();
            let mut h_hi = self.headers[hi].lock();
            let (src, dst) =
                if from_header == lo { (&mut *h_lo, &mut *h_hi) } else { (&mut *h_hi, &mut *h_lo) };
            let Some(pos) = src.entries.iter().position(|e| e.id == id) else {
                continue;
            };
            let entry = src.entries.remove(pos).unwrap();
            if src.entries.is_empty() {
                self.signal_empty(src);
            }
            let was_empty = dst.entries.is_empty();
            match position {
                WritePosition::Head => dst.entries.push_front(entry),
                WritePosition::Tail => dst.entries.push_back(entry),
                WritePosition::Keyed => {
                    let key = entry.key;
                    let pos = dst.entries.partition_point(|e| e.key <= key);
                    dst.entries.insert(pos, entry);
                }
            }
            if was_empty {
                self.signal_transition(to_header, dst);
            }
            self.index_shard(id).lock().insert(id, to_header);
            drop(h_lo);
            drop(h_hi);
            self.stats.moves.incr();
            return Ok(());
        }
    }

    /// Atomically move an entry to another header **only if it currently
    /// sits on `expected_from`** — the conditional claim exploiters use
    /// when selecting a specific entry (not just the head) from a shared
    /// queue: two claimants race, exactly one sees the entry still on the
    /// source header and wins. Returns whether the move happened.
    pub fn move_entry_from(
        &self,
        conn: &ListConnection,
        id: EntryId,
        expected_from: usize,
        to_header: usize,
        position: WritePosition,
        cond: LockCondition,
    ) -> CfResult<bool> {
        self.check_active(conn.id)?;
        self.check_header(expected_from)?;
        self.check_header(to_header)?;
        self.check_condition(conn.id, cond)?;
        if expected_from == to_header {
            return Ok(true);
        }
        let (lo, hi) =
            if expected_from < to_header { (expected_from, to_header) } else { (to_header, expected_from) };
        let mut h_lo = self.headers[lo].lock();
        let mut h_hi = self.headers[hi].lock();
        let (src, dst) =
            if expected_from == lo { (&mut *h_lo, &mut *h_hi) } else { (&mut *h_hi, &mut *h_lo) };
        let Some(pos) = src.entries.iter().position(|e| e.id == id) else {
            return Ok(false); // not on the expected header: somebody else won
        };
        let entry = src.entries.remove(pos).unwrap();
        if src.entries.is_empty() {
            self.signal_empty(src);
        }
        let was_empty = dst.entries.is_empty();
        match position {
            WritePosition::Head => dst.entries.push_front(entry),
            WritePosition::Tail => dst.entries.push_back(entry),
            WritePosition::Keyed => {
                let key = entry.key;
                let pos = dst.entries.partition_point(|e| e.key <= key);
                dst.entries.insert(pos, entry);
            }
        }
        if was_empty {
            self.signal_transition(to_header, dst);
        }
        self.index_shard(id).lock().insert(id, to_header);
        drop(h_lo);
        drop(h_hi);
        self.stats.moves.incr();
        Ok(true)
    }

    /// Atomically move the entry at one end of `from` onto `to`: the
    /// combined READ_NEXT+MOVE exploiters use to claim a work item onto a
    /// private in-flight list with no window in which the item exists on
    /// zero lists (a consumer crash mid-claim can always be recovered by
    /// scanning its in-flight header).
    pub fn move_first(
        &self,
        conn: &ListConnection,
        from: usize,
        to: usize,
        end: DequeueEnd,
        position: WritePosition,
        cond: LockCondition,
    ) -> CfResult<Option<EntryView>> {
        self.check_active(conn.id)?;
        self.check_header(from)?;
        self.check_header(to)?;
        self.check_condition(conn.id, cond)?;
        if from == to {
            return Err(CfError::BadParameter("move_first requires distinct headers"));
        }
        let (lo, hi) = if from < to { (from, to) } else { (to, from) };
        let mut h_lo = self.headers[lo].lock();
        let mut h_hi = self.headers[hi].lock();
        let (src, dst) = if from == lo { (&mut *h_lo, &mut *h_hi) } else { (&mut *h_hi, &mut *h_lo) };
        let entry = match end {
            DequeueEnd::Head => src.entries.pop_front(),
            DequeueEnd::Tail => src.entries.pop_back(),
        };
        let Some(entry) = entry else { return Ok(None) };
        if src.entries.is_empty() {
            self.signal_empty(src);
        }
        let view = EntryView {
            id: entry.id,
            key: entry.key,
            data: entry.data.clone(),
            header: to,
            version: entry.version,
        };
        let was_empty = dst.entries.is_empty();
        match position {
            WritePosition::Head => dst.entries.push_front(entry),
            WritePosition::Tail => dst.entries.push_back(entry),
            WritePosition::Keyed => {
                let key = view.key;
                let pos = dst.entries.partition_point(|e| e.key <= key);
                dst.entries.insert(pos, entry);
            }
        }
        if was_empty {
            self.signal_transition(to, dst);
        }
        self.index_shard(view.id).lock().insert(view.id, to);
        drop(h_lo);
        drop(h_hi);
        self.stats.moves.incr();
        Ok(Some(view))
    }

    /// Remove and return the entry at one end of a header (shared work
    /// queue consumption).
    pub fn dequeue(
        &self,
        conn: &ListConnection,
        header: usize,
        end: DequeueEnd,
        cond: LockCondition,
    ) -> CfResult<Option<EntryView>> {
        self.check_active(conn.id)?;
        self.check_header(header)?;
        self.check_condition(conn.id, cond)?;
        let mut h = self.headers[header].lock();
        let entry = match end {
            DequeueEnd::Head => h.entries.pop_front(),
            DequeueEnd::Tail => h.entries.pop_back(),
        };
        let Some(e) = entry else { return Ok(None) };
        if h.entries.is_empty() {
            self.signal_empty(&h);
        }
        self.index_shard(e.id).lock().remove(&e.id);
        drop(h);
        self.entry_count.fetch_sub(1, Ordering::Relaxed);
        self.stats.dequeues.incr();
        self.stats.deletes.incr();
        Ok(Some(EntryView { id: e.id, key: e.key, data: e.data, header, version: e.version }))
    }

    /// Snapshot every entry on a header, in queue order.
    pub fn read_list(&self, conn: &ListConnection, header: usize) -> CfResult<Vec<EntryView>> {
        self.check_active(conn.id)?;
        self.check_header(header)?;
        let h = self.headers[header].lock();
        Ok(h.entries
            .iter()
            .map(|e| EntryView { id: e.id, key: e.key, data: e.data.clone(), header, version: e.version })
            .collect())
    }

    /// Entries currently queued to a header.
    pub fn header_len(&self, header: usize) -> CfResult<usize> {
        self.check_header(header)?;
        Ok(self.headers[header].lock().entries.len())
    }

    /// Total entries in the structure.
    pub fn entry_count(&self) -> usize {
        self.entry_count.load(Ordering::Relaxed) as usize
    }

    // ----- serializing lock entries -----

    /// Try to acquire a serializing lock entry. Returns false when held by
    /// another connector. Re-acquisition by the holder is idempotent.
    pub fn acquire_lock(&self, conn: &ListConnection, lock_index: usize) -> CfResult<bool> {
        self.check_active(conn.id)?;
        let slot =
            self.locks.get(lock_index).ok_or(CfError::BadParameter("lock entry index out of range"))?;
        let me = conn.id.raw() as u32 + 1;
        match slot.compare_exchange(0, me, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => Ok(true),
            Err(cur) => Ok(cur == me),
        }
    }

    /// Release a serializing lock entry held by this connector.
    pub fn release_lock(&self, conn: &ListConnection, lock_index: usize) -> CfResult<()> {
        self.check_active(conn.id)?;
        let slot =
            self.locks.get(lock_index).ok_or(CfError::BadParameter("lock entry index out of range"))?;
        let me = conn.id.raw() as u32 + 1;
        slot.compare_exchange(me, 0, Ordering::AcqRel, Ordering::Acquire)
            .map(|_| ())
            .map_err(|_| CfError::NotLockHolder)
    }

    /// Current holder of a lock entry.
    pub fn lock_holder(&self, lock_index: usize) -> CfResult<Option<ConnId>> {
        let slot =
            self.locks.get(lock_index).ok_or(CfError::BadParameter("lock entry index out of range"))?;
        let raw = slot.load(Ordering::Acquire);
        Ok(if raw == 0 { None } else { Some(ConnId::from_raw((raw - 1) as u8)) })
    }

    // ----- transition monitoring -----

    /// Register interest in a header's empty/non-empty state. The bit at
    /// `vector_index` immediately reflects the current state.
    pub fn register_monitor(&self, conn: &ListConnection, header: usize, vector_index: u32) -> CfResult<()> {
        self.check_active(conn.id)?;
        self.check_header(header)?;
        if vector_index as usize >= conn.vector.len() {
            return Err(CfError::BadParameter("vector index out of range"));
        }
        let mut h = self.headers[header].lock();
        h.monitors.retain(|m| m.conn != conn.id);
        h.monitors.push(MonitorReg {
            conn: conn.id,
            vector: Arc::clone(&conn.vector),
            vector_index,
            event: Arc::clone(&conn.event),
        });
        if h.entries.is_empty() {
            conn.vector.clear(vector_index as usize);
        } else {
            conn.vector.set(vector_index as usize);
        }
        Ok(())
    }

    /// Remove this connector's monitor on a header.
    pub fn deregister_monitor(&self, conn: &ListConnection, header: usize) -> CfResult<()> {
        self.check_active(conn.id)?;
        self.check_header(header)?;
        self.headers[header].lock().monitors.retain(|m| m.conn != conn.id);
        Ok(())
    }

    /// Copy every entry (in order) and every held serializing lock into
    /// `target` — structure rebuild for list exploiters moving to another
    /// CF. Entry identities are NOT preserved (the target assigns fresh
    /// ids); exploiters re-resolve by key/content, as VTAM and the shared
    /// queues do. The source should be quiesced by the caller.
    pub fn copy_into(&self, target: &ListStructure) -> CfResult<usize> {
        if target.header_count() < self.header_count() || target.lock_entry_count() < self.locks.len() {
            return Err(CfError::BadParameter("target geometry too small"));
        }
        // A temporary connector performs the writes.
        let conn = target.connect(1)?;
        let mut copied = 0;
        for h in 0..self.header_count() {
            let entries: Vec<EntryView> = {
                let hdr = self.headers[h].lock();
                hdr.entries
                    .iter()
                    .map(|e| EntryView {
                        id: e.id,
                        key: e.key,
                        data: e.data.clone(),
                        header: h,
                        version: e.version,
                    })
                    .collect()
            };
            for e in entries {
                target.write_entry(&conn, h, e.key, &e.data, WritePosition::Tail, LockCondition::None)?;
                copied += 1;
            }
        }
        // Disconnect the temporary connector first: disconnect releases
        // any lock entries held by its slot, which must not clobber the
        // holder state copied below.
        target.disconnect(&conn)?;
        for (i, l) in self.locks.iter().enumerate() {
            let raw = l.load(Ordering::Acquire);
            if raw != 0 {
                target.locks[i].store(raw, Ordering::Release);
            }
        }
        Ok(copied)
    }

    /// Detach a connector: releases its serializing locks and monitors.
    /// List entries persist — lists hold shared state, not per-connector
    /// state.
    pub fn disconnect(&self, conn: &ListConnection) -> CfResult<()> {
        self.check_active(conn.id)?;
        let me = conn.id.raw() as u32 + 1;
        for l in self.locks.iter() {
            let _ = l.compare_exchange(me, 0, Ordering::AcqRel, Ordering::Acquire);
        }
        for h in self.headers.iter() {
            h.lock().monitors.retain(|m| m.conn != conn.id);
        }
        self.vectors.lock()[conn.id.index()] = None;
        self.active.fetch_and(!conn.id.mask(), Ordering::AcqRel);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn structure(headers: usize) -> ListStructure {
        ListStructure::new("Q", &ListParams::with_headers(headers).with_locks(4)).unwrap()
    }

    #[test]
    fn fifo_and_lifo_ordering() {
        let s = structure(2);
        let c = s.connect(8).unwrap();
        for i in 1..=3u64 {
            s.write_entry(&c, 0, i, &i.to_be_bytes(), WritePosition::Tail, LockCondition::None).unwrap();
        }
        // FIFO: tail-write + head-dequeue.
        let got: Vec<u64> = (0..3)
            .map(|_| s.dequeue(&c, 0, DequeueEnd::Head, LockCondition::None).unwrap().unwrap().key)
            .collect();
        assert_eq!(got, vec![1, 2, 3]);
        // LIFO: head-write + head-dequeue.
        for i in 1..=3u64 {
            s.write_entry(&c, 1, i, b"", WritePosition::Head, LockCondition::None).unwrap();
        }
        let got: Vec<u64> = (0..3)
            .map(|_| s.dequeue(&c, 1, DequeueEnd::Head, LockCondition::None).unwrap().unwrap().key)
            .collect();
        assert_eq!(got, vec![3, 2, 1]);
    }

    #[test]
    fn keyed_insert_collates_with_fifo_within_key() {
        let s = structure(1);
        let c = s.connect(8).unwrap();
        let e5a = s.write_entry(&c, 0, 5, b"a", WritePosition::Keyed, LockCondition::None).unwrap();
        let _e9 = s.write_entry(&c, 0, 9, b"", WritePosition::Keyed, LockCondition::None).unwrap();
        let _e1 = s.write_entry(&c, 0, 1, b"", WritePosition::Keyed, LockCondition::None).unwrap();
        let e5b = s.write_entry(&c, 0, 5, b"b", WritePosition::Keyed, LockCondition::None).unwrap();
        let keys: Vec<(u64, EntryId)> =
            s.read_list(&c, 0).unwrap().into_iter().map(|e| (e.key, e.id)).collect();
        assert_eq!(keys.iter().map(|(k, _)| *k).collect::<Vec<_>>(), vec![1, 5, 5, 9]);
        assert_eq!(keys[1].1, e5a, "first-written key-5 entry comes first");
        assert_eq!(keys[2].1, e5b);
    }

    #[test]
    fn move_is_atomic_and_signals_target_monitors() {
        let s = structure(2);
        let producer = s.connect(8).unwrap();
        let consumer = s.connect(8).unwrap();
        s.register_monitor(&consumer, 1, 0).unwrap();
        assert!(!consumer.vector.test(0));
        let id = s.write_entry(&producer, 0, 1, b"work", WritePosition::Tail, LockCondition::None).unwrap();
        s.move_entry(&producer, id, 1, WritePosition::Tail, LockCondition::None).unwrap();
        assert_eq!(s.header_len(0).unwrap(), 0);
        assert_eq!(s.header_len(1).unwrap(), 1);
        assert!(consumer.vector.test(0), "empty→non-empty transition signalled");
        let e = s.read_entry(&consumer, id).unwrap();
        assert_eq!(e.header, 1);
        assert_eq!(e.data, b"work");
    }

    #[test]
    fn move_first_claims_atomically_under_racing_consumers() {
        let s = Arc::new(structure(3)); // 0 = ready, 1..=2 = per-consumer
        let p = s.connect(8).unwrap();
        let total = 500u64;
        for i in 0..total {
            s.write_entry(&p, 0, i, b"w", WritePosition::Tail, LockCondition::None).unwrap();
        }
        let mut handles = Vec::new();
        for me in 1..=2usize {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let c = s.connect(8).unwrap();
                let mut claimed = 0u64;
                while s
                    .move_first(&c, 0, me, DequeueEnd::Head, WritePosition::Tail, LockCondition::None)
                    .unwrap()
                    .is_some()
                {
                    claimed += 1;
                }
                claimed
            }));
        }
        let claims: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(claims.iter().sum::<u64>(), total, "every item claimed exactly once");
        assert_eq!(s.header_len(0).unwrap(), 0);
        assert_eq!(
            s.header_len(1).unwrap() + s.header_len(2).unwrap(),
            total as usize,
            "all items live on in-flight headers"
        );
        assert_eq!(s.entry_count(), total as usize, "no entry lost or duplicated");
    }

    #[test]
    fn move_entry_from_is_a_conditional_claim() {
        let s = Arc::new(structure(3));
        let c = s.connect(8).unwrap();
        let id = s.write_entry(&c, 0, 5, b"job", WritePosition::Tail, LockCondition::None).unwrap();
        // Claimant A wins.
        assert!(s.move_entry_from(&c, id, 0, 1, WritePosition::Keyed, LockCondition::None).unwrap());
        // Claimant B expected it on header 0: loses cleanly, no steal.
        assert!(!s.move_entry_from(&c, id, 0, 2, WritePosition::Tail, LockCondition::None).unwrap());
        assert_eq!(s.header_len(1).unwrap(), 1);
        assert_eq!(s.header_len(2).unwrap(), 0);
        // Racing claimants: exactly one wins.
        let total = 200u64;
        let ids: Vec<EntryId> = (0..total)
            .map(|i| s.write_entry(&c, 0, i, b"w", WritePosition::Tail, LockCondition::None).unwrap())
            .collect();
        let mut handles = Vec::new();
        for me in 1..=2usize {
            let s = Arc::clone(&s);
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                let conn = s.connect(8).unwrap();
                ids.iter()
                    .filter(|id| {
                        s.move_entry_from(&conn, **id, 0, me, WritePosition::Tail, LockCondition::None)
                            .unwrap()
                    })
                    .count()
            }));
        }
        let wins: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(wins as u64, total, "every entry claimed exactly once");
        assert_eq!(s.header_len(0).unwrap(), 0);
    }

    #[test]
    fn move_first_rejects_same_header_and_empty_source() {
        let s = structure(2);
        let c = s.connect(8).unwrap();
        assert!(matches!(
            s.move_first(&c, 0, 0, DequeueEnd::Head, WritePosition::Tail, LockCondition::None),
            Err(CfError::BadParameter(_))
        ));
        assert_eq!(
            s.move_first(&c, 0, 1, DequeueEnd::Head, WritePosition::Tail, LockCondition::None).unwrap(),
            None
        );
    }

    #[test]
    fn transition_signal_fires_on_empty_to_nonempty_only() {
        let s = structure(1);
        let p = s.connect(8).unwrap();
        let m = s.connect(8).unwrap();
        s.register_monitor(&m, 0, 3).unwrap();
        s.write_entry(&p, 0, 1, b"", WritePosition::Tail, LockCondition::None).unwrap();
        assert_eq!(s.stats.transitions.get(), 1);
        // Second write: header already non-empty, no new signal.
        s.write_entry(&p, 0, 2, b"", WritePosition::Tail, LockCondition::None).unwrap();
        assert_eq!(s.stats.transitions.get(), 1);
        // Drain: bit clears when list goes empty.
        s.dequeue(&p, 0, DequeueEnd::Head, LockCondition::None).unwrap();
        assert!(m.vector.test(3));
        s.dequeue(&p, 0, DequeueEnd::Head, LockCondition::None).unwrap();
        assert!(!m.vector.test(3));
    }

    #[test]
    fn monitor_wakeup_event_unblocks_waiter() {
        let s = Arc::new(structure(1));
        let p = s.connect(8).unwrap();
        let m = s.connect(8).unwrap();
        s.register_monitor(&m, 0, 0).unwrap();
        let seen = m.event.generation();
        let waiter = {
            let m = m.clone();
            std::thread::spawn(move || m.event.wait_newer(seen, Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(20));
        s.write_entry(&p, 0, 1, b"", WritePosition::Tail, LockCondition::None).unwrap();
        assert!(waiter.join().unwrap(), "waiter woken by transition");
    }

    #[test]
    fn serialized_list_recovery_protocol() {
        let s = structure(1);
        let mainline = s.connect(8).unwrap();
        let recovery = s.connect(8).unwrap();
        // Mainline writes conditionally on lock 0 being free.
        s.write_entry(&mainline, 0, 1, b"", WritePosition::Tail, LockCondition::LockFree(0)).unwrap();
        // Recovery takes the lock for a static view.
        assert!(s.acquire_lock(&recovery, 0).unwrap());
        let err =
            s.write_entry(&mainline, 0, 2, b"", WritePosition::Tail, LockCondition::LockFree(0)).unwrap_err();
        assert_eq!(err, CfError::LockHeld { holder: recovery.id });
        // Recovery-side ops require holding the lock.
        s.dequeue(&recovery, 0, DequeueEnd::Head, LockCondition::HeldBySelf(0)).unwrap();
        assert_eq!(
            s.dequeue(&mainline, 0, DequeueEnd::Head, LockCondition::HeldBySelf(0)).unwrap_err(),
            CfError::NotLockHolder
        );
        s.release_lock(&recovery, 0).unwrap();
        s.write_entry(&mainline, 0, 3, b"", WritePosition::Tail, LockCondition::LockFree(0)).unwrap();
        assert_eq!(s.stats.lock_rejections.get(), 1);
    }

    #[test]
    fn lock_entry_ownership() {
        let s = structure(1);
        let a = s.connect(8).unwrap();
        let b = s.connect(8).unwrap();
        assert!(s.acquire_lock(&a, 2).unwrap());
        assert!(s.acquire_lock(&a, 2).unwrap(), "re-acquire by holder is idempotent");
        assert!(!s.acquire_lock(&b, 2).unwrap());
        assert_eq!(s.release_lock(&b, 2).unwrap_err(), CfError::NotLockHolder);
        assert_eq!(s.lock_holder(2).unwrap(), Some(a.id));
        s.release_lock(&a, 2).unwrap();
        assert_eq!(s.lock_holder(2).unwrap(), None);
    }

    #[test]
    fn disconnect_releases_locks_but_keeps_entries() {
        let s = structure(1);
        let a = s.connect(8).unwrap();
        let b = s.connect(8).unwrap();
        s.acquire_lock(&a, 0).unwrap();
        s.write_entry(&a, 0, 1, b"persist", WritePosition::Tail, LockCondition::None).unwrap();
        s.disconnect(&a).unwrap();
        assert_eq!(s.lock_holder(0).unwrap(), None, "failed connector's lock freed");
        assert_eq!(s.header_len(0).unwrap(), 1, "entries persist");
        let e = s.dequeue(&b, 0, DequeueEnd::Head, LockCondition::None).unwrap().unwrap();
        assert_eq!(e.data, b"persist");
    }

    #[test]
    fn copy_into_preserves_order_and_locks() {
        let src = structure(2);
        let c = src.connect(4).unwrap();
        for i in [3u64, 1, 2] {
            src.write_entry(&c, 0, i, &i.to_be_bytes(), WritePosition::Keyed, LockCondition::None).unwrap();
        }
        src.write_entry(&c, 1, 9, b"other", WritePosition::Tail, LockCondition::None).unwrap();
        src.acquire_lock(&c, 2).unwrap();

        let dst = ListStructure::new("Q2", &ListParams::with_headers(2).with_locks(4)).unwrap();
        assert_eq!(src.copy_into(&dst).unwrap(), 4);
        let c2 = dst.connect(4).unwrap();
        let keys: Vec<u64> = dst.read_list(&c2, 0).unwrap().iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![1, 2, 3], "order preserved");
        assert_eq!(dst.read_list(&c2, 1).unwrap()[0].data, b"other");
        assert_eq!(dst.lock_holder(2).unwrap(), Some(c.id), "held lock carried over");
        // Geometry checks.
        let tiny = ListStructure::new("T", &ListParams::with_headers(1)).unwrap();
        assert!(matches!(src.copy_into(&tiny), Err(CfError::BadParameter(_))));
    }

    #[test]
    fn update_entry_versioning() {
        let s = structure(1);
        let c = s.connect(8).unwrap();
        let id = s.write_entry(&c, 0, 1, b"v1", WritePosition::Tail, LockCondition::None).unwrap();
        let v2 = s.update_entry(&c, id, 1, b"v2", Some(1), LockCondition::None).unwrap();
        assert_eq!(v2, 2);
        assert!(matches!(
            s.update_entry(&c, id, 1, b"v3", Some(1), LockCondition::None),
            Err(CfError::VersionMismatch { expected: 1, found: 2 })
        ));
        assert_eq!(s.read_entry(&c, id).unwrap().data, b"v2");
    }

    #[test]
    fn entry_budget_enforced() {
        let s = ListStructure::new("Q", &ListParams { headers: 1, lock_entries: 0, max_entries: 2 }).unwrap();
        let c = s.connect(8).unwrap();
        s.write_entry(&c, 0, 1, b"", WritePosition::Tail, LockCondition::None).unwrap();
        s.write_entry(&c, 0, 2, b"", WritePosition::Tail, LockCondition::None).unwrap();
        assert_eq!(
            s.write_entry(&c, 0, 3, b"", WritePosition::Tail, LockCondition::None).unwrap_err(),
            CfError::StructureFull
        );
        s.dequeue(&c, 0, DequeueEnd::Head, LockCondition::None).unwrap();
        s.write_entry(&c, 0, 3, b"", WritePosition::Tail, LockCondition::None).unwrap();
    }

    #[test]
    fn concurrent_producers_consumers_conserve_entries() {
        let s = Arc::new(structure(2));
        let total = 4000u64;
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let c = s.connect(8).unwrap();
                for i in 0..total / 4 {
                    s.write_entry(&c, 0, t * 1_000_000 + i, b"w", WritePosition::Tail, LockCondition::None)
                        .unwrap();
                }
            }));
        }
        let consumed = Arc::new(AtomicU64::new(0));
        for _ in 0..4 {
            let s = Arc::clone(&s);
            let consumed = Arc::clone(&consumed);
            handles.push(std::thread::spawn(move || {
                let c = s.connect(8).unwrap();
                loop {
                    match s.dequeue(&c, 0, DequeueEnd::Head, LockCondition::None).unwrap() {
                        Some(_) => {
                            consumed.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            if consumed.load(Ordering::Relaxed) >= total {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(consumed.load(Ordering::Relaxed), total);
        assert_eq!(s.entry_count(), 0);
    }
}
