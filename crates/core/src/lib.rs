//! # sysplex-core — the Coupling Facility
//!
//! This crate implements the heart of the S/390 Parallel Sysplex coupling
//! technology described in Section 3.3 of Nick, Chung & Bowen (IPPS 1996):
//! the **Coupling Facility (CF)**, a shared-memory appliance providing
//! hardware assists for multi-system data sharing.
//!
//! The CF storage is partitioned into *structures*, each subscribing to one
//! of three behaviour models:
//!
//! * [`lock::LockStructure`] — a hashed global lock table with per-connector
//!   interest tracking, synchronous grant in the uncontended case, holder
//!   identity return for contention negotiation, and persistent *record
//!   data* enabling fast lock recovery after a system failure (§3.3.1).
//! * [`cache::CacheStructure`] — a global buffer directory for multi-system
//!   cache coherency: connectors register interest in named data blocks,
//!   updates cross-invalidate every other registered connector by flipping a
//!   bit in its *local bit vector* without interrupting it, and data can
//!   optionally be cached globally in the structure as a second-level cache
//!   between local memory and DASD (§3.3.2).
//! * [`list::ListStructure`] — general-purpose multi-system queues with
//!   FIFO/LIFO/keyed ordering, atomic entry movement, optional serializing
//!   lock entries, and empty→non-empty *list transition signals* (§3.3.3).
//!
//! Commands reach the CF over [`link::CfLink`]s modelling the 50/100 MB/s
//! fiber coupling links; commands execute either CPU-synchronously (the
//! caller spins for the µs-scale round trip) or asynchronously through a
//! completion queue, mirroring the execution modes in the paper.
//!
//! ## Hardware substitution
//!
//! The physical CF was a dedicated S/390 machine running specialised
//! microcode. Here the CF is an in-process concurrent object shared by
//! emulated systems (threads). What the reproduction preserves is the
//! architectural contract: atomic structure commands, interest tracking in
//! the structure rather than in the connectors, cross-invalidation that
//! never interrupts the target system (an atomic bit flip), and the relative
//! cost hierarchy — nanosecond local bit-vector tests, microsecond CF
//! commands, millisecond DASD I/O.
//!
//! ```
//! use sysplex_core::facility::{CouplingFacility, CfConfig};
//! use sysplex_core::lock::{LockParams, LockMode};
//!
//! let cf = CouplingFacility::new(CfConfig::named("CF01"));
//! let lock = cf.allocate_lock_structure("IRLM_LOCK1", LockParams::with_entries(1024)).unwrap();
//! let conn = lock.connect().unwrap();
//! let hash = lock.hash_resource(b"ACCT.00001234");
//! assert!(lock.request(conn, hash, LockMode::Exclusive).unwrap().is_granted());
//! ```

pub mod bitvec;
pub mod cache;
pub mod connection;
pub mod error;
pub mod facility;
pub mod hashing;
pub mod link;
pub mod list;
pub mod lock;
pub mod retry;
pub mod stats;
pub mod swapcell;
pub mod trace;
pub mod transport;
pub mod types;
pub mod wire;

pub use connection::{
    CacheConnection, CfCommand, CfSubchannel, CommandClass, ConnectionStats, ConversionPolicy, FaultInjector,
    LinkFault, ListConnection, LockConnection,
};
pub use error::{CfError, CfResult};
pub use facility::{CfConfig, CouplingFacility};
pub use retry::RetryPolicy;
pub use trace::{TraceClock, TraceEvent, TraceKind, TraceRecord, Tracer};
pub use transport::{
    CfTransport, CmdShape, InProcessTransport, MeteredTransport, RemoteCacheConnection, RemoteListConnection,
    RemoteLockConnection, TcpTransport, TransportBackend, TransportMeter,
};
pub use types::{ConnId, ConnMask, SystemId, MAX_CONNECTORS, MAX_SYSTEMS};
pub use wire::{SmfClassRow, SmfRecord, SmfStructureRow, WireError, WireRequest, WireResponse};
